# Convenience targets for the repro library.

PYTHON ?= python
TRIALS ?= 1024
JOBS ?=

.PHONY: install test bench bench-runner bench-cache bench-fabric bench-service bench-service-pool cache-smoke kernel-smoke vec-smoke fabric-smoke profile figures lint lint-clean examples serve-smoke serve-pool-smoke all

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-runner:
	PYTHONPATH=src $(PYTHON) scripts/bench_runner.py

# Cold/warm/delta timings of the content-addressed trial store; writes
# BENCH_cache.json and fails if warm is not >= 5x faster than cold or
# cached results are not bit-identical to uncached ones.
bench-cache:
	PYTHONPATH=src $(PYTHON) scripts/bench_cache.py

# Tiny sweep twice through the CLI --cache path; the second run must be
# served 100% from the store with a byte-identical report.
cache-smoke:
	PYTHONPATH=src $(PYTHON) scripts/cache_smoke.py

# Tiny sweep through the CLI with REPRO_KERNEL=0 and =1 (and with
# --engine paired-ref); all reports must be byte-identical — the
# compiled kernel's oracle contract at the CLI boundary.
kernel-smoke:
	PYTHONPATH=src $(PYTHON) scripts/kernel_smoke.py

# Vectorized-tier smoke: REPRO_VEC=1 CLI report byte-identical to the
# reference, the NumPy-absent fallback byte-identical too, and the
# batched stage pipeline over its smoke speedup floor.
vec-smoke:
	PYTHONPATH=src $(PYTHON) scripts/vec_smoke.py

# Chaos smoke of the distributed sweep fabric: coordinator + 2 local
# workers, one SIGKILLed while holding a lease, plus a journal-chaos
# leg (worker killed mid-append, journal tail torn); every sweep must
# still complete bit-identical to a single-process run and resume for
# free.
fabric-smoke:
	PYTHONPATH=src $(PYTHON) scripts/fabric_smoke.py

# Fabric overhead/protocol/scaling benchmark; writes BENCH_fabric.json.
# Gated: workers=1 inline overhead <= 1.15x the single-process
# baseline, journaled-queue protocol throughput over its floor,
# bit-identity everywhere, resume free.  The workers=N speedup is
# recorded, not gated (CI boxes vary; single-CPU hosts record
# "skipped: single-cpu").
bench-fabric:
	PYTHONPATH=src $(PYTHON) scripts/bench_fabric.py

# cProfile hotspot tables of the trial hot path, compiled kernel vs
# string-keyed reference — where the next optimisation should go.
profile:
	PYTHONPATH=src $(PYTHON) scripts/profile_trial.py

bench-service:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_service.py --benchmark-only -q

# Static checks (pyflakes + bugbear/async classes) on the modules where
# concurrency bugs live: the service, the admission path, the store,
# the CLI.
lint:
	ruff check src/repro/service src/repro/online src/repro/store src/repro/fabric src/repro/cli src/repro/errors.py

figures:
	$(PYTHON) -m repro --all --trials $(TRIALS) --out results/ $(if $(JOBS),--jobs $(JOBS))

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

serve-smoke:
	PYTHONPATH=src $(PYTHON) scripts/serve_smoke.py

# serve-smoke plus the pooled-topology leg: asyncio front end + 2
# pre-forked workers, keep-alive pipelining, one forced 429, bounded
# drain.
serve-pool-smoke:
	PYTHONPATH=src $(PYTHON) scripts/serve_smoke.py --workers 2

# Topology equivalence (byte-identity + metric totals) and throughput
# legs for the pooled service; writes the workers section of
# BENCH_service.json.  The pooled-vs-single speedup is gated only on
# hosts with >= 2 CPUs; single-CPU hosts record "skipped: single-cpu".
bench-service-pool:
	PYTHONPATH=src $(PYTHON) scripts/bench_service.py

all: test bench
