# Convenience targets for the repro library.

PYTHON ?= python
TRIALS ?= 1024
JOBS ?=

.PHONY: install test bench bench-runner bench-service figures lint lint-clean examples serve-smoke all

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-runner:
	PYTHONPATH=src $(PYTHON) scripts/bench_runner.py

bench-service:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_service.py --benchmark-only -q

# Static checks (pyflakes + bugbear/async classes) on the modules where
# concurrency bugs live: the service, the admission path, the CLI.
lint:
	ruff check src/repro/service src/repro/online src/repro/cli src/repro/errors.py

figures:
	$(PYTHON) -m repro --all --trials $(TRIALS) --out results/ $(if $(JOBS),--jobs $(JOBS))

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

serve-smoke:
	PYTHONPATH=src $(PYTHON) scripts/serve_smoke.py

all: test bench
