#!/usr/bin/env python
"""Profile the trial hot path — compiled kernel vs reference pipeline.

Generates a bench-shaped batch of workloads once (generation is shared
by both pipelines and would otherwise drown the judge-side signal),
then runs every (trial × metric) judgement through ``run_trial`` under
``cProfile`` twice — once on the compiled kernel, once forced onto the
string-keyed reference — and prints the cumulative hotspot table of
each.  Use it to find where the next kernel optimisation should go:
the reference table shows what the kernel replaced, the kernel table
shows what is left.

Usage::

    PYTHONPATH=src python scripts/profile_trial.py [--trials N] [--limit K]
    make profile

Options select the per-m trial count, the number of table rows, and a
``--kernel-only`` / ``--reference-only`` switch for focused runs.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys

from repro.core.metrics import METRIC_NAMES
from repro.experiments import TrialConfig
from repro.experiments.context import TrialContext
from repro.experiments.runner import run_trial
from repro.workload import WorkloadParams


def build_batch(trials: int, seed: int):
    """Bench-shaped contexts (m ∈ {3, 6}) and per-metric configs."""
    base = WorkloadParams()
    configs = {
        (m, name): TrialConfig(
            workload=base.with_overrides(m=m), metric=name
        )
        for m in (3, 6)
        for name in METRIC_NAMES
    }
    contexts = []
    for m in (3, 6):
        params = configs[(m, METRIC_NAMES[0])].workload
        for t in range(trials):
            contexts.append((m, TrialContext.from_seed(params, seed + t)))
    return configs, contexts


def profile_pipeline(
    configs, contexts, *, use_kernel: bool, limit: int
) -> None:
    label = "compiled kernel" if use_kernel else "reference pipeline"
    # Fresh contexts are NOT rebuilt here: per-context caches (compiled
    # workload, estimates) warm up on the first series exactly as they
    # do inside one paired-engine trial.
    profiler = cProfile.Profile()
    profiler.enable()
    for m, context in contexts:
        for name in METRIC_NAMES:
            run_trial(
                configs[(m, name)], 1, context, use_kernel=use_kernel
            )
    profiler.disable()
    stats = pstats.Stats(profiler)
    total = stats.total_tt
    print(f"\n=== {label}: {total:.3f} s (profiled) ===")
    stats.sort_stats("cumulative").print_stats(limit)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trials",
        type=int,
        default=96,
        help="workloads per system size (default 96, the bench shape)",
    )
    parser.add_argument(
        "--limit", type=int, default=25, help="hotspot table rows"
    )
    parser.add_argument("--seed", type=int, default=2026)
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--kernel-only", action="store_true", help="profile only the kernel"
    )
    group.add_argument(
        "--reference-only",
        action="store_true",
        help="profile only the reference pipeline",
    )
    args = parser.parse_args(argv)

    print(
        f"profiling {args.trials} trials x 2 system sizes x "
        f"{len(METRIC_NAMES)} metrics"
    )
    configs, contexts = build_batch(args.trials, args.seed)
    if not args.kernel_only:
        profile_pipeline(
            configs, contexts, use_kernel=False, limit=args.limit
        )
    if not args.reference_only:
        # Fresh contexts so the kernel pays its own compile/estimate
        # costs instead of inheriting the reference run's warm caches.
        configs, contexts = build_batch(args.trials, args.seed)
        profile_pipeline(
            configs, contexts, use_kernel=True, limit=args.limit
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
