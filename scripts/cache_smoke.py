#!/usr/bin/env python
"""End-to-end smoke test of the cached-sweep CLI path (used by CI).

Runs a tiny sweep twice through ``python -m repro experiment --cache``
against a fresh store and checks the whole contract at the CLI
boundary:

* the first (cold) run computes every chunk partial (0% hit rate),
* the second (warm) run restores every partial (100% hit rate, nothing
  computed, nothing appended),
* both runs print byte-identical reports (the numbers a cached run
  serves are exactly the numbers the cold run computed).

Exits non-zero with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python scripts/cache_smoke.py
    make cache-smoke
"""

from __future__ import annotations

import re
import subprocess
import sys
import tempfile
from pathlib import Path

FIGURE = "fig2"
TRIALS = "8"

_CACHE_LINE = re.compile(
    r"^cache: (?P<hits>\d+) restored / (?P<misses>\d+) computed"
)


def run_once(store: Path) -> tuple[str, int, int]:
    """One CLI run; returns (report text, restored, computed)."""
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "experiment",
            FIGURE,
            "--trials",
            TRIALS,
            "--jobs",
            "1",
            "--cache",
            str(store),
        ],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"FATAL: CLI exited {proc.returncode}")
    report_lines = []
    hits = misses = None
    for line in proc.stdout.splitlines():
        match = _CACHE_LINE.match(line)
        if match:
            hits = int(match.group("hits"))
            misses = int(match.group("misses"))
        else:
            # Wall-clock is the one legitimately non-deterministic part
            # of the report; everything else must match byte for byte.
            report_lines.append(re.sub(r"elapsed=\S+", "elapsed=*", line))
    if hits is None:
        raise SystemExit("FATAL: no 'cache:' summary line in CLI output")
    return "\n".join(report_lines), hits, misses


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="cache-smoke-") as tmp:
        store = Path(tmp) / "store"
        cold_report, cold_hits, cold_misses = run_once(store)
        print(f"cold run: {cold_hits} restored / {cold_misses} computed")
        warm_report, warm_hits, warm_misses = run_once(store)
        print(f"warm run: {warm_hits} restored / {warm_misses} computed")

    failures = []
    if cold_hits != 0:
        failures.append(f"cold run restored {cold_hits} partials from nothing")
    if cold_misses == 0:
        failures.append("cold run computed nothing")
    if warm_misses != 0:
        failures.append(f"warm run recomputed {warm_misses} partials")
    if warm_hits != cold_misses:
        failures.append(
            f"warm run restored {warm_hits} partials, expected {cold_misses}"
        )
    if warm_report != cold_report:
        failures.append("warm report differs from cold report")
    for failure in failures:
        print(f"FATAL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("cache smoke OK: second run served 100% from the store")
    return 0


if __name__ == "__main__":
    sys.exit(main())
