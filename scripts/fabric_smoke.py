#!/usr/bin/env python
"""Chaos smoke test of the distributed sweep fabric (used by CI).

Exercises the fabric's headline guarantees in one scripted incident:

* a coordinator shards a sweep and spawns **two** local worker
  processes against one shared store;
* one worker is **SIGKILLed mid-run** (no cleanup handlers run — its
  leases simply stop heartbeating and expire);
* the sweep must still complete — survivors steal the expired leases —
  and the merged result must be **bit-identical** to a single-process
  ``run_experiment`` of the same shape;
* a re-run of the same sweep over the same store must resume: zero
  leases, zero completions, nothing recomputed.

Exits non-zero with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python scripts/fabric_smoke.py
    make fabric-smoke
"""

from __future__ import annotations

import json
import os
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.experiments.figures import get_figure_spec
from repro.experiments.runner import run_experiment
from repro.fabric import FabricCoordinator, run_sweep

FIGURE = "fig2"
TRIALS = 16
SEED = 2026
CHUNK = 2
LEASE_TTL = 1.0  # short: stolen leases come back fast after the kill
KILL_DEADLINE = 20.0  # give up waiting for the victim to lease


def result_text(result) -> str:
    doc = result.to_dict()
    doc.pop("elapsed_seconds", None)
    return json.dumps(doc, sort_keys=True)


def fail(message: str) -> None:
    raise SystemExit(f"FAIL: {message}")


def main() -> int:
    spec = get_figure_spec(FIGURE)
    print(f"[1/3] single-process reference ({FIGURE}, trials={TRIALS})")
    reference = result_text(
        run_experiment(
            spec, trials=TRIALS, seed=SEED, jobs=1, chunk_size=CHUNK
        )
    )

    with tempfile.TemporaryDirectory(prefix="fabric-smoke-") as tmp:
        store = Path(tmp) / "store"
        print("[2/3] fabric sweep: 2 workers, one SIGKILLed holding a lease")
        start = time.perf_counter()
        coordinator = FabricCoordinator(
            spec,
            trials=TRIALS,
            seed=SEED,
            chunk_size=CHUNK,
            store=store,
            lease_ttl=LEASE_TTL,
        )
        killed: dict[str, object] = {}
        # Worker i is named "local-<coordinator pid>-<i>" by the
        # coordinator; the victim is worker 0.
        victim_name = f"local-{os.getpid()}-0"

        def kill_when_leased(pids: list[int]) -> None:
            if len(pids) < 2:
                fail(f"expected 2 spawned workers, got {pids}")

            def assassin() -> None:
                manifest = coordinator.root / "MANIFEST.json"
                deadline = time.monotonic() + KILL_DEADLINE
                while time.monotonic() < deadline:
                    # Atomic-replace writes make a lock-free peek safe.
                    doc = json.loads(manifest.read_text())
                    holds_lease = any(
                        entry["state"] == "leased"
                        and entry["worker"] == victim_name
                        for entry in doc["units"].values()
                    )
                    if holds_lease:
                        os.kill(pids[0], signal.SIGKILL)
                        killed["pid"] = pids[0]
                        return
                    if coordinator.queue.finished():
                        return  # sweep outran the assassin
                    time.sleep(0.02)

            threading.Thread(target=assassin, daemon=True).start()

        try:
            coordinator.execute(
                workers=2, on_workers=kill_when_leased, poll=0.05
            )
            result = coordinator.merge()
            report = coordinator.report(time.perf_counter() - start)
        finally:
            coordinator.close()
        print("      " + report.summary())
        if "pid" not in killed:
            fail("the chaos thread never killed a worker")
        print(f"      SIGKILLed worker pid={killed['pid']}")
        if result_text(result) != reference:
            fail("sweep result differs from the single-process reference")
        done = report.completions + report.prestored_units
        if done != report.units:
            fail(f"{report.units} units but only {done} accounted done")

        print("[3/3] resume over the same store must recompute nothing")
        resumed = run_sweep(
            spec,
            trials=TRIALS,
            seed=SEED,
            workers=2,
            chunk_size=CHUNK,
            store=store,
            lease_ttl=LEASE_TTL,
        )
        print("      " + resumed.report.summary())
        if result_text(resumed.result) != reference:
            fail("resumed result differs from the reference")
        if resumed.report.leases or resumed.report.completions:
            fail(
                "resume recomputed work: "
                f"{resumed.report.leases} leases, "
                f"{resumed.report.completions} completions"
            )

    print(
        "OK: sweep survived a SIGKILLed worker "
        f"({report.reissues} lease(s) re-issued), stayed bit-identical, "
        "and resumed for free"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
