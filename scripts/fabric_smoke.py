#!/usr/bin/env python
"""Chaos smoke test of the distributed sweep fabric (used by CI).

Exercises the fabric's headline guarantees in one scripted incident:

* a coordinator shards a sweep and spawns **two** local worker
  processes against one shared store;
* one worker is **SIGKILLed mid-run** (no cleanup handlers run — its
  leases simply stop heartbeating and expire);
* the sweep must still complete — survivors steal the expired leases —
  and the merged result must be **bit-identical** to a single-process
  ``run_experiment`` of the same shape;
* **journal chaos**: a second sweep's only worker is SIGKILLed while
  it is actively journaling lease/complete records, and the journal
  tail is additionally torn (a partial line with no newline, exactly
  what a writer killed mid-``write`` leaves).  The resumed sweep must
  heal the tail, replay the journal, keep every completed unit done,
  and still merge bit-identically;
* a re-run of the same sweep over the same store must resume: zero
  leases, zero completions, nothing recomputed.

Exits non-zero with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python scripts/fabric_smoke.py
    make fabric-smoke
"""

from __future__ import annotations

import json
import os
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.experiments.figures import get_figure_spec
from repro.experiments.runner import run_experiment
from repro.fabric import FabricCoordinator, run_sweep

FIGURE = "fig2"
TRIALS = 16
SEED = 2026
CHUNK = 2
LEASE_TTL = 1.0  # short: stolen leases come back fast after the kill
KILL_DEADLINE = 20.0  # give up waiting for the victim to lease


def result_text(result) -> str:
    doc = result.to_dict()
    doc.pop("elapsed_seconds", None)
    return json.dumps(doc, sort_keys=True)


def fail(message: str) -> None:
    raise SystemExit(f"FAIL: {message}")


def kill_leg(spec, store: Path, reference: str) -> None:
    """Two workers, one SIGKILLed while holding a lease."""
    start = time.perf_counter()
    coordinator = FabricCoordinator(
        spec,
        trials=TRIALS,
        seed=SEED,
        chunk_size=CHUNK,
        store=store,
        lease_ttl=LEASE_TTL,
    )
    killed: dict[str, object] = {}
    # Worker i is named "local-<coordinator pid>-<i>" by the
    # coordinator; the victim is worker 0.
    victim_name = f"local-{os.getpid()}-0"

    def kill_when_leased(pids: list[int]) -> None:
        if len(pids) < 2:
            fail(f"expected 2 spawned workers, got {pids}")

        def assassin() -> None:
            deadline = time.monotonic() + KILL_DEADLINE
            while time.monotonic() < deadline:
                # snapshot() replays the journal under the queue lock,
                # so the view is always whole records — never a torn
                # mid-append read.
                snap = coordinator.queue.snapshot()
                if snap.leased_by.get(victim_name):
                    os.kill(pids[0], signal.SIGKILL)
                    killed["pid"] = pids[0]
                    return
                if snap.finished:
                    return  # sweep outran the assassin
                time.sleep(0.02)

        threading.Thread(target=assassin, daemon=True).start()

    try:
        coordinator.execute(workers=2, on_workers=kill_when_leased, poll=0.05)
        result = coordinator.merge()
        report = coordinator.report(time.perf_counter() - start)
    finally:
        coordinator.close()
    print("      " + report.summary())
    if "pid" not in killed:
        fail("the chaos thread never killed a worker")
    print(f"      SIGKILLed worker pid={killed['pid']}")
    if result_text(result) != reference:
        fail("sweep result differs from the single-process reference")
    done = report.completions + report.prestored_units
    if done != report.units:
        fail(f"{report.units} units but only {done} accounted done")


def journal_chaos_leg(spec, store: Path, reference: str) -> None:
    """SIGKILL the only worker mid-journaling, tear the tail, resume."""
    coordinator = FabricCoordinator(
        spec,
        trials=TRIALS,
        seed=SEED,
        chunk_size=CHUNK,
        store=store,
        lease_ttl=LEASE_TTL,
        batch=1,  # one journal commit per unit: maximal append traffic
    )
    killed: dict[str, object] = {}

    def kill_mid_journal(pids: list[int]) -> None:
        if not pids:
            fail("expected a spawned worker for the journal-chaos leg")

        def assassin() -> None:
            deadline = time.monotonic() + KILL_DEADLINE
            while time.monotonic() < deadline:
                snap = coordinator.queue.snapshot()
                # Strike while the worker is actively appending —
                # after some completions landed but well before the
                # sweep is over.
                if 0 < snap.done < snap.total:
                    os.kill(pids[0], signal.SIGKILL)
                    killed["pid"] = pids[0]
                    killed["done"] = snap.done
                    return
                if snap.finished:
                    return
                time.sleep(0.005)

        threading.Thread(target=assassin, daemon=True).start()

    try:
        # inline_fallback=False: once the worker dies the queue stalls;
        # we stop waiting as soon as the kill has landed.
        procs = coordinator.spawn_workers(1)
        kill_mid_journal([p.pid for p in procs])
        deadline = time.monotonic() + KILL_DEADLINE
        while "pid" not in killed and time.monotonic() < deadline:
            if coordinator.queue.finished():
                break
            time.sleep(0.02)
        for proc in procs:
            proc.join(timeout=KILL_DEADLINE)
        if "pid" not in killed:
            fail("the journal-chaos thread never killed the worker")
        snap = coordinator.queue.snapshot()
        done_before = snap.done
        print(
            f"      SIGKILLed the journaling worker pid={killed['pid']} "
            f"({done_before}/{snap.total} units done)"
        )
        # Tear the journal tail the way a mid-write SIGKILL would: a
        # partial record with no terminating newline.
        journal = coordinator.root / "JOURNAL.jsonl"
        with open(journal, "ab") as fh:
            fh.write(b'{"q": 999999, "op": "done", "w": "torn')
    finally:
        coordinator.close()

    resumed = run_sweep(
        spec,
        trials=TRIALS,
        seed=SEED,
        workers=0,  # finish inline: deterministic, single process
        chunk_size=CHUNK,
        store=store,
        lease_ttl=LEASE_TTL,
    )
    print("      " + resumed.report.summary())
    if result_text(resumed.result) != reference:
        fail("journal-chaos result differs from the reference")
    report = resumed.report
    if report.completions + report.prestored_units != report.units:
        fail("journal-chaos resume left units unaccounted")
    # Replay must have kept the pre-kill completions: the resumed run
    # may recompute at most the units the dead worker never finished.
    if report.completions > report.units - done_before:
        fail(
            f"journal replay lost completions: {done_before} were done "
            f"before the kill, yet the resume recomputed "
            f"{report.completions} of {report.units}"
        )


def main() -> int:
    spec = get_figure_spec(FIGURE)
    print(f"[1/4] single-process reference ({FIGURE}, trials={TRIALS})")
    reference = result_text(
        run_experiment(
            spec, trials=TRIALS, seed=SEED, jobs=1, chunk_size=CHUNK
        )
    )

    with tempfile.TemporaryDirectory(prefix="fabric-smoke-") as tmp:
        store = Path(tmp) / "store"
        print("[2/4] fabric sweep: 2 workers, one SIGKILLed holding a lease")
        kill_leg(spec, store, reference)

        print("[3/4] resume over the same store must recompute nothing")
        resumed = run_sweep(
            spec,
            trials=TRIALS,
            seed=SEED,
            workers=2,
            chunk_size=CHUNK,
            store=store,
            lease_ttl=LEASE_TTL,
        )
        print("      " + resumed.report.summary())
        if result_text(resumed.result) != reference:
            fail("resumed result differs from the reference")
        if resumed.report.leases or resumed.report.completions:
            fail(
                "resume recomputed work: "
                f"{resumed.report.leases} leases, "
                f"{resumed.report.completions} completions"
            )

    with tempfile.TemporaryDirectory(prefix="fabric-smoke-j-") as tmp:
        print("[4/4] journal chaos: kill mid-append, tear the tail, resume")
        journal_chaos_leg(spec, Path(tmp) / "store", reference)

    print(
        "OK: sweeps survived a SIGKILLed worker and a torn journal, "
        "stayed bit-identical, and resumed for free"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
