#!/usr/bin/env python
"""Benchmark the serving topologies: single process vs worker pool.

Three phases:

1. **Duplicate-heavy replay, both topologies** — the correctness gate.
   The same deterministic request stream (distinct workloads first,
   then their duplicates) runs against the in-process single server and
   against the pooled front end (``--workers N``); every response body
   must be byte-identical across topologies and the ``/metrics``
   totals for ``computed``/``coalesced``/``cache_hits`` must match.
   Hard failure if not — this is the pooled stack's equivalence proof,
   and it runs on every host including single-CPU CI.
2. **Throughput, single process** — distinct compute-bound workloads
   over keep-alive client connections; records req/s.  When
   ``BENCH_service.json`` already holds a single-process figure from
   the same host, a fresh measurement below 90% of it is a hard
   failure (the refactor must not tax the ``--workers 1`` path).
3. **Throughput, pooled** — same stream against ``--workers N``.  On a
   host with ≥ 2 CPUs the pooled figure must reach ``1.5×`` the
   single-process figure (hard gate).  On a single-CPU host the phase
   is *skipped* and recorded as ``"skipped: single-cpu"`` — pre-forked
   workers cannot beat one core, and the build must say so rather than
   fail or lie.

Results land in the ``workers`` section of ``BENCH_service.json``
(the pytest harness owns the top-level duplicate-heavy figures).

Usage::

    PYTHONPATH=src python scripts/bench_service.py [--requests N]
        [--clients N] [--workers N] [--lax]
    make bench-service-pool
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import socket
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.graph import graph_to_dict
from repro.rng import make_rng
from repro.service import (
    DeadlineAssignmentService,
    PooledFrontend,
    WorkerPool,
    create_server,
)
from repro.system.platform import platform_to_dict
from repro.workload import WorkloadParams, generate_workload

GATE_SPEEDUP = 1.5
GATE_SINGLE_FRACTION = 0.9


def request_bodies(count: int, *, n_tasks: int = 40) -> list[bytes]:
    """Distinct mid-size workloads, one canonical request body each."""
    bodies = []
    params = WorkloadParams(m=4, n_tasks_range=(n_tasks, n_tasks))
    for seed in range(count):
        wl = generate_workload(params, make_rng(seed))
        bodies.append(
            json.dumps(
                {
                    "graph": graph_to_dict(wl.graph),
                    "platform": platform_to_dict(wl.platform),
                    "metric": "ADAPT-L",
                }
            ).encode()
        )
    return bodies


class Endpoint:
    """One live serving topology (context manager)."""

    def __init__(self, kind: str, workers: int, clients: int) -> None:
        self.kind = kind
        self.workers = workers
        self.clients = clients
        self._service = None
        self._server = None
        self._thread = None
        self._frontend = None

    def __enter__(self) -> "Endpoint":
        if self.kind == "single":
            self._service = DeadlineAssignmentService(
                cache_size=4096, batch_size=8, batch_wait=0.001, workers=4
            )
            self._server = create_server(port=0, service=self._service)
            self._thread = threading.Thread(
                target=self._server.serve_forever, daemon=True
            )
            self._thread.start()
            self.host, self.port = self._server.server_address[:2]
        else:
            self._frontend = PooledFrontend(
                WorkerPool(
                    self.workers, cache_size=4096, batch_size=8,
                    batch_wait=0.001, threads=4,
                )
            )
            self._frontend.start(timeout=180.0)
            self.host, self.port = self._frontend.address
        return self

    def __exit__(self, *exc_info) -> None:
        if self._frontend is not None:
            self._frontend.close(timeout=10.0)
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._service.close(timeout=10.0)
            self._thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    def replay_sequential(self, bodies: list[bytes]) -> list[bytes]:
        """POST each body in order on one keep-alive connection."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=120)
        out = []
        try:
            for body in bodies:
                conn.request(
                    "POST",
                    "/assign",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                payload = response.read()
                if response.status != 200:
                    raise SystemExit(
                        f"[bench-service] {self.kind}: unexpected "
                        f"{response.status}: {payload[:120]!r}"
                    )
                out.append(payload)
        finally:
            conn.close()
        return out

    def drive(self, bodies: list[bytes]) -> float:
        """POST every body from a pool of keep-alive clients; seconds."""
        chunks = [bodies[i :: self.clients] for i in range(self.clients)]

        def run_client(chunk: list[bytes]) -> None:
            conn = http.client.HTTPConnection(self.host, self.port)
            conn.connect()
            conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            try:
                for body in chunk:
                    conn.request(
                        "POST",
                        "/assign",
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    assert response.status == 200, response.status
                    response.read()
            finally:
                conn.close()

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=self.clients) as pool:
            list(pool.map(run_client, chunks))
        return time.perf_counter() - start

    def metrics_totals(self) -> dict[str, float]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=60)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            text = response.read().decode()
        finally:
            conn.close()
        series: dict[str, float] = {}
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            try:
                series[name] = float(value)
            except ValueError:
                continue
        return {
            "computed": series.get(
                'repro_assignments_total{source="computed"}', 0.0
            ),
            "coalesced": series.get(
                'repro_assignments_total{source="coalesced"}', 0.0
            ),
            "cache_hits": series.get("repro_cache_hits_total", 0.0),
        }


def equivalence_phase(
    workers: int, clients: int, distinct: int, duplicates: int
) -> dict:
    """Gate: pooled responses and metric totals equal single-process."""
    bodies = request_bodies(distinct, n_tasks=12)
    stream = bodies + [bodies[i % distinct] for i in range(duplicates)]
    results = {}
    totals = {}
    for kind in ("single", "pooled"):
        with Endpoint(kind, workers, clients) as endpoint:
            results[kind] = endpoint.replay_sequential(stream)
            totals[kind] = endpoint.metrics_totals()
    mismatches = sum(
        1
        for a, b in zip(results["single"], results["pooled"])
        if a != b
    )
    if mismatches:
        raise SystemExit(
            f"[bench-service] FAIL: {mismatches}/{len(stream)} pooled "
            "responses differ from the single-process bytes"
        )
    if totals["single"] != totals["pooled"]:
        raise SystemExit(
            "[bench-service] FAIL: /metrics totals diverge: "
            f"single={totals['single']} pooled={totals['pooled']}"
        )
    print(
        f"[bench-service] equivalence: {len(stream)} responses "
        f"byte-identical across topologies; totals {totals['single']}"
    )
    return {
        "responses_compared": len(stream),
        "bit_identical": True,
        "metrics_totals": {
            key: int(value) for key, value in totals["single"].items()
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=96)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--workers",
        type=int,
        default=max(2, min(os.cpu_count() or 1, 4)),
        help="pooled-topology worker processes (default min(cpu,4), ≥2)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_service.json",
    )
    parser.add_argument(
        "--lax",
        action="store_true",
        help="report gate failures without failing the run",
    )
    args = parser.parse_args(argv)
    cpu_count = os.cpu_count() or 1
    failures: list[str] = []

    # Phase 1: equivalence (always runs, any host).
    equivalence = equivalence_phase(
        args.workers, args.clients, distinct=8, duplicates=24
    )

    previous = {}
    if args.out.exists():
        try:
            previous = json.loads(args.out.read_text())
        except ValueError:
            previous = {}

    # Phase 2a: the recorded duplicate-heavy scenario, single process —
    # same mix as benchmarks/test_bench_service.py (that's what the
    # file's requests_per_second baseline measures), so the ±10%
    # regression guard compares like for like.
    dup_total = args.requests
    dup_distinct = max(4, dup_total // 16)
    dup_bodies = (
        request_bodies(dup_distinct, n_tasks=40)
        * (dup_total // dup_distinct + 1)
    )[:dup_total]
    random.Random(2026).shuffle(dup_bodies)
    with Endpoint("single", 1, args.clients) as endpoint:
        dup_seconds = endpoint.drive(dup_bodies)
    dup_rps = dup_total / dup_seconds
    print(
        f"[bench-service] duplicate-heavy single-process: {dup_total} "
        f"requests ({dup_distinct} distinct) x {args.clients} clients "
        f"-> {dup_rps:,.0f} req/s"
    )

    # Phase 2b: single-process throughput over distinct workloads (the
    # compute-bound stream the pooled speedup is judged against).
    bodies = request_bodies(args.requests, n_tasks=12)
    with Endpoint("single", 1, args.clients) as endpoint:
        endpoint.drive(bodies[: max(4, args.requests // 8)])  # warm-up
        single_seconds = endpoint.drive(bodies)
    single_rps = len(bodies) / single_seconds
    print(
        f"[bench-service] single-process: {len(bodies)} distinct "
        f"requests x {args.clients} clients -> {single_rps:,.0f} req/s"
    )

    # Phase 3: pooled throughput (multi-core hosts only).
    if cpu_count >= 2:
        with Endpoint("pooled", args.workers, args.clients) as endpoint:
            endpoint.drive(bodies[: max(4, args.requests // 8)])
            pooled_seconds = endpoint.drive(bodies)
        pooled_rps = len(bodies) / pooled_seconds
        speedup = pooled_rps / single_rps
        note = None
        print(
            f"[bench-service] pooled ({args.workers} workers): "
            f"{pooled_rps:,.0f} req/s | speedup x{speedup:.2f} "
            f"(target x{GATE_SPEEDUP})"
        )
        if speedup < GATE_SPEEDUP:
            failures.append(
                f"pooled speedup x{speedup:.2f} below the "
                f"x{GATE_SPEEDUP} target on a {cpu_count}-CPU host"
            )
    else:
        pooled_rps = None
        speedup = None
        note = "skipped: single-cpu"
        print(
            "[bench-service] pooled throughput skipped: single-cpu host "
            "(pre-forked workers cannot beat one core)"
        )

    # Single-process regression guard against the recorded baseline —
    # compared on the duplicate-heavy replay, the scenario the baseline
    # actually measures.
    baseline = previous.get("requests_per_second")
    if (
        baseline
        and previous.get("cpu_count") in (None, cpu_count)
        and previous.get("requests") in (None, dup_total)
        and dup_rps < GATE_SINGLE_FRACTION * float(baseline)
    ):
        failures.append(
            f"duplicate-heavy single-process throughput {dup_rps:,.0f} "
            f"req/s fell below {GATE_SINGLE_FRACTION:.0%} of the "
            f"recorded {float(baseline):,.0f} req/s"
        )

    workers_leg = {
        "workers": args.workers,
        "distinct_requests": len(bodies),
        "clients": args.clients,
        "duplicate_heavy_rps": round(dup_rps, 2),
        "single_process_rps": round(single_rps, 2),
        "pooled_rps": None if pooled_rps is None else round(pooled_rps, 2),
        "speedup": None if speedup is None else round(speedup, 4),
        "target": GATE_SPEEDUP,
        "note": note,
        "equivalence": equivalence,
    }
    doc = dict(previous) if previous else {"format": "repro.bench-service/1"}
    doc["cpu_count"] = cpu_count
    doc["workers"] = workers_leg
    doc["multiprocess_note"] = (
        note
        if note
        else f"pooled x{speedup:.2f} vs single process "
        f"({args.workers} workers)"
    )
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"[bench-service] wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"[bench-service] GATE: {failure}", file=sys.stderr)
        if not args.lax:
            return 1
        print("[bench-service] --lax: gates reported, not enforced")
    return 0


if __name__ == "__main__":
    sys.exit(main())
