#!/usr/bin/env python
"""Benchmark the content-addressed trial cache (cold / warm / delta).

Three measured scenarios over a fig2-shaped sweep, all ``jobs=1`` so
the store's effect is isolated from process-pool variance:

* **cold** — fresh store: every (cell, seed-chunk) partial is computed
  and appended (0% hit rate).
* **warm** — same sweep, same store: every partial is restored (100%
  hit rate).  This is the resumed/re-run path and must be at least 5x
  faster than cold.
* **delta** — one new series added to the sweep, same store: only the
  new series' judgments run; the three original series come back as
  hits.  Must be cheaper than computing the widened sweep from scratch.

Every cached result is also compared — as canonical JSON text, which
round-trips NaN where ``dict.__eq__`` does not — against the matching
cache-off run, so the speedups can never come from skipping work that
changed the numbers.

Usage::

    PYTHONPATH=src python scripts/bench_cache.py [--trials N]
    make bench-cache
"""

from __future__ import annotations

import argparse
import json
import platform as platform_mod
import sys
import tempfile
import time
from pathlib import Path

from repro.core.metrics import METRIC_NAMES
from repro.experiments import ExperimentSpec, TrialConfig, run_experiment
from repro.store import TrialStore
from repro.workload import WorkloadParams

BASE_SERIES = METRIC_NAMES[:3]  # PURE, NORM, ADAPT-G
DELTA_SERIES = METRIC_NAMES  # ... plus ADAPT-L


def build_spec(series: tuple[str, ...]) -> ExperimentSpec:
    """A *series*-curve sweep over the system size (fig2-shaped)."""
    base = WorkloadParams()  # the paper's defaults: 40-60 tasks, m swept

    def config_for(x, metric: str) -> TrialConfig:
        return TrialConfig(workload=base.with_overrides(m=int(x)), metric=metric)

    return ExperimentSpec(
        name="bench-cache",
        title="Trial-cache benchmark",
        x_label="processors m",
        x_values=(3, 6),
        series=series,
        config_for=config_for,
    )


def canonical(result) -> str:
    """Result doc as comparable text (NaN-safe, timing stripped)."""
    doc = result.to_dict()
    doc.pop("elapsed_seconds", None)
    return json.dumps(doc, sort_keys=True)


def timed_run(spec: ExperimentSpec, trials: int, seed: int, cache=None):
    start = time.perf_counter()
    result = run_experiment(
        spec, trials=trials, seed=seed, jobs=1, engine="paired", cache=cache
    )
    return time.perf_counter() - start, result


def stats_doc(stats) -> dict:
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "hit_rate": round(stats.hit_rate, 4),
        "appends": stats.appends,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trials", type=int, default=96, help="trials per cell (default 96)"
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_cache.json",
        help="output JSON path (default: repo-root BENCH_cache.json)",
    )
    args = parser.parse_args(argv)

    base_spec = build_spec(BASE_SERIES)
    delta_spec = build_spec(DELTA_SERIES)
    print(
        f"benchmarking trial cache: {len(BASE_SERIES)}-series sweep "
        f"(+1 delta series), {len(base_spec.x_values)} x-values, "
        f"{args.trials} trials/cell, jobs=1"
    )

    off_s, off_result = timed_run(base_spec, args.trials, args.seed)
    off_text = canonical(off_result)
    print(f"cache off (baseline):     {off_s:.3f} s")

    with tempfile.TemporaryDirectory(prefix="bench-cache-") as tmp:
        store = TrialStore(Path(tmp) / "store")
        cold_s, cold_result = timed_run(
            base_spec, args.trials, args.seed, cache=store
        )
        cold_stats = cold_result.cache_stats
        print(
            f"cold (fresh store):       {cold_s:.3f} s "
            f"({cold_stats.hits} hits / {cold_stats.misses} misses)"
        )
        warm_s, warm_result = timed_run(
            base_spec, args.trials, args.seed, cache=store
        )
        warm_stats = warm_result.cache_stats
        print(
            f"warm (same store):        {warm_s:.3f} s "
            f"({warm_stats.hits} hits / {warm_stats.misses} misses)"
        )
        delta_s, delta_result = timed_run(
            delta_spec, args.trials, args.seed, cache=store
        )
        delta_stats = delta_result.cache_stats
        print(
            f"delta (+{DELTA_SERIES[-1]}):         {delta_s:.3f} s "
            f"({delta_stats.hits} hits / {delta_stats.misses} misses)"
        )
        store.close()

    # The widened sweep from scratch — what delta must beat.
    full_s, full_result = timed_run(delta_spec, args.trials, args.seed)
    print(f"cache off (full 4-series): {full_s:.3f} s")

    failures = []
    if canonical(cold_result) != off_text:
        failures.append("cold run differs from cache-off run")
    if canonical(warm_result) != off_text:
        failures.append("warm run differs from cache-off run")
    if canonical(delta_result) != canonical(full_result):
        failures.append("delta run differs from cache-off 4-series run")
    if warm_stats.misses != 0:
        failures.append(f"warm run recomputed {warm_stats.misses} partials")
    if cold_stats.hits != 0:
        failures.append(f"cold run somehow hit {cold_stats.hits} partials")
    warm_speedup = cold_s / warm_s
    if warm_speedup < 5.0:
        failures.append(f"warm speedup {warm_speedup:.2f}x is below 5x")
    if delta_s >= full_s:
        failures.append(
            f"delta run ({delta_s:.3f} s) is not cheaper than the "
            f"widened sweep from scratch ({full_s:.3f} s)"
        )
    for failure in failures:
        print(f"FATAL: {failure}")
    if failures:
        return 1

    print(
        f"warm speedup: {warm_speedup:.2f}x; delta vs full cold: "
        f"{full_s / delta_s:.2f}x (bit-identical results)"
    )
    doc = {
        "format": "repro.bench-cache/1",
        "spec": base_spec.name,
        "series": list(BASE_SERIES),
        "delta_series": DELTA_SERIES[-1],
        "x_values": list(base_spec.x_values),
        "trials_per_cell": args.trials,
        "seed": args.seed,
        "jobs": 1,
        "engine": "paired",
        "off_seconds": round(off_s, 6),
        "cold_seconds": round(cold_s, 6),
        "warm_seconds": round(warm_s, 6),
        "delta_seconds": round(delta_s, 6),
        "full_cold_seconds": round(full_s, 6),
        "warm_speedup": round(warm_speedup, 4),
        "delta_speedup_vs_full": round(full_s / delta_s, 4),
        "cold_stats": stats_doc(cold_stats),
        "warm_stats": stats_doc(warm_stats),
        "delta_stats": stats_doc(delta_stats),
        "bit_identical": True,
        "python": platform_mod.python_version(),
        "machine": platform_mod.machine(),
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
