#!/usr/bin/env python
"""End-to-end smoke test of the kernel's oracle contract (used by CI).

Runs a tiny sweep twice through ``python -m repro experiment`` at the
CLI boundary — once with ``REPRO_KERNEL=0`` (string-keyed reference
pipeline) and once with ``REPRO_KERNEL=1`` (compiled kernel, the
default) — and requires the two printed reports to match byte for
byte.  This is the bit-identity contract of ``repro.kernel`` enforced
on the full path the users take: CLI → experiment engine → trial →
slicing → EDF → report formatting.

A second pair of runs exercises ``--engine paired-ref`` against the
default engine under ``REPRO_KERNEL=1``, checking the per-run override
is as sound as the environment switch.

Exits non-zero with a diagnostic on any divergence.

Usage::

    PYTHONPATH=src python scripts/kernel_smoke.py
    make kernel-smoke
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

FIGURE = "fig2"
TRIALS = "8"


def run_once(kernel: str, engine: str = "paired") -> str:
    """One CLI run; returns the report text (wall-clock normalized)."""
    env = dict(os.environ)
    env["REPRO_KERNEL"] = kernel
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "experiment",
            FIGURE,
            "--trials",
            TRIALS,
            "--jobs",
            "1",
            "--engine",
            engine,
        ],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(
            f"FATAL: CLI exited {proc.returncode} "
            f"(REPRO_KERNEL={kernel}, engine={engine})"
        )
    # Wall-clock is the one legitimately non-deterministic part of the
    # report; everything else must match byte for byte.
    return re.sub(r"elapsed=\S+", "elapsed=*", proc.stdout)


def main() -> int:
    reference = run_once("0")
    print(f"reference run (REPRO_KERNEL=0): {len(reference)} bytes of report")
    kernel = run_once("1")
    print(f"kernel run    (REPRO_KERNEL=1): {len(kernel)} bytes of report")

    failures = []
    if kernel != reference:
        failures.append(
            "REPRO_KERNEL=1 report differs from the REPRO_KERNEL=0 report"
        )

    ref_engine = run_once("1", engine="paired-ref")
    print(f"paired-ref run (REPRO_KERNEL=1): {len(ref_engine)} bytes")
    if ref_engine != reference:
        failures.append(
            "--engine paired-ref report differs from the reference report"
        )

    for failure in failures:
        print(f"FATAL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("kernel smoke OK: kernel and reference reports are byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
