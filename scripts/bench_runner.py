#!/usr/bin/env python
"""Benchmark the paired-trial engine against the per-cell engine.

Runs the same 4-series sweep (the shape of the paper's Figs. 2–4: one
curve per metric) through both ``run_experiment`` engines with
``jobs=1`` — serial execution isolates the amortization win from
process-pool effects — asserts the results are bit-identical, and
records the speedup to ``BENCH_runner.json`` so the perf trajectory of
the Monte Carlo hot path is tracked across PRs.

Usage::

    PYTHONPATH=src python scripts/bench_runner.py [--trials N] [--repeats R]
    make bench-runner
"""

from __future__ import annotations

import argparse
import json
import platform as platform_mod
import sys
import time
from pathlib import Path

from repro.core.metrics import METRIC_NAMES
from repro.experiments import ExperimentSpec, TrialConfig, run_experiment
from repro.workload import WorkloadParams


def build_spec() -> ExperimentSpec:
    """A 4-series sweep over the system size (fig2-shaped)."""
    base = WorkloadParams()  # the paper's defaults: 40-60 tasks, m swept

    def config_for(x, metric: str) -> TrialConfig:
        return TrialConfig(workload=base.with_overrides(m=int(x)), metric=metric)

    return ExperimentSpec(
        name="bench-runner",
        title="Paired-engine benchmark (4 metrics over system size)",
        x_label="processors m",
        x_values=(3, 6),
        series=METRIC_NAMES,
        config_for=config_for,
    )


def time_engine(
    spec: ExperimentSpec, engine: str, trials: int, seed: int, repeats: int
) -> tuple[float, dict]:
    """Best-of-*repeats* wall-clock for one engine, plus its result doc."""
    best = float("inf")
    doc = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_experiment(
            spec, trials=trials, seed=seed, jobs=1, engine=engine
        )
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        doc = result.to_dict()
        doc.pop("elapsed_seconds")
    return best, doc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trials", type=int, default=96, help="trials per cell (default 96)"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats per engine; best run is kept (default 3)",
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_runner.json",
        help="output JSON path (default: repo-root BENCH_runner.json)",
    )
    args = parser.parse_args(argv)

    spec = build_spec()
    print(
        f"benchmarking {len(spec.series)}-series sweep, "
        f"{len(spec.x_values)} x-values, {args.trials} trials/cell, jobs=1"
    )

    percell_s, percell_doc = time_engine(
        spec, "percell", args.trials, args.seed, args.repeats
    )
    print(f"percell engine: {percell_s:.3f} s")
    paired_s, paired_doc = time_engine(
        spec, "paired", args.trials, args.seed, args.repeats
    )
    print(f"paired engine:  {paired_s:.3f} s")

    if percell_doc != paired_doc:
        print("FATAL: engines disagree — results are not bit-identical")
        return 1
    speedup = percell_s / paired_s
    print(f"speedup: {speedup:.2f}x (bit-identical results)")

    doc = {
        "format": "repro.bench-runner/1",
        "spec": spec.name,
        "series": list(spec.series),
        "x_values": list(spec.x_values),
        "trials_per_cell": args.trials,
        "seed": args.seed,
        "jobs": 1,
        "repeats": args.repeats,
        "percell_seconds": round(percell_s, 6),
        "paired_seconds": round(paired_s, 6),
        "speedup": round(speedup, 4),
        "bit_identical": True,
        "python": platform_mod.python_version(),
        "machine": platform_mod.machine(),
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
