#!/usr/bin/env python
"""Benchmark the paired-trial engine against the per-cell engine.

Runs the same 4-series sweep (the shape of the paper's Figs. 2–4: one
curve per metric) through both ``run_experiment`` engines with
``jobs=1`` — serial execution isolates the amortization win from
process-pool effects — asserts the results are bit-identical, and
records the speedup to ``BENCH_runner.json`` so the perf trajectory of
the Monte Carlo hot path is tracked across PRs.  The paired engine is
then timed with ``jobs=1`` vs ``jobs=4`` at a larger trial count
(``--mp-trials``; the pool's startup cost needs real work to amortize
against) — still bit-identical, the scheduling invariance the engines
promise — and the multiprocess speedup is recorded alongside.

Usage::

    PYTHONPATH=src python scripts/bench_runner.py [--trials N] [--repeats R]
    make bench-runner
"""

from __future__ import annotations

import argparse
import json
import os
import platform as platform_mod
import sys
import time
from pathlib import Path

from repro.core.metrics import METRIC_NAMES
from repro.experiments import ExperimentSpec, TrialConfig, run_experiment
from repro.workload import WorkloadParams


def build_spec() -> ExperimentSpec:
    """A 4-series sweep over the system size (fig2-shaped)."""
    base = WorkloadParams()  # the paper's defaults: 40-60 tasks, m swept

    def config_for(x, metric: str) -> TrialConfig:
        return TrialConfig(workload=base.with_overrides(m=int(x)), metric=metric)

    return ExperimentSpec(
        name="bench-runner",
        title="Paired-engine benchmark (4 metrics over system size)",
        x_label="processors m",
        x_values=(3, 6),
        series=METRIC_NAMES,
        config_for=config_for,
    )


def time_engine(
    spec: ExperimentSpec,
    engine: str,
    trials: int,
    seed: int,
    repeats: int,
    jobs: int = 1,
) -> tuple[float, dict]:
    """Best-of-*repeats* wall-clock for one engine, plus its result doc."""
    best = float("inf")
    doc = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_experiment(
            spec, trials=trials, seed=seed, jobs=jobs, engine=engine
        )
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        doc = result.to_dict()
        doc.pop("elapsed_seconds")
    return best, doc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trials", type=int, default=96, help="trials per cell (default 96)"
    )
    parser.add_argument(
        "--mp-trials",
        type=int,
        default=384,
        help="trials per cell for the jobs=1 vs jobs=4 comparison "
        "(default 384; large enough to amortize pool startup)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats per engine; best run is kept (default 3)",
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_runner.json",
        help="output JSON path (default: repo-root BENCH_runner.json)",
    )
    args = parser.parse_args(argv)

    spec = build_spec()
    print(
        f"benchmarking {len(spec.series)}-series sweep, "
        f"{len(spec.x_values)} x-values, {args.trials} trials/cell, jobs=1"
    )

    percell_s, percell_doc = time_engine(
        spec, "percell", args.trials, args.seed, args.repeats
    )
    print(f"percell engine: {percell_s:.3f} s")
    paired_s, paired_doc = time_engine(
        spec, "paired", args.trials, args.seed, args.repeats
    )
    print(f"paired engine:  {paired_s:.3f} s")

    print(
        f"multiprocess leg: paired engine, {args.mp_trials} trials/cell, "
        "jobs=1 vs jobs=4"
    )
    mp1_s, mp1_doc = time_engine(
        spec, "paired", args.mp_trials, args.seed, args.repeats, jobs=1
    )
    print(f"paired, jobs=1: {mp1_s:.3f} s")
    mp4_s, mp4_doc = time_engine(
        spec, "paired", args.mp_trials, args.seed, args.repeats, jobs=4
    )
    print(f"paired, jobs=4: {mp4_s:.3f} s")

    # Compare as canonical JSON text: all-fail cells carry NaN
    # aggregates, and NaN != NaN would flag identical docs as diverged.
    def text_of(doc: dict) -> str:
        return json.dumps(doc, sort_keys=True)

    if text_of(percell_doc) != text_of(paired_doc):
        print("FATAL: engines disagree — results are not bit-identical")
        return 1
    if text_of(mp1_doc) != text_of(mp4_doc):
        print("FATAL: jobs=4 diverges from jobs=1 — not bit-identical")
        return 1
    speedup = percell_s / paired_s
    multiprocess_speedup = mp1_s / mp4_s
    cpu_count = os.cpu_count() or 1
    print(
        f"speedup: {speedup:.2f}x serial, {multiprocess_speedup:.2f}x "
        "from jobs=4 (bit-identical results)"
    )
    if cpu_count < 4:
        print(
            f"note: only {cpu_count} CPU(s) available — the jobs=4 leg "
            "measures dispatch overhead, not parallel speedup"
        )

    doc = {
        "format": "repro.bench-runner/1",
        "spec": spec.name,
        "series": list(spec.series),
        "x_values": list(spec.x_values),
        "trials_per_cell": args.trials,
        "seed": args.seed,
        "jobs": 1,
        "repeats": args.repeats,
        "percell_seconds": round(percell_s, 6),
        "paired_seconds": round(paired_s, 6),
        "speedup": round(speedup, 4),
        "multiprocess_trials_per_cell": args.mp_trials,
        "multiprocess_jobs": 4,
        "paired_mp_jobs1_seconds": round(mp1_s, 6),
        "paired_mp_jobs4_seconds": round(mp4_s, 6),
        "multiprocess_speedup": round(multiprocess_speedup, 4),
        "bit_identical": True,
        "cpu_count": cpu_count,
        "python": platform_mod.python_version(),
        "machine": platform_mod.machine(),
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
