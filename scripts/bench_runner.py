#!/usr/bin/env python
"""Benchmark the trial engines: per-cell vs paired vs compiled kernel.

Runs the same 4-series sweep (the shape of the paper's Figs. 2–4: one
curve per metric) through the ``run_experiment`` engines with
``jobs=1`` — serial execution isolates the amortization win from
process-pool effects — asserts the results are bit-identical, and
records the speedups to ``BENCH_runner.json`` so the perf trajectory of
the Monte Carlo hot path is tracked across PRs:

* ``speedup`` — the paired engine (workload generated once per trial,
  judged by every series) over the per-cell engine;
* ``kernel_speedup`` — the paired engine on the compiled kernel
  (integer-indexed slicing/metric/EDF fast path, the default) over
  ``engine="paired-ref"`` (the same paired engine forced onto the
  string-keyed reference pipeline).  The two runs must produce
  byte-identical reports — the kernel's oracle contract — and the
  speedup must clear ``--kernel-target`` (default 1.5×), or the
  benchmark fails.  The legs are timed interleaved, best-of-``R``
  each, to keep the ratio honest on noisy machines.
* ``vec_speedup`` — the vectorized tier's batched stage pipeline (the
  stages ``repro.kernel.vec`` lifts onto arrays: estimates → metric
  weights → lockstep EDF, all four metrics of a seed batch folded into
  one EDF call, exactly the seed-batch driver's shape) over the same
  stages through the compiled kernel, one lane at a time.  Slicing is
  excluded from both sides — it is the same sequential DP in both
  tiers (the vec tier only accelerates its tail ranking).  Interleaved
  best-of-``R`` again; every lane's schedule must be bit-identical to
  the compiled kernel's, a seed subsample must match the *reference
  oracle* (``use_kernel=False``) field for field on the default
  tie-break, and the speedup must clear ``--vec-target`` (default
  4.0×), or the benchmark fails.

The paired engine is then timed with ``jobs=1`` vs ``jobs=4`` at a
larger trial count (``--mp-trials``; the pool's startup cost needs real
work to amortize against) — still bit-identical, the scheduling
invariance the engines promise — and the multiprocess speedup is
recorded alongside.  On a single-CPU machine the ``jobs=4`` run would
measure nothing but dispatch overhead, so it is skipped:
``multiprocess_speedup`` is recorded as ``null`` with a
``"skipped: single-cpu"`` note (the ``jobs=1`` baseline is still
timed, keeping the trajectory comparable).

Usage::

    PYTHONPATH=src python scripts/bench_runner.py [--trials N] [--repeats R]
    make bench-runner
"""

from __future__ import annotations

import argparse
import json
import os
import platform as platform_mod
import sys
import time
from pathlib import Path

from repro.core.metrics import METRIC_NAMES
from repro.experiments import ExperimentSpec, TrialConfig, run_experiment
from repro.workload import WorkloadParams


def build_spec() -> ExperimentSpec:
    """A 4-series sweep over the system size (fig2-shaped)."""
    base = WorkloadParams()  # the paper's defaults: 40-60 tasks, m swept

    def config_for(x, metric: str) -> TrialConfig:
        return TrialConfig(workload=base.with_overrides(m=int(x)), metric=metric)

    return ExperimentSpec(
        name="bench-runner",
        title="Paired-engine benchmark (4 metrics over system size)",
        x_label="processors m",
        x_values=(3, 6),
        series=METRIC_NAMES,
        config_for=config_for,
    )


def time_engine(
    spec: ExperimentSpec,
    engine: str,
    trials: int,
    seed: int,
    repeats: int,
    jobs: int = 1,
) -> tuple[float, dict]:
    """Best-of-*repeats* wall-clock for one engine, plus its result doc."""
    best = float("inf")
    doc = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_experiment(
            spec, trials=trials, seed=seed, jobs=jobs, engine=engine
        )
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        doc = result.to_dict()
        doc.pop("elapsed_seconds")
    return best, doc


def vec_leg(
    lanes: int, repeats: int, oracle_checks: int
) -> tuple[float, float, int]:
    """Time the vectorized stage pipeline against the compiled kernel.

    Returns ``(kernel_best, vec_best, lanes_compared)`` in seconds.
    Both sides run the identical work: for each of the paper's four
    metrics over one batch of *lanes* seeds, the estimate stage, the
    metric weight stage, and the EDF schedule over precomputed slicing
    windows — the scalar side through the per-lane compiled kernel
    functions, the vec side through the batch APIs with all four
    metrics folded into one lockstep EDF call (the seed-batch driver's
    production shape).  Per-rep cache clears make every rep recompute
    the value stages; structure arrays (compiled workloads, windows,
    the lane stack) are prewarmed for both sides alike.

    Raises ``SystemExit`` on any bit-identity mismatch — against the
    compiled kernel per lane, and against the reference oracle
    (``use_kernel=False``) on an *oracle_checks*-seed subsample.
    """
    import math

    from repro.core.estimation import get_estimator
    from repro.core.metrics import get_metric
    from repro.experiments.context import TrialContext
    from repro.experiments.runner import run_trial
    from repro.kernel import vec as V
    from repro.kernel.edf import kernel_schedule_edf
    from repro.kernel.metrics import kernel_weights
    from repro.kernel.slicing import kernel_slice

    params = WorkloadParams(m=4)
    contexts = TrialContext.from_seeds(params, list(range(lanes)))
    cws = [c.compiled for c in contexts]
    metrics = [get_metric(name, TrialConfig().adaptive) for name in METRIC_NAMES]
    est_obj = get_estimator("WCET-AVG")

    # Prewarm the structure arrays both tiers share (pure functions of
    # the workloads) and the slicing windows the EDF stage consumes.
    for cw in cws:
        cw.parallel_set_sizes()
        V.vec_arrays(cw)
    windows = {}
    for metric in metrics:
        for cw in cws:
            est = cw.estimates_from_vals(est_obj.name, est_obj.combine)
            weights = kernel_weights(cw, metric, est, est_obj.name)
            ka = kernel_slice(cw, metric, weights)
            windows[(metric.name, id(cw))] = (ka.win_a, ka.win_d)
    all_lanes = [
        (cw, *windows[(metric.name, id(cw))])
        for metric in metrics
        for cw in cws
    ]
    stack = V._lane_stack([lane[0] for lane in all_lanes])
    stack.succ(), stack.pred(), stack.sched(), stack.csr(), stack.topo()

    def clear():
        for cw in cws:
            cw._est_lists.clear()
            cw._weight_lists.clear()
            cw._succ_w_masters.clear()

    def kernel_side():
        clear()
        out = []
        for metric in metrics:
            for cw in cws:
                est = cw.estimates_from_vals(est_obj.name, est_obj.combine)
                kernel_weights(cw, metric, est, est_obj.name)
                win_a, win_d = windows[(metric.name, id(cw))]
                out.append(kernel_schedule_edf(cw, win_a, win_d))
        return out

    def vec_side():
        clear()
        for metric in metrics:
            ests = V.vec_estimates_batch(cws, est_obj.name)
            V.vec_weights_batch(cws, metric, ests, est_obj.name)
        return V.vec_schedule_edf_batch(all_lanes)

    def fsame(a: float, b: float) -> bool:
        return a == b or (math.isnan(a) and math.isnan(b))

    ks_all, vs_all = kernel_side(), vec_side()
    for ks, vs in zip(ks_all, vs_all):
        same = (
            ks.feasible == vs.feasible
            and ks.failed == vs.failed
            and (
                not vs.feasible
                or (
                    fsame(ks.makespan, vs.makespan)
                    and fsame(ks.max_lateness(), vs.max_lateness())
                )
            )
        )
        if not same:
            print("FATAL: vec tier diverges from the compiled kernel")
            raise SystemExit(1)

    # Reference-oracle subsample: full run_trial outcomes, vec tier vs
    # the string-keyed reference pipeline on the default tie-break.
    fields = (
        "success", "degenerate", "n_tasks", "min_laxity",
        "makespan", "max_lateness", "failed_task",
    )
    step = max(1, lanes // max(1, oracle_checks))
    for sp in range(0, lanes, step):
        for metric_name in METRIC_NAMES:
            config = TrialConfig(workload=params, metric=metric_name)
            ref = run_trial(config, sp, contexts[sp], use_kernel=False)
            fast = run_trial(
                config, sp, contexts[sp], use_kernel=True, use_vec=True
            )
            for name in fields:
                a, b = getattr(ref, name), getattr(fast, name)
                if not (
                    a == b
                    or (
                        isinstance(a, float)
                        and isinstance(b, float)
                        and math.isnan(a)
                        and math.isnan(b)
                    )
                ):
                    print(
                        "FATAL: vec tier diverges from the reference "
                        f"oracle (seed {sp}, {metric_name}, {name}: "
                        f"{a!r} != {b!r})"
                    )
                    raise SystemExit(1)

    kernel_best = vec_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        kernel_side()
        kernel_best = min(kernel_best, time.perf_counter() - start)
        start = time.perf_counter()
        vec_side()
        vec_best = min(vec_best, time.perf_counter() - start)
    return kernel_best, vec_best, len(all_lanes)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trials", type=int, default=96, help="trials per cell (default 96)"
    )
    parser.add_argument(
        "--mp-trials",
        type=int,
        default=384,
        help="trials per cell for the jobs=1 vs jobs=4 comparison "
        "(default 384; large enough to amortize pool startup)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timing repeats per engine; best run is kept (default 5)",
    )
    parser.add_argument(
        "--kernel-target",
        type=float,
        default=1.5,
        help="minimum required kernel-over-reference speedup "
        "(default 1.5; the benchmark fails below it)",
    )
    parser.add_argument(
        "--vec-lanes",
        type=int,
        default=1024,
        help="seed lanes per metric in the vectorized leg (default 1024)",
    )
    parser.add_argument(
        "--vec-target",
        type=float,
        default=4.0,
        help="minimum required vec-over-kernel stage speedup "
        "(default 4.0; the benchmark fails below it)",
    )
    parser.add_argument(
        "--vec-checks",
        type=int,
        default=24,
        help="seeds subsampled for the reference-oracle bit-identity "
        "assert in the vectorized leg (default 24)",
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_runner.json",
        help="output JSON path (default: repo-root BENCH_runner.json)",
    )
    args = parser.parse_args(argv)

    spec = build_spec()
    print(
        f"benchmarking {len(spec.series)}-series sweep, "
        f"{len(spec.x_values)} x-values, {args.trials} trials/cell, jobs=1"
    )

    percell_s, percell_doc = time_engine(
        spec, "percell", args.trials, args.seed, args.repeats
    )
    print(f"percell engine: {percell_s:.3f} s")
    paired_s, paired_doc = time_engine(
        spec, "paired", args.trials, args.seed, args.repeats
    )
    print(f"paired engine:  {paired_s:.3f} s")

    # Kernel leg: the compiled fast path vs the string-keyed reference
    # pipeline, same paired engine both sides.  Interleave the repeats
    # (ref, kernel, ref, kernel, …) so ambient load hits both legs
    # alike, and keep the best of each.
    print(
        f"kernel leg: paired (compiled kernel) vs paired-ref "
        f"(reference pipeline), best of {args.repeats} interleaved"
    )
    ref_s = kernel_s = float("inf")
    ref_doc = kernel_doc = None
    for _ in range(args.repeats):
        s, ref_doc = time_engine(
            spec, "paired-ref", args.trials, args.seed, repeats=1
        )
        ref_s = min(ref_s, s)
        s, kernel_doc = time_engine(
            spec, "paired", args.trials, args.seed, repeats=1
        )
        kernel_s = min(kernel_s, s)
    print(f"paired-ref:     {ref_s:.3f} s")
    print(f"paired/kernel:  {kernel_s:.3f} s")

    from repro.kernel.vec import vec_available

    if vec_available():
        print(
            f"vec leg: batched stage pipeline vs compiled kernel, "
            f"{args.vec_lanes} lanes x {len(METRIC_NAMES)} metrics, "
            f"best of {args.repeats} interleaved"
        )
        vk_s, vec_s, vec_lanes_total = vec_leg(
            args.vec_lanes, args.repeats, args.vec_checks
        )
        vec_speedup = vk_s / vec_s
        vec_note = None
        print(f"kernel stages:  {vk_s:.3f} s")
        print(f"vec stages:     {vec_s:.3f} s  ({vec_lanes_total} lanes)")
    else:  # pragma: no cover - numpy is available on the bench box
        vk_s = vec_s = vec_speedup = None
        vec_note = "skipped: numpy unavailable"
        print("vec leg: skipped (numpy unavailable)")

    cpu_count = os.cpu_count() or 1
    single_cpu = cpu_count == 1
    print(
        f"multiprocess leg: paired engine, {args.mp_trials} trials/cell, "
        + ("jobs=1 only (single CPU)" if single_cpu else "jobs=1 vs jobs=4")
    )
    mp1_s, mp1_doc = time_engine(
        spec, "paired", args.mp_trials, args.seed, args.repeats, jobs=1
    )
    print(f"paired, jobs=1: {mp1_s:.3f} s")
    if single_cpu:
        # A jobs=4 pool on one CPU measures dispatch overhead, not
        # parallelism — record the skip instead of a misleading ratio.
        mp4_s = mp4_doc = None
        multiprocess_speedup = None
        multiprocess_note = "skipped: single-cpu"
        print("paired, jobs=4: skipped (single CPU)")
    else:
        mp4_s, mp4_doc = time_engine(
            spec, "paired", args.mp_trials, args.seed, args.repeats, jobs=4
        )
        multiprocess_speedup = mp1_s / mp4_s
        multiprocess_note = None
        print(f"paired, jobs=4: {mp4_s:.3f} s")

    # Compare as canonical JSON text: all-fail cells carry NaN
    # aggregates, and NaN != NaN would flag identical docs as diverged.
    def text_of(doc: dict) -> str:
        return json.dumps(doc, sort_keys=True)

    if text_of(percell_doc) != text_of(paired_doc):
        print("FATAL: engines disagree — results are not bit-identical")
        return 1
    if text_of(ref_doc) != text_of(kernel_doc):
        print(
            "FATAL: kernel diverges from the reference pipeline — "
            "results are not bit-identical"
        )
        return 1
    if mp4_doc is not None and text_of(mp1_doc) != text_of(mp4_doc):
        print("FATAL: jobs=4 diverges from jobs=1 — not bit-identical")
        return 1
    speedup = percell_s / paired_s
    kernel_speedup = ref_s / kernel_s
    print(
        f"speedup: {speedup:.2f}x paired-over-percell, "
        f"{kernel_speedup:.2f}x kernel-over-reference"
        + (
            ""
            if vec_speedup is None
            else f", {vec_speedup:.2f}x vec-over-kernel stages"
        )
        + (
            ""
            if multiprocess_speedup is None
            else f", {multiprocess_speedup:.2f}x from jobs=4"
        )
        + " (bit-identical results)"
    )
    if not single_cpu and cpu_count < 4:
        print(
            f"note: only {cpu_count} CPU(s) available — the jobs=4 leg "
            "measures dispatch overhead, not parallel speedup"
        )
    if kernel_speedup < args.kernel_target:
        print(
            f"FATAL: kernel speedup {kernel_speedup:.3f}x is below the "
            f"{args.kernel_target}x target"
        )
        return 1
    if vec_speedup is not None and vec_speedup < args.vec_target:
        print(
            f"FATAL: vec speedup {vec_speedup:.3f}x is below the "
            f"{args.vec_target}x target"
        )
        return 1

    doc = {
        "format": "repro.bench-runner/1",
        "spec": spec.name,
        "series": list(spec.series),
        "x_values": list(spec.x_values),
        "trials_per_cell": args.trials,
        "seed": args.seed,
        "jobs": 1,
        "repeats": args.repeats,
        "percell_seconds": round(percell_s, 6),
        "paired_seconds": round(paired_s, 6),
        "speedup": round(speedup, 4),
        "paired_ref_seconds": round(ref_s, 6),
        "paired_kernel_seconds": round(kernel_s, 6),
        "kernel_speedup": round(kernel_speedup, 4),
        "kernel_target": args.kernel_target,
        "vec_lanes": args.vec_lanes,
        "vec_kernel_stage_seconds": (
            None if vk_s is None else round(vk_s, 6)
        ),
        "vec_stage_seconds": (
            None if vec_s is None else round(vec_s, 6)
        ),
        "vec_speedup": (
            None if vec_speedup is None else round(vec_speedup, 4)
        ),
        "vec_target": args.vec_target,
        "vec_note": vec_note,
        "multiprocess_trials_per_cell": args.mp_trials,
        "multiprocess_jobs": 4,
        "paired_mp_jobs1_seconds": round(mp1_s, 6),
        "paired_mp_jobs4_seconds": (
            None if mp4_s is None else round(mp4_s, 6)
        ),
        "multiprocess_speedup": (
            None
            if multiprocess_speedup is None
            else round(multiprocess_speedup, 4)
        ),
        "multiprocess_note": multiprocess_note,
        "bit_identical": True,
        "cpu_count": cpu_count,
        "python": platform_mod.python_version(),
        "machine": platform_mod.machine(),
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
