#!/usr/bin/env python
"""End-to-end smoke test of the vectorized tier (used by CI).

Three gates, each fatal:

1. **CLI bit-identity** — a tiny sweep through ``python -m repro
   experiment`` with ``REPRO_VEC=1`` (vectorized tier, seed-batch
   driver) must print the byte-identical report of a ``REPRO_KERNEL=0``
   reference run.  This is the oracle contract on the full user path:
   CLI → paired engine → batch driver → slicing → EDF → report.
2. **Fallback bit-identity** — the same ``REPRO_VEC=1`` run with
   ``REPRO_VEC_NO_NUMPY=1`` (NumPy reported absent) must fall through
   to the compiled kernel and still match the reference byte for byte.
3. **Speedup floor** — the batched stage pipeline (estimates → weights
   → lockstep EDF over a seed batch, all four metrics folded into one
   EDF call) must beat the same stages through the per-lane compiled
   kernel by at least ``VEC_SMOKE_TARGET`` (default 2.0× — a smoke
   floor loose enough for loaded CI boxes; the calibrated ≥4× gate
   lives in ``scripts/bench_runner.py`` / ``BENCH_runner.json``),
   with every lane's schedule bit-identical.

Usage::

    PYTHONPATH=src python scripts/vec_smoke.py
    make vec-smoke
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time

FIGURE = "fig2"
TRIALS = "8"
SMOKE_LANES = 256
SMOKE_REPEATS = 3


def run_once(env_overrides: dict[str, str]) -> str:
    """One CLI run; returns the report text (wall-clock normalized)."""
    env = dict(os.environ)
    env.update(env_overrides)
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "experiment", FIGURE,
            "--trials", TRIALS, "--jobs", "1",
        ],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"FATAL: CLI exited {proc.returncode} ({env_overrides})")
    return re.sub(r"elapsed=\S+", "elapsed=*", proc.stdout)


def stage_speedup() -> float:
    """Best-of-``SMOKE_REPEATS`` interleaved stage-pipeline ratio."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_runner import vec_leg  # noqa: E402 - sibling script

    kernel_s, vec_s, lanes = vec_leg(SMOKE_LANES, SMOKE_REPEATS, 8)
    print(
        f"stage pipeline: kernel {kernel_s:.3f} s, vec {vec_s:.3f} s "
        f"({lanes} lanes, bit-identical)"
    )
    return kernel_s / vec_s


def main() -> int:
    from repro.kernel.vec import vec_available

    if not vec_available():
        print("FATAL: numpy unavailable — the vec smoke cannot run",
              file=sys.stderr)
        return 1

    target = float(os.environ.get("VEC_SMOKE_TARGET", "2.0"))
    failures = []

    reference = run_once({"REPRO_KERNEL": "0", "REPRO_VEC": "0"})
    print(f"reference run (REPRO_KERNEL=0): {len(reference)} bytes of report")
    vec = run_once({"REPRO_KERNEL": "1", "REPRO_VEC": "1"})
    print(f"vec run       (REPRO_VEC=1):    {len(vec)} bytes of report")
    if vec != reference:
        failures.append("REPRO_VEC=1 report differs from the reference report")

    fallback = run_once(
        {"REPRO_KERNEL": "1", "REPRO_VEC": "1", "REPRO_VEC_NO_NUMPY": "1"}
    )
    print(f"fallback run  (numpy absent):   {len(fallback)} bytes of report")
    if fallback != reference:
        failures.append(
            "NumPy-absent fallback report differs from the reference report"
        )

    speedup = stage_speedup()
    print(f"vec stage speedup: {speedup:.2f}x (floor {target}x)")
    if speedup < target:
        failures.append(
            f"vec stage speedup {speedup:.2f}x is below the {target}x floor"
        )

    for failure in failures:
        print(f"FATAL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("vec smoke OK: bit-identical reports, fallback sound, "
          "speedup floor cleared")
    return 0


if __name__ == "__main__":
    sys.exit(main())
