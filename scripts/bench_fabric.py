#!/usr/bin/env python
"""Benchmark the distributed sweep fabric: workers=1 vs workers=N.

Runs the same fig2-shaped sweep three ways — single-process
``run_experiment`` (the baseline the fabric must reproduce bit for
bit), ``run_sweep`` with one worker process, and ``run_sweep`` with N
workers — and records wall-clock throughput (units/second) for each in
``BENCH_fabric.json``.

Correctness gates (hard failures): every fabric result must be
bit-identical to the single-process baseline, and every sweep must
complete all of its units.  Throughput numbers are *recorded, not
gated* — the fabric's per-unit coordination overhead (durable queue
writes under a file lock) and the host's core count decide whether N
workers outrun one, and a single-core CI box must not fail the build
for lacking parallelism.

Usage::

    PYTHONPATH=src python scripts/bench_fabric.py [--trials N] [--workers N]
    make bench-fabric
"""

from __future__ import annotations

import argparse
import json
import os
import platform as platform_mod
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.figures import get_figure_spec
from repro.experiments.runner import run_experiment
from repro.fabric import run_sweep

FIGURE = "fig2"
CHUNK = 2


def canonical(result) -> str:
    doc = result.to_dict()
    doc.pop("elapsed_seconds", None)
    return json.dumps(doc, sort_keys=True)


def sweep_once(spec, trials: int, seed: int, workers: int, root: Path):
    start = time.perf_counter()
    outcome = run_sweep(
        spec,
        trials=trials,
        seed=seed,
        workers=workers,
        chunk_size=CHUNK,
        store=root,
        lease_ttl=30.0,
    )
    return time.perf_counter() - start, outcome


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trials", type=int, default=32, help="trials per cell (default 32)"
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="the 'N' of workers=N (default: CPU count, at least 2)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_fabric.json",
        help="output JSON path (default: repo-root BENCH_fabric.json)",
    )
    args = parser.parse_args(argv)
    n = args.workers or max(os.cpu_count() or 1, 2)

    spec = get_figure_spec(FIGURE)
    print(
        f"benchmarking sweep fabric: {FIGURE}, {args.trials} trials/cell, "
        f"chunk={CHUNK}, workers 1 vs {n}"
    )

    start = time.perf_counter()
    baseline = run_experiment(
        spec, trials=args.trials, seed=args.seed, jobs=1, chunk_size=CHUNK
    )
    single_s = time.perf_counter() - start
    reference = canonical(baseline)
    print(f"single-process baseline:  {single_s:.3f} s")

    rows = {}
    failures = []
    for label, workers in (("workers_1", 1), (f"workers_{n}", n)):
        with tempfile.TemporaryDirectory(prefix="bench-fabric-") as tmp:
            elapsed, outcome = sweep_once(
                spec, args.trials, args.seed, workers, Path(tmp) / "store"
            )
        report = outcome.report
        throughput = report.units / elapsed if elapsed > 0 else float("inf")
        print(
            f"fabric {label.replace('_', '='):>12}: {elapsed:.3f} s "
            f"({report.units} units, {throughput:.1f} units/s, "
            f"{report.reissues} re-issued)"
        )
        if canonical(outcome.result) != reference:
            failures.append(f"{label} result differs from the baseline")
        if report.completions + report.prestored_units != report.units:
            failures.append(f"{label} left units unfinished")
        rows[label] = {
            "workers": workers,
            "seconds": round(elapsed, 6),
            "units": report.units,
            "units_per_second": round(throughput, 4),
            "leases": report.leases,
            "reissues": report.reissues,
        }

    for failure in failures:
        print(f"FATAL: {failure}")
    if failures:
        return 1

    speedup = rows["workers_1"]["seconds"] / rows[f"workers_{n}"]["seconds"]
    print(f"workers={n} vs workers=1 speedup: {speedup:.2f}x (recorded, not gated)")
    doc = {
        "format": "repro.bench-fabric/1",
        "figure": FIGURE,
        "trials_per_cell": args.trials,
        "seed": args.seed,
        "chunk_size": CHUNK,
        "single_process_seconds": round(single_s, 6),
        "sweeps": rows,
        "speedup_n_vs_1": round(speedup, 4),
        "bit_identical": True,
        "cpu_count": os.cpu_count(),
        "python": platform_mod.python_version(),
        "machine": platform_mod.machine(),
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
