#!/usr/bin/env python
"""Benchmark the distributed sweep fabric: overhead, protocol, scaling.

Legs, over the same fig2-shaped sweep:

* **single** — single-process ``run_experiment``, the baseline every
  fabric result must reproduce bit for bit;
* **workers_1** — one worker draining the whole queue *inline* (the
  coordinator computing, ``workers=0``), which isolates the fabric's
  per-unit overhead — journaled queue commits, batched leasing, group
  commit — from process-spawn cost.  **Gated**: wall clock must stay
  within ``OVERHEAD_MAX`` (1.15×) of the single-process baseline.  The
  leg also reports the worker loop's lease/compute/commit split;
* **workers_N** — N spawned worker processes, recorded when the host
  has more than one CPU and noted ``"skipped: single-cpu"`` otherwise
  (matching ``bench_runner`` conventions) — a one-core box must not
  fail the build for lacking parallelism;
* **queue protocol** — a synthetic sweep driven straight through
  ``lease_batch``/``complete_batch`` with no trial compute, measuring
  pure queue throughput.  **Gated**: at least ``QUEUE_FLOOR`` units/s
  (5× the 54 units/s the pre-journal whole-document queue managed
  end-to-end on this container);
* **resume** — re-running the finished sweep against the same store
  must be free: zero completions, zero recomputed units.

Bit-identity of every fabric merge against the baseline is always a
hard failure.

Usage::

    PYTHONPATH=src python scripts/bench_fabric.py [--trials N] [--workers N]
    make bench-fabric
"""

from __future__ import annotations

import argparse
import json
import os
import platform as platform_mod
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.figures import get_figure_spec
from repro.experiments.runner import run_experiment
from repro.fabric import FabricCoordinator, run_sweep

FIGURE = "fig2"
CHUNK = 2  # deliberately fine-grained: many units stress the protocol

#: Hard gates (see module docstring).
OVERHEAD_MAX = 1.15
QUEUE_FLOOR = 270.0  # units/s: 5x the pre-journal 54 units/s
QUEUE_UNITS = 1024
QUEUE_BATCH = 16


def canonical(result) -> str:
    doc = result.to_dict()
    doc.pop("elapsed_seconds", None)
    return json.dumps(doc, sort_keys=True)


def run_single(spec, trials: int, seed: int) -> tuple[float, str]:
    """Best-of-two single-process baseline (damps one-off jitter)."""
    best, reference = float("inf"), ""
    for _ in range(2):
        start = time.perf_counter()
        result = run_experiment(
            spec, trials=trials, seed=seed, jobs=1, chunk_size=CHUNK
        )
        best = min(best, time.perf_counter() - start)
        reference = canonical(result)
    return best, reference


def run_inline_leg(spec, trials: int, seed: int, root: Path):
    """One inline worker over a fresh store; returns timing + stats."""
    stats: dict[str, float] = {}
    start = time.perf_counter()
    coordinator = FabricCoordinator(
        spec,
        trials=trials,
        seed=seed,
        chunk_size=CHUNK,
        store=root,
        lease_ttl=30.0,
    )
    try:
        coordinator.run_inline(stats=stats)
        result = coordinator.merge()
        elapsed = time.perf_counter() - start
        report = coordinator.report(elapsed)
    finally:
        coordinator.close()
    return elapsed, result, report, stats


def run_queue_protocol_leg(root: Path) -> dict:
    """Pure queue throughput: lease/complete cycles, no compute."""
    from repro.fabric import WorkQueue

    ids = [f"unit-{i:05d}" for i in range(QUEUE_UNITS)]
    queue = WorkQueue.create(root, "bench-protocol", ids)
    start = time.perf_counter()
    done = 0
    while done < QUEUE_UNITS:
        batch = queue.lease_batch("bench-worker", QUEUE_BATCH, ttl=60.0)
        if not batch:
            break
        queue.heartbeat("bench-worker", ttl=60.0)
        done += queue.complete_batch("bench-worker", batch)
    elapsed = time.perf_counter() - start
    assert done == QUEUE_UNITS, f"protocol leg stalled at {done}"
    return {
        "units": QUEUE_UNITS,
        "batch": QUEUE_BATCH,
        "seconds": round(elapsed, 6),
        "units_per_second": round(QUEUE_UNITS / elapsed, 1),
        "floor_units_per_second": QUEUE_FLOOR,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trials", type=int, default=32, help="trials per cell (default 32)"
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="the 'N' of workers=N (default: CPU count, at least 2)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_fabric.json",
        help="output JSON path (default: repo-root BENCH_fabric.json)",
    )
    args = parser.parse_args(argv)
    cpus = os.cpu_count() or 1
    n = args.workers or max(cpus, 2)

    spec = get_figure_spec(FIGURE)
    print(
        f"benchmarking sweep fabric: {FIGURE}, {args.trials} trials/cell, "
        f"chunk={CHUNK}"
    )

    single_s, reference = run_single(spec, args.trials, args.seed)
    print(f"single-process baseline:  {single_s:.3f} s (best of 2)")

    failures: list[str] = []

    # ----------------------------------------------------- workers_1
    best = None
    for _ in range(2):
        with tempfile.TemporaryDirectory(prefix="bench-fabric-") as tmp:
            root = Path(tmp) / "store"
            elapsed, result, report, stats = run_inline_leg(
                spec, args.trials, args.seed, root
            )
            if canonical(result) != reference:
                failures.append("workers_1 result differs from the baseline")
            if report.completions + report.prestored_units != report.units:
                failures.append("workers_1 left units unfinished")
            if best is None or elapsed < best[0]:
                best = (elapsed, report, stats, root)
            # Resume leg: re-running the finished sweep over the same
            # store must be free (every unit pre-stored, nothing leased).
            resume_outcome = run_sweep(
                spec,
                trials=args.trials,
                seed=args.seed,
                workers=0,
                chunk_size=CHUNK,
                store=root,
                lease_ttl=30.0,
            )
            resume = {
                "completions": resume_outcome.report.completions,
                "leases": resume_outcome.report.leases,
                "prestored_units": resume_outcome.report.prestored_units,
            }
            if canonical(resume_outcome.result) != reference:
                failures.append("resume result differs from the baseline")
    elapsed, report, stats, _root = best
    overhead = elapsed / single_s if single_s > 0 else float("inf")
    throughput = report.units / elapsed if elapsed > 0 else float("inf")
    phase = {
        "lease_seconds": round(stats.get("lease_seconds", 0.0), 6),
        "compute_seconds": round(stats.get("compute_seconds", 0.0), 6),
        "commit_seconds": round(stats.get("commit_seconds", 0.0), 6),
    }
    print(
        f"fabric workers=1 (inline): {elapsed:.3f} s "
        f"({report.units} units, {throughput:.1f} units/s, "
        f"overhead {overhead:.3f}x; lease {phase['lease_seconds']:.3f}s / "
        f"compute {phase['compute_seconds']:.3f}s / "
        f"commit {phase['commit_seconds']:.3f}s)"
    )
    if overhead > OVERHEAD_MAX:
        failures.append(
            f"workers_1 overhead {overhead:.3f}x exceeds the "
            f"{OVERHEAD_MAX}x gate"
        )
    rows = {
        "workers_1": {
            "workers": 1,
            "mode": "inline",
            "seconds": round(elapsed, 6),
            "units": report.units,
            "units_per_second": round(throughput, 4),
            "leases": report.leases,
            "reissues": report.reissues,
            "overhead_vs_single": round(overhead, 4),
            "phase_seconds": phase,
        }
    }
    if resume["completions"] or resume["leases"]:
        failures.append(
            f"resume was not free: {resume['completions']} completions, "
            f"{resume['leases']} leases"
        )
    print(
        f"resume over finished store: {resume['completions']} completions, "
        f"{resume['leases']} leases (must both be 0)"
    )

    # ----------------------------------------------------- workers_N
    speedup = None
    note = None
    if cpus < 2:
        note = "skipped: single-cpu"
        print(f"fabric workers={n}: {note}")
    else:
        with tempfile.TemporaryDirectory(prefix="bench-fabric-") as tmp:
            start = time.perf_counter()
            outcome = run_sweep(
                spec,
                trials=args.trials,
                seed=args.seed,
                workers=n,
                chunk_size=CHUNK,
                store=Path(tmp) / "store",
                lease_ttl=30.0,
            )
            elapsed_n = time.perf_counter() - start
        if canonical(outcome.result) != reference:
            failures.append(f"workers_{n} result differs from the baseline")
        report_n = outcome.report
        speedup = rows["workers_1"]["seconds"] / elapsed_n
        print(
            f"fabric workers={n}: {elapsed_n:.3f} s "
            f"({speedup:.2f}x vs workers_1; recorded, not gated)"
        )
        rows[f"workers_{n}"] = {
            "workers": n,
            "mode": "spawned",
            "seconds": round(elapsed_n, 6),
            "units": report_n.units,
            "units_per_second": round(report_n.units / elapsed_n, 4),
            "leases": report_n.leases,
            "reissues": report_n.reissues,
        }

    # ------------------------------------------------ queue protocol
    with tempfile.TemporaryDirectory(prefix="bench-fabric-q-") as tmp:
        protocol = run_queue_protocol_leg(Path(tmp) / "queue")
    print(
        f"queue protocol: {protocol['units']} units in "
        f"{protocol['seconds']:.3f} s "
        f"({protocol['units_per_second']:.0f} units/s, floor "
        f"{QUEUE_FLOOR:.0f})"
    )
    if protocol["units_per_second"] < QUEUE_FLOOR:
        failures.append(
            f"queue protocol {protocol['units_per_second']:.0f} units/s "
            f"is below the {QUEUE_FLOOR:.0f} units/s floor"
        )

    for failure in failures:
        print(f"FATAL: {failure}")
    if failures:
        return 1

    doc = {
        "format": "repro.bench-fabric/2",
        "figure": FIGURE,
        "trials_per_cell": args.trials,
        "seed": args.seed,
        "chunk_size": CHUNK,
        "single_process_seconds": round(single_s, 6),
        "sweeps": rows,
        "queue_protocol": protocol,
        "resume": resume,
        "speedup_n_vs_1": None if speedup is None else round(speedup, 4),
        "multiprocess_note": note,
        "gates": {
            "workers_1_overhead_max": OVERHEAD_MAX,
            "queue_floor_units_per_second": QUEUE_FLOOR,
        },
        "bit_identical": True,
        "cpu_count": cpus,
        "python": platform_mod.python_version(),
        "machine": platform_mod.machine(),
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
