#!/usr/bin/env python
"""End-to-end smoke test for the online deadline-assignment service.

Starts a server on an ephemeral port, POSTs one assignment twice (the
second must be a cache hit), scrapes ``/metrics``, and shuts down.
With ``--workers N`` (N ≥ 2) a second leg repeats the exercise against
the pooled topology — asyncio front end + pre-forked workers — over
one keep-alive connection, forces a 429 + ``Retry-After`` out of a
saturated one-worker pool, and checks the drain stays bounded.
Prints ``OK`` and exits 0 on success; any failure exits non-zero.

Run via ``make serve-smoke`` / ``make serve-pool-smoke`` or directly::

    PYTHONPATH=src python scripts/serve_smoke.py [--workers 2]
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
import time
import urllib.request

from repro.graph import chain_graph, graph_to_dict
from repro.service import (
    DeadlineAssignmentService,
    PooledFrontend,
    WorkerPool,
    create_server,
)
from repro.system import identical_platform
from repro.system.platform import platform_to_dict


def smoke_body() -> bytes:
    graph = chain_graph([10, 20, 15])
    graph.set_uniform_e2e_deadline(90.0)
    return json.dumps(
        {
            "graph": graph_to_dict(graph),
            "platform": platform_to_dict(identical_platform(2)),
            "metric": "ADAPT-L",
        }
    ).encode()


def single_process_smoke() -> int:
    service = DeadlineAssignmentService()
    server = create_server(port=0, service=service)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        body = smoke_body()

        with urllib.request.urlopen(base + "/healthz") as response:
            assert response.status == 200, "healthz failed"

        docs = []
        for _ in range(2):
            request = urllib.request.Request(
                base + "/assign",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request) as response:
                assert response.status == 200, "assign failed"
                docs.append(json.loads(response.read()))
        first, second = docs
        assert len(first["slices"]) == 3, "expected one slice per task"
        assert not first["cached"], "first request must be computed"
        assert second["cached"], "second request must be a cache hit"
        assert second["slices"] == first["slices"], "cache changed the answer"

        with urllib.request.urlopen(base + "/metrics") as response:
            text = response.read().decode()
        for needle in (
            'repro_requests_total{endpoint="assign",status="200"} 2',
            "repro_cache_hits_total 1",
            "repro_cache_misses_total 1",
            "repro_assign_latency_seconds_count 2",
        ):
            assert needle in text, f"metrics missing {needle!r}"
    except AssertionError as exc:
        print(f"serve-smoke: FAIL: {exc}", file=sys.stderr)
        return 1
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)
    print(f"serve-smoke: OK ({base}/assign answered, cache hit, metrics sane)")
    return 0


def pooled_smoke(workers: int) -> int:
    """Pooled-topology leg: pipelining, a forced 429, bounded drain."""
    body = smoke_body()

    # Leg A: keep-alive pipelining against a real multi-worker pool.
    frontend = PooledFrontend(WorkerPool(workers))
    frontend.start(timeout=120.0)
    host, port = frontend.address
    try:
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200, "pooled healthz failed"
            response.read()
            docs = []
            for _ in range(2):  # same connection: keep-alive pipelining
                conn.request(
                    "POST",
                    "/assign",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                assert response.status == 200, "pooled assign failed"
                docs.append(json.loads(response.read()))
            first, second = docs
            assert not first["cached"], "pooled first request must compute"
            assert second["cached"], "pooled second must be a cache hit"
            assert second["slices"] == first["slices"], "pool changed answer"
            # An error reply must not poison the connection.
            conn.request("POST", "/assign", body=b"{broken")
            response = conn.getresponse()
            assert response.status == 400, "bad JSON must be 400"
            response.read()
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            assert response.status == 200, "pooled metrics scrape failed"
            text = response.read().decode()
        finally:
            conn.close()
        for needle in (
            "repro_cache_hits_total 1",
            "repro_cache_misses_total 1",
            'repro_requests_total{endpoint="assign",status="400"} 1',
        ):
            assert needle in text, f"pooled metrics missing {needle!r}"
    except AssertionError as exc:
        print(f"serve-smoke: FAIL (pooled): {exc}", file=sys.stderr)
        return 1
    finally:
        frontend.close(timeout=10.0)

    # Leg B: saturate a deliberately slow one-worker pool; at least one
    # request must be shed with 429 + Retry-After, and closing the
    # front end mid-flight must stay bounded (the drain contract).
    frontend = PooledFrontend(
        WorkerPool(1, max_queue=1, compute_delay=0.5), retry_after=3
    )
    frontend.start(timeout=120.0)
    host, port = frontend.address
    statuses: list[tuple[int, str | None]] = []
    lock = threading.Lock()

    def burst(i: int) -> None:
        graph = chain_graph([10 + i, 20, 15])
        graph.set_uniform_e2e_deadline(90.0 + i)
        payload = json.dumps(
            {
                "graph": graph_to_dict(graph),
                "platform": platform_to_dict(identical_platform(2)),
                "metric": "ADAPT-L",
            }
        ).encode()
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            conn.request("POST", "/assign", body=payload)
            response = conn.getresponse()
            response.read()
            with lock:
                statuses.append(
                    (response.status, response.getheader("Retry-After"))
                )
        finally:
            conn.close()

    try:
        threads = [
            threading.Thread(target=burst, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        codes = sorted(status for status, _ in statuses)
        assert len(statuses) == 6, "burst requests went unanswered"
        assert 429 in codes, "saturated pool never shed a request"
        assert set(codes) <= {200, 429}, f"unexpected statuses {codes}"
        for status, retry_after in statuses:
            if status == 429:
                assert retry_after == "3", "429 without Retry-After: 3"
    except AssertionError as exc:
        print(f"serve-smoke: FAIL (backpressure): {exc}", file=sys.stderr)
        frontend.close(timeout=10.0)
        return 1

    started = time.monotonic()
    frontend.close(timeout=2.0)
    drain = time.monotonic() - started
    if drain > 30.0:
        print(f"serve-smoke: FAIL: drain took {drain:.1f}s", file=sys.stderr)
        return 1
    print(
        f"serve-smoke: OK (pooled x{workers}: pipelined, cache hit, "
        f"{codes.count(429)} shed with Retry-After, drained in {drain:.1f}s)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="also smoke the pooled topology with this many workers (≥2)",
    )
    args = parser.parse_args(argv)
    status = single_process_smoke()
    if status == 0 and args.workers >= 2:
        status = pooled_smoke(args.workers)
    return status


if __name__ == "__main__":
    sys.exit(main())
