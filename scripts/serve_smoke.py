#!/usr/bin/env python
"""End-to-end smoke test for the online deadline-assignment service.

Starts a server on an ephemeral port, POSTs one assignment twice (the
second must be a cache hit), scrapes ``/metrics``, and shuts down.
Prints ``OK`` and exits 0 on success; any failure exits non-zero.

Run via ``make serve-smoke`` or directly::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import sys
import threading
import urllib.request

from repro.graph import chain_graph, graph_to_dict
from repro.service import DeadlineAssignmentService, create_server
from repro.system import identical_platform
from repro.system.platform import platform_to_dict


def main() -> int:
    service = DeadlineAssignmentService()
    server = create_server(port=0, service=service)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        graph = chain_graph([10, 20, 15])
        graph.set_uniform_e2e_deadline(90.0)
        body = json.dumps(
            {
                "graph": graph_to_dict(graph),
                "platform": platform_to_dict(identical_platform(2)),
                "metric": "ADAPT-L",
            }
        ).encode()

        with urllib.request.urlopen(base + "/healthz") as response:
            assert response.status == 200, "healthz failed"

        docs = []
        for _ in range(2):
            request = urllib.request.Request(
                base + "/assign",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request) as response:
                assert response.status == 200, "assign failed"
                docs.append(json.loads(response.read()))
        first, second = docs
        assert len(first["slices"]) == 3, "expected one slice per task"
        assert not first["cached"], "first request must be computed"
        assert second["cached"], "second request must be a cache hit"
        assert second["slices"] == first["slices"], "cache changed the answer"

        with urllib.request.urlopen(base + "/metrics") as response:
            text = response.read().decode()
        for needle in (
            'repro_requests_total{endpoint="assign",status="200"} 2',
            "repro_cache_hits_total 1",
            "repro_cache_misses_total 1",
            "repro_assign_latency_seconds_count 2",
        ):
            assert needle in text, f"metrics missing {needle!r}"
    except AssertionError as exc:
        print(f"serve-smoke: FAIL: {exc}", file=sys.stderr)
        return 1
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)
    print(f"serve-smoke: OK ({base}/assign answered, cache hit, metrics sane)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
