"""§7.1 ablations — sensitivity to the adaptivity factors k_G and k_L.

The paper argues there is no universally best factor but that the
defaults (k_G = 1.5, k_L = 0.2) are robust.  These benches trace the
success ratio across a factor sweep; k = 0 reduces each adaptive metric
to PURE, anchoring the curves.
"""

from .conftest import run_figure


def test_ablation_kg(benchmark, results_dir):
    result = run_figure(benchmark, "abl-kg", results_dir)
    ratios = result.ratios("ADAPT-G")
    # The sweep brackets the paper default 1.5; the curve must not be
    # flat (the factor matters) and stays a proportion everywhere.
    assert max(ratios) - min(ratios) > 0.02


def test_ablation_kl(benchmark, results_dir):
    result = run_figure(benchmark, "abl-kl", results_dir)
    ratios = result.ratios("ADAPT-L")
    x = list(result.x_values)
    # k_L = 0 is the PURE anchor; the paper's default (0.2) should not
    # be worse than the anchor at the default operating point.
    anchor = ratios[x.index(0.0)]
    at_default = ratios[x.index(0.2)]
    assert at_default >= anchor - 0.05
