"""Complexity benches (§4.4, §7.2) — slicing runtime vs problem size.

The paper puts the distribution algorithm at O(n^2) plus O(n^3) for the
ADAPT-L parallel-set preparation.  These benches time the actual
distribution step (no scheduling, no generation) so pytest-benchmark's
stats expose the per-metric cost and its growth with n.
"""

import pytest

from repro.core import distribute_deadlines, estimate_map, get_metric
from repro.rng import make_rng
from repro.sched import schedule_edf
from repro.workload import WorkloadParams, generate_workload


def _workload(n_tasks: int, seed: int = 99):
    params = WorkloadParams(
        m=3,
        n_tasks_range=(n_tasks, n_tasks),
        depth_range=(max(4, n_tasks // 5), max(5, n_tasks // 4)),
    )
    return generate_workload(params, make_rng(seed))


@pytest.mark.parametrize("metric", ["PURE", "NORM", "ADAPT-G", "ADAPT-L"])
def test_slicing_runtime_per_metric(benchmark, metric):
    """Distribution cost at the paper's workload size (~50 tasks)."""
    wl = _workload(50)
    estimates = estimate_map(wl.graph, "WCET-AVG", wl.platform)

    def run():
        return distribute_deadlines(
            wl.graph, wl.platform, metric, estimates=estimates, validate=False
        )

    assignment = benchmark(run)
    assert len(assignment.windows) == wl.graph.n_tasks


@pytest.mark.parametrize("n_tasks", [25, 50, 100, 200])
def test_slicing_scaling_with_n(benchmark, n_tasks):
    """Growth of ADAPT-L distribution cost with task count."""
    wl = _workload(n_tasks)
    estimates = estimate_map(wl.graph, "WCET-AVG", wl.platform)
    metric = get_metric("ADAPT-L")

    def run():
        return distribute_deadlines(
            wl.graph, wl.platform, metric, estimates=estimates, validate=False
        )

    assignment = benchmark(run)
    assert len(assignment.windows) == n_tasks


def test_end_to_end_trial_cost(benchmark):
    """Cost of one full trial: slice + schedule at paper size."""
    wl = _workload(50)

    def run():
        a = distribute_deadlines(wl.graph, wl.platform, "ADAPT-L")
        return schedule_edf(wl.graph, wl.platform, a)

    schedule = benchmark(run)
    assert len(schedule.entries) <= wl.graph.n_tasks
