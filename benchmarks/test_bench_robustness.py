"""The title claim — ADAPT-L's robustness across system configurations.

"In addition, the new technique is shown to be extremely robust for
various system configurations."  This bench quantifies the claim: rank
the four metrics (on paired workloads) over a grid of configurations
spanning machine size, deadline tightness and execution-time spread,
and check ADAPT-L's rank statistics dominate.
"""

from repro.core import METRIC_NAMES
from repro.experiments import TrialConfig, robustness_table, run_robustness
from repro.workload import WorkloadParams

from .conftest import bench_jobs, bench_trials

CONFIGURATIONS = [
    {"m": m, "olr": olr, "etd": etd}
    for m in (2, 3, 4)
    for olr in (0.6, 0.8)
    for etd in (0.0, 0.5)
]


def _builder(conf, metric):
    return TrialConfig(workload=WorkloadParams(**conf), metric=metric)


def test_robustness_grid(benchmark, results_dir):
    trials = max(16, bench_trials() // 2)
    result = benchmark.pedantic(
        run_robustness,
        args=(METRIC_NAMES, CONFIGURATIONS, _builder),
        kwargs=dict(trials=trials, seed=2026, jobs=bench_jobs()),
        rounds=1,
        iterations=1,
    )

    table = robustness_table(result)
    print()
    print(table)
    (results_dir / "robustness.txt").write_text(table + "\n")

    assert result.informative, "grid produced no discriminating configs"
    # ADAPT-L: best mean rank of all metrics and top-2 everywhere.
    mean_ranks = {m: result.mean_rank(m) for m in METRIC_NAMES}
    assert min(mean_ranks, key=mean_ranks.get) == "ADAPT-L"
    assert result.worst_rank("ADAPT-L") <= 2
    # ADAPT-L's worst-case regret is the smallest of the four.
    regrets = {m: result.max_regret(m) for m in METRIC_NAMES}
    assert min(regrets, key=regrets.get) == "ADAPT-L"
