"""Shared infrastructure for the figure-reproduction benchmarks.

Every evaluation figure of the paper (Figs. 2–6) plus the §7 ablations
has one benchmark that

* regenerates the figure's data — same sweep, same series — at a
  reduced trial count (paper: 1024 task graphs per point; default here:
  ``REPRO_BENCH_TRIALS``, 64), fanned out over worker processes;
* prints the success-ratio table and ASCII chart the paper reports;
* persists JSON/CSV/Markdown results under ``benchmarks/results/``.

Environment knobs:

* ``REPRO_BENCH_TRIALS`` — trials per cell (default 64; use 1024 for a
  full-scale reproduction run);
* ``REPRO_BENCH_JOBS``   — worker processes (default: CPU count).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import (
    get_figure_spec,
    render_report,
    result_markdown,
    run_experiment,
    save_csv,
    save_json,
)

RESULTS_DIR = Path(__file__).parent / "results"


def bench_trials() -> int:
    return int(os.environ.get("REPRO_BENCH_TRIALS", "64"))


def bench_jobs() -> int:
    default = os.cpu_count() or 1
    return int(os.environ.get("REPRO_BENCH_JOBS", str(default)))


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    yield RESULTS_DIR
    # Fold everything the session produced into one combined report.
    try:
        from repro.experiments.reportcard import build_report

        report = build_report(
            RESULTS_DIR,
            title=(
                "Benchmark reproduction run "
                f"({bench_trials()} trials/cell)"
            ),
        )
        (RESULTS_DIR / "REPORT.md").write_text(report + "\n")
    except Exception:
        pass  # reporting must never fail the bench session


def run_figure(benchmark, figure: str, results_dir: Path):
    """Benchmark one figure end to end and persist/print its data."""
    spec = get_figure_spec(figure)
    trials = bench_trials()
    jobs = bench_jobs()

    result = benchmark.pedantic(
        run_experiment,
        args=(spec,),
        kwargs=dict(trials=trials, seed=2026, jobs=jobs),
        rounds=1,
        iterations=1,
    )

    save_json(result, results_dir / f"{figure}.json")
    save_csv(result, results_dir / f"{figure}.csv")
    (results_dir / f"{figure}.md").write_text(
        f"### {result.title} ({result.paper_reference})\n\n"
        f"{result_markdown(result)}\n\n"
        f"trials/cell={trials} seed=2026\n"
    )

    print()
    print(render_report(result))

    # Universal sanity: ratios are proportions.
    for label in result.series:
        for r in result.ratios(label):
            assert 0.0 <= r <= 1.0
    return result
