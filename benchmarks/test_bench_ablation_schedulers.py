"""§7.3 ablation — ADAPT-L deadlines under alternative dispatch policies.

The slicing windows encode a *timeline*: policies that follow it (EDF
by absolute deadline, FIFO by arrival) work, while timeline-blind
orderings (static levels, static least-laxity) commit far-future tasks
first, block the processors, and collapse.
"""

from .conftest import run_figure


def test_ablation_schedulers(benchmark, results_dir):
    result = run_figure(benchmark, "abl-sched", results_dir)

    edf = result.ratios("EDF-LIST")
    fifo = result.ratios("FIFO-LIST")
    sl = result.ratios("SL-LIST")
    llf = result.ratios("LLF-LIST")

    n = len(edf)
    # EDF (the paper's baseline) dominates every alternative on average.
    for other in (fifo, sl, llf):
        assert sum(edf) >= sum(other) - 0.05 * n
    # The timeline-blind policies collapse well below the timeline-aware.
    assert sum(sl) < sum(fifo)
    assert sum(llf) < sum(fifo)
