"""Figure 3 — success ratio as a function of OLR (m = 3).

Paper claims reproduced in shape: success rises with looser deadlines
for every metric; ADAPT-L leads across the sweep, with the largest
relative gaps at the tight end.
"""

from .conftest import run_figure


def test_fig3_olr(benchmark, results_dir):
    result = run_figure(benchmark, "fig3", results_dir)

    for label in result.series:
        ratios = result.ratios(label)
        # monotone trend tightest -> loosest (allow sampling noise in
        # the middle; compare the ends)
        assert ratios[-1] >= ratios[0]

    adapt_l = result.ratios("ADAPT-L")
    pure = result.ratios("PURE")
    # ADAPT-L >= PURE at every OLR, strictly better somewhere tight.
    assert all(l >= p - 0.05 for l, p in zip(adapt_l, pure))
    assert any(l > p for l, p in zip(adapt_l[:4], pure[:4]))
