"""Figure 4 — success ratio as a function of ETD (m = 3, OLR = 0.8).

Paper claims reproduced: PURE, NORM and ADAPT-G converge to the *same*
success ratio at ETD = 0 (identical execution times make their
distributions identical), while ADAPT-L — whose virtual times vary with
each task's parallel set even then — stays ahead; NORM catches/overtakes
ADAPT-G as ETD grows.
"""

from .conftest import run_figure


def test_fig4_etd(benchmark, results_dir):
    result = run_figure(benchmark, "fig4", results_dir)

    # ETD = 0 convergence is exact (identical assignments), so the
    # success *counts* must agree, not just approximately.
    cells = [result.cell(0, m).estimate for m in ("PURE", "NORM", "ADAPT-G")]
    assert cells[0] == cells[1] == cells[2]

    # ADAPT-L ahead at ETD = 0.
    assert result.cell(0, "ADAPT-L").ratio >= cells[0].ratio

    # NORM is at least on par with ADAPT-G at the largest ETD values.
    norm = result.ratios("NORM")
    adapt_g = result.ratios("ADAPT-G")
    assert norm[-1] >= adapt_g[-1] - 0.05
