"""§1–2 — the cost/benefit of relaxed locality constraints.

The paper motivates its whole technique by the relaxed-locality regime.
This bench quantifies the trade: strict clustering pre-assignment gives
conventional distribution exact execution times but surrenders
placement freedom; the relaxed regime estimates WCETs but lets the
scheduler use the entire machine.
"""

from .conftest import run_figure


def test_ablation_locality(benchmark, results_dir):
    result = run_figure(benchmark, "abl-locality", results_dir)

    relaxed = result.ratios("relaxed (free placement)")
    strict = result.ratios("strict (clustered)")

    # Both regimes rise with looser deadlines.
    assert relaxed[-1] >= relaxed[0]
    assert strict[-1] >= strict[0]
    # Relaxed placement dominates once there is laxity to exploit —
    # the motivation for solving distribution under relaxed locality.
    assert relaxed[-1] >= strict[-1] - 0.05
