"""§4.3 — "assume no communication cost" vs exact comm-aware windows.

Under a strict clustering assignment, compares deadline distribution
that charges exact bus costs on the critical paths (the original [5]
setting, via message pseudo-tasks) against the comm-blind distribution
Jonsson advocates, across a CCR sweep.  The paper's claim: blind wins
— zero-cost assumptions maximize the laxity available for distribution,
and the scheduler's laxity absorbs the real delays.
"""

from repro.analysis import format_table
from repro.assign import (
    FixedAssignmentEdfScheduler,
    cluster_assignment,
    distribute_known_assignment,
    exact_estimates,
)
from repro.core import distribute_deadlines
from repro.rng import make_rng
from repro.workload import WorkloadParams, generate_workload

from .conftest import bench_trials

CCR_SWEEP = (0.1, 0.5, 1.0, 2.0)


def _run(n_workloads: int):
    rows = []
    for ccr in CCR_SWEEP:
        params = WorkloadParams(
            m=3, olr=0.75, ccr=ccr,
            n_tasks_range=(20, 30), depth_range=(5, 7),
        )
        blind_ok = aware_ok = 0
        for seed in range(n_workloads):
            wl = generate_workload(params, make_rng(seed))
            fixed = cluster_assignment(wl.graph, wl.platform)
            scheduler = FixedAssignmentEdfScheduler(fixed)

            est = exact_estimates(wl.graph, wl.platform, fixed)
            blind = distribute_deadlines(
                wl.graph, wl.platform, "NORM", estimates=est
            )
            blind_ok += scheduler.schedule(
                wl.graph, wl.platform, blind
            ).feasible

            aware = distribute_known_assignment(
                wl.graph, wl.platform, fixed, "NORM"
            )
            aware_ok += scheduler.schedule(
                wl.graph, wl.platform, aware
            ).feasible
        rows.append((ccr, blind_ok / n_workloads, aware_ok / n_workloads))
    return rows


def test_comm_blind_vs_aware(benchmark, results_dir):
    n = max(16, bench_trials() // 2)
    rows = benchmark.pedantic(_run, args=(n,), rounds=1, iterations=1)

    table = format_table(
        ["CCR", "comm-blind", "comm-aware"],
        [[f"{c:g}", f"{b:.3f}", f"{a:.3f}"] for c, b, a in rows],
    )
    print()
    print(f"strict clustering assignment, NORM windows, {n} workloads/point")
    print(table)
    (results_dir / "comm-aware.txt").write_text(table + "\n")

    # §4.3's claim holds on average across the sweep (paired workloads).
    mean_blind = sum(b for _, b, _ in rows) / len(rows)
    mean_aware = sum(a for _, _, a in rows) / len(rows)
    assert mean_blind >= mean_aware - 0.05
