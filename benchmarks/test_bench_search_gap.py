"""§7.2 — the feasibility gap between greedy EDF and exact search.

For tight two-processor workloads sliced with ADAPT-L, compares the
EDF baseline against budgeted branch-and-bound: the difference is the
price of greedy deadline-order commitment, and the task sets B&B proves
infeasible bound what ANY non-preemptive scheduler could achieve with
these windows.
"""

from repro.core import distribute_deadlines
from repro.rng import make_rng
from repro.sched import BnbStatus, schedule_branch_and_bound, schedule_edf
from repro.workload import WorkloadParams, generate_workload

from .conftest import bench_trials

PARAMS = WorkloadParams(
    m=2, n_tasks_range=(14, 18), depth_range=(5, 7), olr=0.72
)


def _run_gap(n_workloads: int):
    edf_ok = bnb_ok = proved_infeasible = unknown = 0
    for seed in range(n_workloads):
        wl = generate_workload(PARAMS, make_rng(seed))
        assignment = distribute_deadlines(wl.graph, wl.platform, "ADAPT-L")
        if schedule_edf(wl.graph, wl.platform, assignment).feasible:
            edf_ok += 1
        result = schedule_branch_and_bound(
            wl.graph, wl.platform, assignment, node_budget=30_000
        )
        if result.feasible:
            bnb_ok += 1
        elif result.status is BnbStatus.INFEASIBLE:
            proved_infeasible += 1
        else:
            unknown += 1
    return edf_ok, bnb_ok, proved_infeasible, unknown


def test_search_gap(benchmark, results_dir):
    n = max(12, bench_trials() // 4)
    edf_ok, bnb_ok, infeasible, unknown = benchmark.pedantic(
        _run_gap, args=(n,), rounds=1, iterations=1
    )

    lines = [
        f"workloads: {n} (m=2, OLR=0.72, ADAPT-L windows)",
        f"EDF baseline feasible:        {edf_ok}/{n}",
        f"branch-and-bound feasible:    {bnb_ok}/{n}",
        f"proved infeasible (any order): {infeasible}/{n}",
        f"budget exhausted (unknown):    {unknown}/{n}",
    ]
    report = "\n".join(lines)
    print()
    print(report)
    (results_dir / "search-gap.txt").write_text(report + "\n")

    # B&B subsumes EDF, and the counts partition the workload set.
    assert bnb_ok >= edf_ok
    assert bnb_ok + infeasible + unknown == n
