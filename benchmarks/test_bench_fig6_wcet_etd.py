"""Figure 6 — ADAPT-L success vs ETD per WCET estimation strategy.

Paper claims reproduced in shape: strategies agree exactly at ETD = 0
(all estimates coincide when execution times are identical) and
WCET-MAX loses its edge at extreme ETD, where its pessimism starves
short tasks of laxity (§6.4).
"""

from .conftest import run_figure


def test_fig6_wcet_etd(benchmark, results_dir):
    result = run_figure(benchmark, "fig6", results_dir)

    # At ETD = 0 the estimates are identical, so the three strategies
    # produce identical assignments and identical success counts.
    cells = [result.cell(0, s).estimate for s in result.series]
    assert cells[0] == cells[1] == cells[2]

    # WCET-MAX does not dominate at the extreme-ETD end.
    rmax = result.cell(len(result.x_values) - 1, "WCET-MAX").ratio
    ravg = result.cell(len(result.x_values) - 1, "WCET-AVG").ratio
    assert rmax <= ravg + 0.10
