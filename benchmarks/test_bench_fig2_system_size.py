"""Figure 2 — success ratio as a function of system size (m = 2..8).

Paper claims reproduced in shape: every metric's curve rises with m and
saturates; ADAPT-L dominates; at m = 3 the ordering is
PURE < NORM < ADAPT-G < ADAPT-L; at m = 2 ADAPT-L clearly exceeds
ADAPT-G (the paper reports ~4x) and the non-adaptive metrics.
"""

from .conftest import run_figure


def test_fig2_system_size(benchmark, results_dir):
    result = run_figure(benchmark, "fig2", results_dir)

    # Rising-to-saturation shape (first vs last sweep point).
    for label in result.series:
        ratios = result.ratios(label)
        assert ratios[-1] >= ratios[0]
        assert ratios[-1] > 0.9  # all metrics saturate by m = 8

    # ADAPT-L dominates every other metric at the small-m points.
    adapt_l = result.ratios("ADAPT-L")
    for label in ("PURE", "NORM", "ADAPT-G"):
        other = result.ratios(label)
        assert adapt_l[0] >= other[0]  # m = 2
        assert adapt_l[1] >= other[1]  # m = 3
