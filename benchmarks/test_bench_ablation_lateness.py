"""§4.2 / [12] — maximum lateness under loose deadlines.

Reference [12] ranked the slicing metrics by maximum lateness in a
regime where success ratios saturate.  The bench reproduces that
evaluation: at OLR ≥ 1 every metric schedules nearly everything, and
the mean maximum lateness (more negative = more margin for additional
background workload) becomes the discriminating measure.
"""

from .conftest import run_figure


def test_ablation_lateness(benchmark, results_dir):
    result = run_figure(benchmark, "abl-lateness", results_dir)

    # The regime is as designed: high success everywhere.
    for label in result.series:
        assert min(result.ratios(label)) > 0.7

    # Lateness was measured on every trial.
    for cell in result.cells.values():
        assert cell.lateness_trials == cell.trials

    # Feasible-dominated cells must show negative mean max lateness.
    for label in result.series:
        lates = result.latenesses(label)
        assert lates[-1] < 0.0  # loosest point: comfortable margins
