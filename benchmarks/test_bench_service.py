"""Load harness for the online deadline-assignment service.

Drives the real HTTP stack (ThreadingHTTPServer + micro-batcher +
cache) with a pool of client threads and measures

* sustained throughput (req/s) over a mixed request stream, and
* the cache-hit speedup: the same workload set replayed cold
  (every request computes) vs. warm (every request is a digest lookup).

Marked ``service`` so tier-1 and quick bench runs can exclude it with
``-m "not service"``.

Environment knobs:

* ``REPRO_BENCH_SERVICE_REQUESTS`` — requests per phase (default 96);
* ``REPRO_BENCH_SERVICE_CLIENTS``  — concurrent client threads (default 8).
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import statistics
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.graph import graph_to_dict
from repro.service import DeadlineAssignmentService, create_server
from repro.system.platform import platform_to_dict
from repro.workload import WorkloadParams, generate_workload
from repro.rng import make_rng

pytestmark = pytest.mark.service


def _n_requests() -> int:
    return int(os.environ.get("REPRO_BENCH_SERVICE_REQUESTS", "96"))


def _n_clients() -> int:
    return int(os.environ.get("REPRO_BENCH_SERVICE_CLIENTS", "8"))


def _request_bodies(count: int) -> list[bytes]:
    """Distinct mid-size workloads (~40 tasks), one request body each."""
    bodies = []
    params = WorkloadParams(m=4, n_tasks_range=(40, 40))
    for seed in range(count):
        wl = generate_workload(params, make_rng(seed))
        bodies.append(
            json.dumps(
                {
                    "graph": graph_to_dict(wl.graph),
                    "platform": platform_to_dict(wl.platform),
                    "metric": "ADAPT-L",
                }
            ).encode()
        )
    return bodies


@pytest.fixture
def live_server():
    service = DeadlineAssignmentService(
        cache_size=4096, batch_size=8, batch_wait=0.001, workers=4
    )
    server = create_server(port=0, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", service
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


def _drive(base: str, bodies: list[bytes], clients: int) -> "DriveResult":
    """POST every body from a pool of keep-alive clients.

    Each client thread owns one persistent HTTP/1.1 connection with
    Nagle disabled — a realistic load generator, and one that keeps the
    measurement on the service instead of on TCP handshake churn and
    delayed-ACK stalls.  Returns total wall-clock seconds plus every
    per-request latency: on a small shared box the totals are at the
    mercy of thread-scheduling convoys, so robust comparisons use the
    latency median rather than elapsed time.
    """
    host, port = base.removeprefix("http://").rsplit(":", 1)
    chunks = [bodies[i::clients] for i in range(clients)]

    def run_client(chunk: list[bytes]) -> list[float]:
        latencies = []
        conn = http.client.HTTPConnection(host, int(port))
        conn.connect()
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            for body in chunk:
                t0 = time.perf_counter()
                conn.request(
                    "POST",
                    "/assign",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                assert response.status == 200
                json.loads(response.read())
                latencies.append(time.perf_counter() - t0)
        finally:
            conn.close()
        return latencies

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        latencies = [t for ts in pool.map(run_client, chunks) for t in ts]
    return DriveResult(time.perf_counter() - start, latencies)


class DriveResult:
    def __init__(self, elapsed: float, latencies: list[float]) -> None:
        self.elapsed = elapsed
        self.latencies = latencies

    @property
    def median_latency(self) -> float:
        return statistics.median(self.latencies)


def test_sustained_throughput_and_cache_speedup(benchmark, live_server):
    base, service = live_server
    bodies = _request_bodies(_n_requests())
    clients = _n_clients()

    # Cold phase: every request is a distinct workload -> all misses.
    cold = _drive(base, bodies, clients)
    stats = service.cache.stats()
    assert stats.misses == len(bodies) and stats.hits == 0

    # Warm phase (the benchmarked one): identical replay -> all hits.
    warm = benchmark.pedantic(
        _drive, args=(base, bodies, clients), rounds=1, iterations=1
    )
    stats = service.cache.stats()
    assert stats.hits == len(bodies)  # hit counter incremented per request

    cold_rps = len(bodies) / cold.elapsed
    warm_rps = len(bodies) / warm.elapsed
    print(
        f"\nservice load: {len(bodies)} requests x {clients} clients | "
        f"cold {cold_rps:,.0f} req/s | warm {warm_rps:,.0f} req/s | "
        f"p50 {cold.median_latency * 1e3:.2f} -> "
        f"{warm.median_latency * 1e3:.2f} ms | "
        f"speedup x{cold.median_latency / warm.median_latency:.1f} | "
        f"hit rate {service.metrics.cache_hit_rate():.2f}"
    )

    # The acceptance claim: cache hits are measurably faster.  Compare
    # medians, not totals — wall-clock elapsed on a 1-2 core CI box is
    # dominated by scheduler convoys among the client threads.
    assert warm.median_latency < cold.median_latency
    # Latency summary must be populated for the scrape endpoint.
    assert service.metrics.assign_latency.count == 2 * len(bodies)


def test_metrics_scrape_under_load(live_server):
    base, service = live_server
    bodies = _request_bodies(16)
    _drive(base, bodies, clients=4)
    with urllib.request.urlopen(base + "/metrics") as response:
        text = response.read().decode()
    assert 'repro_requests_total{endpoint="assign",status="200"} 16' in text
    assert "repro_cache_misses_total 16" in text
    assert "repro_assign_latency_seconds_count 16" in text
