"""Load harness for the online deadline-assignment service.

Drives the real HTTP stack (ThreadingHTTPServer + micro-batcher +
cache) with a pool of client threads and measures

* sustained throughput (req/s) over a mixed request stream, and
* the cache-hit speedup: the same workload set replayed cold
  (every request computes) vs. warm (every request is a digest lookup).

Marked ``service`` so tier-1 and quick bench runs can exclude it with
``-m "not service"``.

Environment knobs:

* ``REPRO_BENCH_SERVICE_REQUESTS`` — requests per phase (default 96);
* ``REPRO_BENCH_SERVICE_CLIENTS``  — concurrent client threads (default 8);
* ``REPRO_BENCH_SERVICE_OUT``      — where the duplicate-heavy scenario
  writes its numbers (default: repo-root ``BENCH_service.json``).
"""

from __future__ import annotations

import http.client
import json
import os
import platform as platform_mod
import random
import socket
import statistics
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.graph import graph_to_dict
from repro.service import DeadlineAssignmentService, create_server
from repro.system.platform import platform_to_dict
from repro.workload import WorkloadParams, generate_workload
from repro.rng import make_rng

pytestmark = pytest.mark.service


def _n_requests() -> int:
    return int(os.environ.get("REPRO_BENCH_SERVICE_REQUESTS", "96"))


def _n_clients() -> int:
    return int(os.environ.get("REPRO_BENCH_SERVICE_CLIENTS", "8"))


def _request_bodies(count: int) -> list[bytes]:
    """Distinct mid-size workloads (~40 tasks), one request body each."""
    bodies = []
    params = WorkloadParams(m=4, n_tasks_range=(40, 40))
    for seed in range(count):
        wl = generate_workload(params, make_rng(seed))
        bodies.append(
            json.dumps(
                {
                    "graph": graph_to_dict(wl.graph),
                    "platform": platform_to_dict(wl.platform),
                    "metric": "ADAPT-L",
                }
            ).encode()
        )
    return bodies


@pytest.fixture
def live_server():
    service = DeadlineAssignmentService(
        cache_size=4096, batch_size=8, batch_wait=0.001, workers=4
    )
    server = create_server(port=0, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", service
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


def _drive(base: str, bodies: list[bytes], clients: int) -> "DriveResult":
    """POST every body from a pool of keep-alive clients.

    Each client thread owns one persistent HTTP/1.1 connection with
    Nagle disabled — a realistic load generator, and one that keeps the
    measurement on the service instead of on TCP handshake churn and
    delayed-ACK stalls.  Returns total wall-clock seconds plus every
    per-request latency: on a small shared box the totals are at the
    mercy of thread-scheduling convoys, so robust comparisons use the
    latency median rather than elapsed time.
    """
    host, port = base.removeprefix("http://").rsplit(":", 1)
    chunks = [bodies[i::clients] for i in range(clients)]

    def run_client(chunk: list[bytes]) -> list[float]:
        latencies = []
        conn = http.client.HTTPConnection(host, int(port))
        conn.connect()
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            for body in chunk:
                t0 = time.perf_counter()
                conn.request(
                    "POST",
                    "/assign",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                assert response.status == 200
                json.loads(response.read())
                latencies.append(time.perf_counter() - t0)
        finally:
            conn.close()
        return latencies

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        latencies = [t for ts in pool.map(run_client, chunks) for t in ts]
    return DriveResult(time.perf_counter() - start, latencies)


class DriveResult:
    def __init__(self, elapsed: float, latencies: list[float]) -> None:
        self.elapsed = elapsed
        self.latencies = latencies

    @property
    def median_latency(self) -> float:
        return statistics.median(self.latencies)


def test_sustained_throughput_and_cache_speedup(benchmark, live_server):
    base, service = live_server
    bodies = _request_bodies(_n_requests())
    clients = _n_clients()

    # Cold phase: every request is a distinct workload -> all misses.
    cold = _drive(base, bodies, clients)
    stats = service.cache.stats()
    assert stats.misses == len(bodies) and stats.hits == 0

    # Warm phase (the benchmarked one): identical replay -> all hits.
    warm = benchmark.pedantic(
        _drive, args=(base, bodies, clients), rounds=1, iterations=1
    )
    stats = service.cache.stats()
    assert stats.hits == len(bodies)  # hit counter incremented per request

    cold_rps = len(bodies) / cold.elapsed
    warm_rps = len(bodies) / warm.elapsed
    print(
        f"\nservice load: {len(bodies)} requests x {clients} clients | "
        f"cold {cold_rps:,.0f} req/s | warm {warm_rps:,.0f} req/s | "
        f"p50 {cold.median_latency * 1e3:.2f} -> "
        f"{warm.median_latency * 1e3:.2f} ms | "
        f"speedup x{cold.median_latency / warm.median_latency:.1f} | "
        f"hit rate {service.metrics.cache_hit_rate():.2f}"
    )

    # The acceptance claim: cache hits are measurably faster.  Compare
    # medians, not totals — wall-clock elapsed on a 1-2 core CI box is
    # dominated by scheduler convoys among the client threads.
    assert warm.median_latency < cold.median_latency
    # Latency summary must be populated for the scrape endpoint.
    assert service.metrics.assign_latency.count == 2 * len(bodies)


def _bench_out_path() -> Path:
    default = Path(__file__).resolve().parent.parent / "BENCH_service.json"
    return Path(os.environ.get("REPRO_BENCH_SERVICE_OUT", default))


def test_duplicate_heavy_single_flight(benchmark, live_server):
    """Duplicate-heavy stream: few distinct workloads, many requests.

    The load a cache-fronted service actually sees from "millions of
    users" is duplicate-dominated.  Single-flight + cache must keep the
    computation count near the number of DISTINCT workloads no matter
    how many concurrent clients replay them; the measured numbers land
    in ``BENCH_service.json`` so the trajectory is tracked across PRs.
    """
    base, service = live_server
    total = _n_requests()
    clients = _n_clients()
    distinct = max(4, total // 16)
    bodies = (_request_bodies(distinct) * (total // distinct + 1))[:total]
    random.Random(2026).shuffle(bodies)

    result = benchmark.pedantic(
        _drive, args=(base, bodies, clients), rounds=1, iterations=1
    )

    computed = service.metrics.assignments.value(source="computed")
    coalesced = service.metrics.assignments.value(source="coalesced")
    hits = service.metrics.cache_hits.total()
    waits = service.metrics.singleflight_waits.total()
    # Every distinct workload computes at least once; concurrency must
    # not blow that up — anything beyond distinct+clients would mean
    # duplicate in-flight misses are recomputing instead of coalescing.
    assert computed >= distinct
    assert computed <= distinct + clients
    assert computed + coalesced + hits == total

    rps = total / result.elapsed
    print(
        f"\nduplicate-heavy: {total} requests ({distinct} distinct) x "
        f"{clients} clients | {rps:,.0f} req/s | "
        f"p50 {result.median_latency * 1e3:.2f} ms | "
        f"computed {computed:.0f} | coalesced {coalesced:.0f} | "
        f"cache hits {hits:.0f} | single-flight waits {waits:.0f}"
    )

    # Mirror BENCH_runner.json's convention: record the host's CPU
    # count and say explicitly why the worker-pool leg is absent, so a
    # single-CPU run degrades explainably instead of silently.  The
    # pooled leg itself (scripts/bench_service.py) overwrites the note
    # with its measured numbers on multi-core hosts.
    cpu_count = os.cpu_count() or 1
    doc = {
        "format": "repro.bench-service/1",
        "scenario": "duplicate_heavy",
        "requests": total,
        "distinct_workloads": distinct,
        "clients": clients,
        "requests_per_second": round(rps, 2),
        "p50_latency_ms": round(result.median_latency * 1e3, 4),
        "computed": int(computed),
        "coalesced": int(coalesced),
        "cache_hits": int(hits),
        "singleflight_waits": int(waits),
        "cpu_count": cpu_count,
        "multiprocess_note": (
            "skipped: single-cpu"
            if cpu_count < 2
            else "run scripts/bench_service.py for the workers leg"
        ),
        "python": platform_mod.python_version(),
        "machine": platform_mod.machine(),
    }
    out = _bench_out_path()
    # Preserve a previously measured workers leg (same host) so the
    # pytest harness and the pooled bench can update one file without
    # clobbering each other's sections.
    if out.exists():
        try:
            previous = json.loads(out.read_text())
        except ValueError:
            previous = {}
        if "workers" in previous and previous.get("cpu_count") == cpu_count:
            doc["workers"] = previous["workers"]
            doc["multiprocess_note"] = previous.get(
                "multiprocess_note", doc["multiprocess_note"]
            )
    out.write_text(json.dumps(doc, indent=2) + "\n")


def test_metrics_scrape_under_load(live_server):
    base, service = live_server
    bodies = _request_bodies(16)
    _drive(base, bodies, clients=4)
    with urllib.request.urlopen(base + "/metrics") as response:
        text = response.read().decode()
    assert 'repro_requests_total{endpoint="assign",status="200"} 16' in text
    assert "repro_cache_misses_total 16" in text
    assert "repro_assign_latency_seconds_count 16" in text
