"""§3.1/§5.2 ablation — communication intensity and bus contention.

Compares the paper's contention-free nominal-delay bus against the
serialized :class:`~repro.system.ContentionBus` across a CCR sweep.
The nominal model is what the paper's results assume (§3.1); the gap
between the two curves quantifies how much that assumption matters as
communication grows.
"""

from .conftest import run_figure


def test_ablation_ccr(benchmark, results_dir):
    result = run_figure(benchmark, "abl-ccr", results_dir)

    nominal = result.ratios("nominal bus")
    contended = result.ratios("contention bus")

    # At CCR = 0 the two models coincide exactly (no messages at all).
    assert result.cell(0, "nominal bus").estimate == result.cell(
        0, "contention bus"
    ).estimate

    # Contention can only hurt: the serialized bus never beats the
    # nominal model (modulo sampling noise at equal cells).
    for n, c in zip(nominal, contended):
        assert c <= n + 0.05

    # Success degrades as communication intensifies under contention.
    assert contended[-1] <= contended[0] + 0.05
