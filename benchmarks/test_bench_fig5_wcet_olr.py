"""Figure 5 — ADAPT-L success vs OLR per WCET estimation strategy.

Paper claims reproduced in shape: the three strategies track each other
closely (the paper reports ~±5% around WCET-AVG at the default ETD),
all rising with OLR.
"""

from .conftest import run_figure


def test_fig5_wcet_olr(benchmark, results_dir):
    result = run_figure(benchmark, "fig5", results_dir)

    for label in result.series:
        ratios = result.ratios(label)
        assert ratios[-1] >= ratios[0]

    # The strategies form one tight band at default ETD (paper: ~5%).
    for xi in range(len(result.x_values)):
        values = [result.cell(xi, s).ratio for s in result.series]
        assert max(values) - min(values) <= 0.30
