"""Response surface — success ratio over (system size × OLR) for ADAPT-L.

The paper's Figs. 2 and 3 are one-dimensional cuts of this surface
(Fig. 2 along m at OLR = 0.8; Fig. 3 along OLR at m = 3).  The heatmap
locates the feasibility front both figures slice through.
"""

from pathlib import Path

from repro.experiments import TrialConfig, heatmap, run_sweep2d
from repro.workload import WorkloadParams

from .conftest import bench_jobs, bench_trials


def test_heatmap_m_olr(benchmark, results_dir: Path):
    def config(m, olr):
        return TrialConfig(
            workload=WorkloadParams(m=int(m), olr=float(olr)),
            metric="ADAPT-L",
        )

    trials = max(16, bench_trials() // 2)
    result = benchmark.pedantic(
        run_sweep2d,
        args=(config, (2, 3, 4, 5), (0.5, 0.6, 0.7, 0.8, 0.9)),
        kwargs=dict(
            title="ADAPT-L success ratio over m x OLR",
            x_label="m",
            y_label="OLR",
            trials=trials,
            seed=2026,
            jobs=bench_jobs(),
        ),
        rounds=1,
        iterations=1,
    )

    art = heatmap(result)
    print()
    print(art)
    (results_dir / "heatmap-m-olr.txt").write_text(art + "\n")
    import json

    (results_dir / "heatmap-m-olr.json").write_text(
        json.dumps(result.to_dict(), indent=2)
    )

    # The surface rises along both axes (corner-to-corner check).
    assert result.cell(0, 0).ratio <= result.cell(3, 4).ratio
    grid = result.ratio_grid()
    assert all(0.0 <= r <= 1.0 for row in grid for r in row)
