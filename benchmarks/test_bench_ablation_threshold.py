"""§4.5 ablation — the execution-time threshold c_thres.

The threshold filters which tasks receive virtual-time surplus.  At
factor 0 every task inflates; large factors disable adaptation entirely
(no task qualifies), collapsing both adaptive metrics toward PURE.
"""

from .conftest import run_figure


def test_ablation_threshold(benchmark, results_dir):
    result = run_figure(benchmark, "abl-thres", results_dir)
    for label in result.series:
        ratios = result.ratios(label)
        assert len(ratios) == len(result.x_values)
    # ADAPT-L remains at least as good as ADAPT-G at the paper's
    # default threshold (factor 1.0).
    xi = list(result.x_values).index(1.0)
    assert (
        result.cell(xi, "ADAPT-L").ratio
        >= result.cell(xi, "ADAPT-G").ratio - 0.05
    )
