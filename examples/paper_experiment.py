#!/usr/bin/env python3
"""Reproduce a figure of the paper's evaluation from the library API.

Runs a reduced-size version of Figure 2 (success ratio vs system size,
all four metrics) through the experiment harness and prints the table
and an ASCII rendition of the figure.  Use the `repro-figures` CLI (or
`python -m repro`) for full-size runs of every figure.

Run:  python examples/paper_experiment.py [trials]
"""

import sys

from repro.experiments import get_figure_spec, render_report, run_experiment


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    spec = get_figure_spec("fig2")
    print(f"{spec.title} — {trials} task graphs per point")
    print(f"(paper reference: {spec.paper_reference}; 1024 graphs per point)")
    result = run_experiment(spec, trials=trials, seed=2026)
    print()
    print(render_report(result))

    print("\nQualitative checks against the paper:")
    ratios = {s: result.ratios(s) for s in result.series}
    at_m3 = {s: r[1] for s, r in ratios.items()}  # x_values[1] == 3
    ordering = sorted(at_m3, key=at_m3.get)
    print(f"  ordering at m=3 (worst to best): {' < '.join(ordering)}")
    print(f"  every metric saturates by m=8: "
          f"{all(r[-1] > 0.95 for r in ratios.values())}")


if __name__ == "__main__":
    main()
