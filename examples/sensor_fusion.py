#!/usr/bin/env python3
"""Domain scenario: sensor fusion with a shared data structure (§7.3).

A fan-in fusion application — several sensor chains merging into one
decision path — scheduled on a small heterogeneous platform:

1. compares the three WCET estimation strategies (§5.3) for ADAPT-L;
2. adds a shared blackboard data structure that the filter tasks update
   under mutual exclusion, and shows the resource-aware ADAPT-L variant
   (the paper's §7.3 future-work direction) absorbing the serialization.

Run:  python examples/sensor_fusion.py
"""

import numpy as np

from repro import (
    Platform,
    Processor,
    ProcessorClass,
    distribute_deadlines,
    schedule_edf,
)
from repro.analysis import format_table
from repro.core import estimate_map, get_estimator
from repro.resources import ResourceAwareAdaptL, with_resources
from repro.sched import validate_schedule
from repro.workload import sensor_fusion_graph


def build_platform() -> Platform:
    return Platform(
        processors=[
            Processor("cpu1", "cpu"),
            Processor("cpu2", "cpu"),
            Processor("dsp1", "dsp"),
        ],
        classes=[ProcessorClass("cpu"), ProcessorClass("dsp")],
    )


def main() -> None:
    rng = np.random.default_rng(11)
    graph = sensor_fusion_graph(n_sensors=5, e2e_deadline=230.0, rng=rng)
    platform = build_platform()

    # --- WCET estimation strategies (§5.3) ---------------------------
    rows = []
    for name in ("WCET-AVG", "WCET-MAX", "WCET-MIN"):
        estimator = get_estimator(name)
        assignment = distribute_deadlines(
            graph, platform, "ADAPT-L", estimator=estimator
        )
        schedule = schedule_edf(graph, platform, assignment)
        est = estimate_map(graph, estimator, platform)
        rows.append(
            [
                name,
                "yes" if schedule.feasible else "NO",
                f"{assignment.min_laxity(est):.1f}",
                f"{schedule.makespan:.1f}",
            ]
        )
    print("WCET estimation strategies under ADAPT-L:")
    print(format_table(["strategy", "feasible", "min laxity", "makespan"], rows))

    # --- shared data structure (§7.3 extension) ----------------------
    # Serializing every filter on a blackboard consumes most of the
    # laxity, so this part of the scenario runs under a looser E-T-E
    # deadline where the *distribution* of laxity decides feasibility.
    rng = np.random.default_rng(11)
    graph = sensor_fusion_graph(n_sensors=5, e2e_deadline=300.0, rng=rng)
    filters = [t for t in graph.task_ids() if t.startswith("filter")]
    shared = with_resources(graph, {t: {"blackboard"} for t in filters})

    plain = distribute_deadlines(shared, platform, "ADAPT-L")
    s_plain = schedule_edf(shared, platform, plain)

    aware = distribute_deadlines(shared, platform, ResourceAwareAdaptL())
    s_aware = schedule_edf(shared, platform, aware)
    assert validate_schedule(s_aware, shared, platform, aware) == []

    print("\nShared blackboard held by every filter task:")
    print(
        format_table(
            ["metric", "feasible", "makespan"],
            [
                [
                    "ADAPT-L (resource-blind)",
                    "yes" if s_plain.feasible else "NO",
                    f"{s_plain.makespan:.1f}",
                ],
                [
                    "ADAPT-L/R (resource-aware)",
                    "yes" if s_aware.feasible else "NO",
                    f"{s_aware.makespan:.1f}",
                ],
            ],
        )
    )
    print(
        "\nThe resource-aware variant counts blackboard peers at full\n"
        "weight when sizing virtual execution times, granting the\n"
        "serialized filter tasks the extra window they actually need."
    )
    assert s_aware.feasible and not s_plain.feasible


if __name__ == "__main__":
    main()
