#!/usr/bin/env python3
"""On-line admission: dynamically arriving applications (§7.2, [13]).

Simulates a mission computer receiving application requests over time:
each request is a small task graph with its own end-to-end deadline.
The admission controller slices each request (ADAPT-G — the cheaper
O(n²) metric the paper recommends for on-line use, §7.2), screens it
analytically, and either commits it against the machine's residual
capacity or rejects it untouched.

Run:  python examples/online_admission.py
"""

import numpy as np

from repro.analysis import format_table
from repro.graph import chain_graph, fork_join_graph
from repro.online import AdmissionController
from repro.sched import render_gantt
from repro.system import identical_platform


def request_stream(rng: np.random.Generator):
    """An open stream of (arrival, graph, deadline) requests."""
    t = 0.0
    for i in range(12):
        t += float(rng.integers(5, 30))
        if rng.random() < 0.5:
            graph = chain_graph(
                [float(rng.integers(8, 25)) for _ in range(3)]
            )
        else:
            graph = fork_join_graph(
                [[float(rng.integers(8, 20))] for _ in range(3)],
                source_wcet=5.0,
                sink_wcet=5.0,
            )
        deadline = float(rng.integers(70, 140))
        yield f"req{i:02d}", t, graph, deadline


def main() -> None:
    rng = np.random.default_rng(3)
    platform = identical_platform(2)
    ctrl = AdmissionController(platform, metric="ADAPT-G")

    rows = []
    for app_id, arrival, graph, deadline in request_stream(rng):
        decision = ctrl.submit(
            app_id, graph, arrival=arrival, relative_deadline=deadline
        )
        rows.append(
            [
                app_id,
                f"{arrival:g}",
                graph.n_tasks,
                f"{deadline:g}",
                "ADMIT" if decision.admitted else "reject",
                (
                    f"{decision.response_time:.0f}"
                    if decision.admitted
                    else decision.reason[:44]
                ),
            ]
        )

    print(
        format_table(
            ["request", "arrival", "tasks", "deadline", "verdict",
             "response / reason"],
            rows,
        )
    )
    admitted = ctrl.admitted_ids()
    print(
        f"\nadmitted {len(admitted)}/{len(rows)}; machine committed "
        f"until t={ctrl.utilization_horizon():g}"
    )
    print("\nCombined committed timeline:")
    print(render_gantt(ctrl.combined_schedule(), platform, width=100))


if __name__ == "__main__":
    main()
