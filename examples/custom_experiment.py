#!/usr/bin/env python3
"""Declarative experiments + SVG artifacts.

Shows the two "tooling" faces of the library:

1. a custom experiment written as a JSON document (no Python): here, a
   CCR sweep comparing ADAPT-L against PURE at a tight OLR — an
   experiment the paper never ran but whose machinery it implies;
2. SVG exports of one concrete workload: the task graph in layered
   layout and the ADAPT-L schedule with its execution windows.

Run:  python examples/custom_experiment.py [outdir]
"""

import json
import sys
from pathlib import Path

from repro.core import distribute_deadlines
from repro.experiments import render_report, run_experiment, spec_from_dict
from repro.rng import make_rng
from repro.sched import schedule_edf
from repro.viz import gantt_svg, graph_svg
from repro.workload import WorkloadParams, generate_workload

EXPERIMENT = {
    "name": "ccr-sensitivity",
    "title": "Communication intensity vs metric choice (m=2, OLR=0.75)",
    "x": {"field": "workload.ccr", "values": [0.0, 0.25, 0.5, 1.0]},
    "x_label": "CCR",
    "series": [
        {"label": "PURE", "set": {"metric": "PURE"}},
        {"label": "ADAPT-L", "set": {"metric": "ADAPT-L"}},
    ],
    "base": {"workload.m": 2, "workload.olr": 0.75},
}


def main() -> None:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("artifacts")
    outdir.mkdir(parents=True, exist_ok=True)

    # 1. Declarative experiment.  The same document works from the CLI:
    #    repro-figures --config ccr.json
    (outdir / "ccr.json").write_text(json.dumps(EXPERIMENT, indent=2))
    spec = spec_from_dict(EXPERIMENT)
    result = run_experiment(spec, trials=48, seed=2026)
    print(render_report(result))

    # 2. SVG artifacts for one concrete workload.
    wl = generate_workload(
        WorkloadParams(m=2, n_tasks_range=(16, 20), depth_range=(5, 7)),
        make_rng(4),
    )
    assignment = distribute_deadlines(wl.graph, wl.platform, "ADAPT-L")
    schedule = schedule_edf(wl.graph, wl.platform, assignment)

    (outdir / "taskgraph.svg").write_text(graph_svg(wl.graph))
    (outdir / "schedule.svg").write_text(
        gantt_svg(schedule, wl.platform, assignment)
    )
    print(
        f"\nwrote ccr.json, taskgraph.svg and schedule.svg to {outdir}/ "
        f"(schedule feasible: {schedule.feasible})"
    )


if __name__ == "__main__":
    main()
