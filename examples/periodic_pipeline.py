#!/usr/bin/env python3
"""Periodic application: planning-cycle expansion and scheduling (§3.3).

A single-rate periodic pipeline (period 150) is unrolled over one
planning cycle, each invocation's E-T-E deadline is distributed with
ADAPT-L, and the whole cycle is scheduled non-preemptively.  Because the
schedule covers a full planning cycle, it repeats verbatim forever.

Run:  python examples/periodic_pipeline.py
"""

from repro import GraphBuilder, distribute_deadlines, identical_platform, schedule_edf
from repro.periodic import expand_periodic_graph, planning_cycle
from repro.sched import render_gantt, validate_schedule


def main() -> None:
    period = 150.0
    graph = (
        GraphBuilder()
        .task("sample", 12, period=period)
        .task("estimate", 30, period=period)
        .task("control", 24, period=period)
        .task("output", 8, period=period)
        .edge("sample", "estimate", message=2)
        .edge("estimate", "control", message=2)
        .edge("control", "output", message=1)
        .e2e("sample", "output", 120.0)
        .build()
    )

    cycle = planning_cycle(list(graph.tasks()))
    print(
        f"planning cycle: [0, {cycle.length:g})  "
        f"(hyperperiod L = {cycle.hyperperiod:g})"
    )

    # Unroll three invocations and schedule them as one aperiodic set.
    horizon = 3 * period
    unrolled = expand_periodic_graph(graph, horizon)
    print(
        f"unrolled {unrolled.n_tasks} task instances over [0, {horizon:g})"
    )

    platform = identical_platform(2)
    assignment = distribute_deadlines(unrolled, platform, "ADAPT-L")
    schedule = schedule_edf(unrolled, platform, assignment)
    assert schedule.feasible, schedule.failure_reason
    assert validate_schedule(schedule, unrolled, platform, assignment) == []

    print(f"feasible: {schedule.feasible}, makespan {schedule.makespan:g}\n")
    print(render_gantt(schedule, platform, width=100))

    # Per-invocation response times (finish of `output` minus release).
    print("\nper-invocation end-to-end response times:")
    k = 1
    while f"output#{k}" in unrolled:
        release = (k - 1) * period
        response = schedule.finish_time(f"output#{k}") - release
        print(f"  invocation {k}: {response:6.2f} (deadline 120)")
        k += 1


if __name__ == "__main__":
    main()
