#!/usr/bin/env python3
"""Scheduler showdown: EDF baseline vs. branch-and-bound vs. annealing.

The paper's baseline commits tasks greedily in deadline order (§5.4);
§7.2 discusses pairing the metrics with a branch-and-bound scheduler
instead, and [15] used simulated annealing.  This example pits the
three against each other on a batch of tight random workloads sliced
with ADAPT-L, and prints how often each succeeds — quantifying how much
feasibility the greedy baseline leaves on the table.

Run:  python examples/scheduler_showdown.py [n_workloads]
"""

import sys

from repro.analysis import format_summary, format_table, summarize_workload
from repro.core import distribute_deadlines
from repro.rng import make_rng
from repro.sched import (
    BnbStatus,
    schedule_annealed,
    schedule_branch_and_bound,
    schedule_edf,
)
from repro.workload import WorkloadParams, generate_workload


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    params = WorkloadParams(
        m=2,
        n_tasks_range=(14, 18),
        depth_range=(5, 7),
        olr=0.72,  # tight: the greedy baseline fails regularly here
    )

    sample = generate_workload(params, make_rng(0))
    print("Workload family (one sample):")
    print(format_summary(summarize_workload(sample.graph, sample.platform)))
    print()

    wins = {"EDF-LIST": 0, "SA-LIST": 0, "BNB": 0}
    bnb_proved_infeasible = 0
    rescued_by_search = []
    for seed in range(n):
        wl = generate_workload(params, make_rng(seed))
        assignment = distribute_deadlines(wl.graph, wl.platform, "ADAPT-L")

        edf = schedule_edf(wl.graph, wl.platform, assignment)
        wins["EDF-LIST"] += edf.feasible

        sa = schedule_annealed(
            wl.graph, wl.platform, assignment, iterations=150, seed=seed
        )
        wins["SA-LIST"] += sa.feasible

        bnb = schedule_branch_and_bound(
            wl.graph, wl.platform, assignment, node_budget=40_000
        )
        wins["BNB"] += bnb.feasible
        bnb_proved_infeasible += bnb.status is BnbStatus.INFEASIBLE
        if bnb.feasible and not edf.feasible:
            rescued_by_search.append(seed)

    print(f"Success over {n} tight workloads (ADAPT-L windows):")
    print(
        format_table(
            ["scheduler", "feasible", "ratio"],
            [
                [name, f"{w}/{n}", f"{w / n:.2f}"]
                for name, w in wins.items()
            ],
        )
    )
    print(
        f"\nbranch-and-bound proved {bnb_proved_infeasible} window sets "
        "infeasible for ANY non-preemptive order/assignment"
    )
    if rescued_by_search:
        print(
            f"search rescued {len(rescued_by_search)} workloads the greedy "
            f"EDF baseline failed (seeds {rescued_by_search[:8]}...)"
        )
    print(
        "\nReading: the gap between EDF and BNB is the price of greedy "
        "commitment; the gap between BNB and 100% is the price of the "
        "deadline distribution itself."
    )


if __name__ == "__main__":
    main()
