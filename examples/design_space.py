#!/usr/bin/env python3
"""Design-space exploration: the feasibility surface over (m × OLR).

The paper's Figures 2 and 3 are one-dimensional cuts of the same
response surface — Fig. 2 along the machine-size axis at OLR = 0.8,
Fig. 3 along the deadline-tightness axis at m = 3.  This example maps
the whole surface for two metrics and prints ASCII heatmaps, making the
feasibility front (and ADAPT-L's shift of it) directly visible.

Run:  python examples/design_space.py [trials]
"""

import sys

from repro.experiments import TrialConfig, heatmap, run_sweep2d
from repro.workload import WorkloadParams

M_VALUES = (2, 3, 4, 5)
OLR_VALUES = (0.5, 0.6, 0.7, 0.8, 0.9)


def surface(metric: str, trials: int):
    def config(m, olr):
        return TrialConfig(
            workload=WorkloadParams(m=int(m), olr=float(olr)),
            metric=metric,
        )

    return run_sweep2d(
        config,
        M_VALUES,
        OLR_VALUES,
        title=f"{metric}: success ratio over m x OLR",
        x_label="m",
        y_label="OLR",
        trials=trials,
        seed=2026,
    )


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    print(f"{trials} task graphs per point; shared seeds => paired surfaces\n")
    pure = surface("PURE", trials)
    adapt = surface("ADAPT-L", trials)
    print(heatmap(pure))
    print()
    print(heatmap(adapt))

    # Where does each metric cross 50% success?
    def front(result):
        out = {}
        for xi, m in enumerate(M_VALUES):
            crossing = next(
                (
                    OLR_VALUES[yi]
                    for yi in range(len(OLR_VALUES))
                    if result.cell(xi, yi).ratio >= 0.5
                ),
                None,
            )
            out[m] = crossing
        return out

    print("\nOLR needed for >= 50% success (the feasibility front):")
    fp, fa = front(pure), front(adapt)
    for m in M_VALUES:
        print(
            f"  m={m}: PURE needs OLR >= {fp[m]}   "
            f"ADAPT-L needs OLR >= {fa[m]}"
        )
    print(
        "\nADAPT-L pushes the front toward tighter deadlines — most "
        "visibly where the machine is scarce (small m) — the paper's "
        "robustness claim, seen as a surface."
    )


if __name__ == "__main__":
    main()
