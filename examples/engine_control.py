#!/usr/bin/env python3
"""Multi-rate engine control: periods → planning cycle → dispatch tables.

The complete §3.3 workflow for a classical automotive workload:

1. a multi-rate periodic task set (fuel injection at 20, lambda control
   at 40, thermal management at 80) with per-loop E-T-E deadlines;
2. utilization sanity check (the necessary ``U <= m`` bound);
3. unroll one hyperperiod into a planning cycle;
4. distribute every invocation's deadline with ADAPT-L and schedule the
   cycle with the non-preemptive EDF baseline;
5. emit the per-processor time-driven dispatch tables the run-time
   system would execute, cyclically, forever.

Run:  python examples/engine_control.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import distribute_deadlines
from repro.periodic import (
    expand_multirate_graph,
    per_rate_breakdown,
    task_set_utilization,
    utilization_bound_satisfied,
)
from repro.sched import build_dispatch_tables, render_gantt, schedule_edf
from repro.system import Platform, Processor, ProcessorClass
from repro.workload import engine_control_graph


def main() -> None:
    graph = engine_control_graph(rng=np.random.default_rng(7))
    platform = Platform(
        [Processor("ecu1", "ecu"), Processor("dsp1", "dsp")],
        [ProcessorClass("ecu"), ProcessorClass("dsp")],
    )

    print("Rate groups (utilization by period):")
    rows = [
        [f"{period:g}", f"{u:.3f}"]
        for period, u in per_rate_breakdown(graph).items()
    ]
    rows.append(["total", f"{task_set_utilization(graph):.3f}"])
    print(format_table(["period", "U"], rows))
    assert utilization_bound_satisfied(graph, platform)

    unrolled = expand_multirate_graph(graph)  # hyperperiod = 80
    print(
        f"\nplanning cycle [0, 80): {unrolled.n_tasks} task invocations "
        f"({graph.n_tasks} tasks across 3 rates)"
    )

    assignment = distribute_deadlines(unrolled, platform, "ADAPT-L")
    schedule = schedule_edf(unrolled, platform, assignment)
    assert schedule.feasible, schedule.failure_reason
    print(render_gantt(schedule, platform, width=100))

    tables = build_dispatch_tables(schedule, platform, cycle_length=80.0)
    print("\nTime-driven dispatch tables (repeat every 80 units):")
    for proc, table in tables.items():
        entries = "  ".join(
            f"{e.start:g}:{e.task_id}" for e in table.entries
        )
        print(
            f"  {proc} (util {table.utilization():.0%}): {entries}"
        )
    idle = {
        proc: ", ".join(f"[{a:g},{b:g})" for a, b in t.gaps())
        for proc, t in tables.items()
    }
    print("\nresidual idle windows per cycle:")
    for proc, gaps in idle.items():
        print(f"  {proc}: {gaps or '(none)'}")


if __name__ == "__main__":
    main()
