#!/usr/bin/env python3
"""Domain scenario: a control pipeline on a heterogeneous platform.

The motivating application of the paper's introduction: a sensor task
with a strict locality constraint (it must run on the DSP class next to
the sensor), a chain of processing stages with *relaxed* locality
constraints (eligible on both classes, with class-dependent WCETs), and
an actuator pinned to the CPU class.

The script compares all four critical-path metrics on the same
workload, reports which produce feasible schedules and with how much
margin, and quantifies the release-jitter elimination (implication I2).

Run:  python examples/control_pipeline.py
"""

import numpy as np

from repro import (
    METRIC_NAMES,
    Platform,
    Processor,
    ProcessorClass,
    SharedBus,
    distribute_deadlines,
    schedule_edf,
)
from repro.analysis import format_table
from repro.core import estimate_map
from repro.periodic import precedence_release_bounds, start_jitter
from repro.workload import control_pipeline_graph


def main() -> None:
    rng = np.random.default_rng(7)
    graph = control_pipeline_graph(stages=8, e2e_deadline=260.0, rng=rng)
    platform = Platform(
        processors=[
            Processor("dsp1", "dsp"),
            Processor("cpu1", "cpu"),
            Processor("cpu2", "cpu"),
        ],
        classes=[ProcessorClass("dsp"), ProcessorClass("cpu")],
        comm=SharedBus(1.0),
    )

    estimates = estimate_map(graph, "WCET-AVG", platform)
    rows = []
    for metric in METRIC_NAMES:
        assignment = distribute_deadlines(
            graph, platform, metric, estimates=estimates
        )
        schedule = schedule_edf(graph, platform, assignment)
        rows.append(
            [
                metric,
                "yes" if schedule.feasible else "NO",
                f"{assignment.min_laxity(estimates):.1f}",
                f"{schedule.max_lateness():.1f}" if schedule.feasible else "-",
                f"{schedule.makespan:.1f}",
            ]
        )
    print("Metric comparison on the control pipeline:")
    print(
        format_table(
            ["metric", "feasible", "min laxity", "max lateness", "makespan"],
            rows,
        )
    )

    # Implication I2: slicing eliminates precedence-induced release
    # jitter.  Compare the jitter a completion-driven design would have
    # to absorb with the start drift under slicing.
    assignment = distribute_deadlines(
        graph, platform, "ADAPT-L", estimates=estimates
    )
    schedule = schedule_edf(graph, platform, assignment)
    potential = precedence_release_bounds(graph)
    actual = start_jitter(schedule, assignment)
    print("\nRelease jitter (implication I2):")
    print(
        f"  completion-driven release spread (worst task): "
        f"{potential.maximum:.1f} time units"
    )
    print(
        f"  start drift under slicing (worst task):        "
        f"{actual.maximum:.1f} time units"
    )
    print(
        "  -> under slicing every release instant is static; drift is\n"
        "     bounded by the task's own laxity instead of accumulating\n"
        "     upstream execution-time variation."
    )


if __name__ == "__main__":
    main()
