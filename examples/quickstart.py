#!/usr/bin/env python3
"""Quickstart: distribute an E-T-E deadline and schedule the result.

Builds a small sequential–parallel application, distributes its
end-to-end deadline with the paper's ADAPT-L metric, schedules it with
the baseline non-preemptive EDF list scheduler on two processors, and
prints the execution windows and an ASCII Gantt chart.

Run:  python examples/quickstart.py
"""

from repro import (
    GraphBuilder,
    distribute_deadlines,
    identical_platform,
    render_gantt,
    schedule_edf,
)


def main() -> None:
    # An application: acquire -> {filter_a, filter_b} -> fuse -> act,
    # constrained end to end: start at t=0, done within 120 time units.
    graph = (
        GraphBuilder()
        .task("acquire", 10)
        .task("filter_a", 25)
        .task("filter_b", 20)
        .task("fuse", 15)
        .task("act", 5)
        .edge("acquire", "filter_a", message=2)
        .edge("acquire", "filter_b", message=2)
        .edge("filter_a", "fuse", message=1)
        .edge("filter_b", "fuse", message=1)
        .edge("fuse", "act")
        .e2e("acquire", "act", 120)
        .build()
    )
    platform = identical_platform(2)

    # 1. Deadline distribution (the paper's contribution).
    assignment = distribute_deadlines(graph, platform, metric="ADAPT-L")
    print("Execution windows (slices):")
    for tid in graph.topological_order():
        w = assignment.window(tid)
        print(
            f"  {tid:9s} arrival={w.arrival:7.2f}  "
            f"d_i={w.relative_deadline:6.2f}  D_i={w.absolute_deadline:7.2f}"
        )
    assignment.verify(graph)  # eq. 1 holds on every path

    # 2. Baseline EDF task assignment + scheduling (§5.4).
    schedule = schedule_edf(graph, platform, assignment)
    print(f"\nfeasible: {schedule.feasible}")
    print(f"makespan: {schedule.makespan:g}")
    print(f"max lateness: {schedule.max_lateness():g}\n")
    print(render_gantt(schedule, platform))


if __name__ == "__main__":
    main()
