"""Declarative experiment definitions (JSON documents).

Custom experiments without writing Python: a JSON document names the
sweep variable, the series, and base settings; :func:`spec_from_dict`
turns it into an :class:`~repro.experiments.spec.ExperimentSpec` that
`run_experiment` / the CLI can execute.

Document shape::

    {
      "name": "my-sweep",
      "title": "ADAPT-L vs PURE over CCR",
      "x": {"field": "workload.ccr", "values": [0.0, 0.5, 1.0]},
      "series": [
        {"label": "PURE",    "set": {"metric": "PURE"}},
        {"label": "ADAPT-L", "set": {"metric": "ADAPT-L"}}
      ],
      "base": {"workload.m": 3, "workload.olr": 0.7, "adaptive.k_l": 0.2}
    }

Settable fields (dotted paths):

* ``metric``, ``estimator``, ``scheduler``, ``contention_bus``,
  ``measure_lateness``, ``locality`` — trial-level knobs;
* ``workload.<field>`` — any :class:`~repro.workload.WorkloadParams`
  field (tuple fields accept 2-element lists);
* ``adaptive.<field>`` — any
  :class:`~repro.core.metrics.AdaptiveParams` field.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Any, Mapping

from ..core.metrics import AdaptiveParams
from ..errors import ExperimentError
from ..workload.params import WorkloadParams
from .spec import ExperimentSpec, TrialConfig

__all__ = ["spec_from_dict", "load_spec", "apply_setting"]

_TRIAL_FIELDS = {
    "metric",
    "estimator",
    "scheduler",
    "contention_bus",
    "measure_lateness",
    "locality",
}

_TUPLE_FIELDS = {
    "n_classes_range",
    "n_tasks_range",
    "depth_range",
    "fan_range",
}


def apply_setting(config: TrialConfig, path: str, value: Any) -> TrialConfig:
    """Return a copy of *config* with the dotted *path* set to *value*."""
    if path in _TRIAL_FIELDS:
        return replace(config, **{path: value})
    scope, _, field = path.partition(".")
    if not field:
        raise ExperimentError(
            f"unknown setting {path!r}; trial-level settings are "
            f"{sorted(_TRIAL_FIELDS)}, nested ones use 'workload.<f>' or "
            "'adaptive.<f>'"
        )
    if scope == "workload":
        if field in _TUPLE_FIELDS:
            value = tuple(value)
        if field not in WorkloadParams.__dataclass_fields__:
            raise ExperimentError(f"unknown workload field {field!r}")
        return replace(
            config, workload=config.workload.with_overrides(**{field: value})
        )
    if scope == "adaptive":
        if field not in AdaptiveParams.__dataclass_fields__:
            raise ExperimentError(f"unknown adaptive field {field!r}")
        return replace(
            config, adaptive=replace(config.adaptive, **{field: value})
        )
    raise ExperimentError(f"unknown setting scope {scope!r} in {path!r}")


def spec_from_dict(doc: Mapping[str, Any]) -> ExperimentSpec:
    """Build an :class:`ExperimentSpec` from a declarative document."""
    try:
        name = doc["name"]
        x_doc = doc["x"]
        x_field = x_doc["field"]
        x_values = list(x_doc["values"])
        series_docs = list(doc["series"])
    except (KeyError, TypeError) as exc:
        raise ExperimentError(
            f"experiment document missing required key: {exc}"
        ) from exc
    if not series_docs:
        raise ExperimentError("experiment document needs at least one series")

    base_settings = dict(doc.get("base", {}))
    labels: list[str] = []
    series_settings: dict[str, dict[str, Any]] = {}
    for entry in series_docs:
        try:
            label = entry["label"]
            settings = dict(entry.get("set", {}))
        except (KeyError, TypeError) as exc:
            raise ExperimentError(f"malformed series entry: {entry!r}") from exc
        labels.append(label)
        series_settings[label] = settings

    # Validate every setting once up front (fail fast, good messages).
    probe = TrialConfig()
    for path, value in base_settings.items():
        probe = apply_setting(probe, path, value)
    for settings in series_settings.values():
        p = probe
        for path, value in settings.items():
            p = apply_setting(p, path, value)
    for x in x_values:
        apply_setting(probe, x_field, x)

    def config_for(x: Any, label: str) -> TrialConfig:
        config = TrialConfig()
        for path, value in base_settings.items():
            config = apply_setting(config, path, value)
        for path, value in series_settings[label].items():
            config = apply_setting(config, path, value)
        return apply_setting(config, x_field, x)

    return ExperimentSpec(
        name=name,
        title=doc.get("title", name),
        x_label=doc.get("x_label", x_field),
        x_values=x_values,
        series=labels,
        config_for=config_for,
        description=doc.get("description", ""),
        paper_reference=doc.get("paper_reference", "custom"),
    )


def load_spec(path: str | Path) -> ExperimentSpec:
    """Load a declarative experiment from a JSON file."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"cannot read experiment {path}: {exc}") from exc
    return spec_from_dict(doc)
