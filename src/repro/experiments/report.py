"""Rendering and persisting experiment results."""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..analysis.series import ascii_chart
from ..analysis.tables import format_markdown_table, format_table
from .runner import ExperimentResult

__all__ = [
    "result_table",
    "result_markdown",
    "result_chart",
    "lateness_table",
    "save_json",
    "save_csv",
    "render_report",
]


def _rows(result: ExperimentResult, *, with_ci: bool) -> list[list[str]]:
    rows: list[list[str]] = []
    for xi, x in enumerate(result.x_values):
        row: list[str] = [f"{x:g}" if isinstance(x, float) else str(x)]
        for label in result.series:
            cell = result.cell(xi, label)
            if with_ci:
                lo, hi = cell.estimate.interval
                row.append(f"{cell.ratio:.3f} [{lo:.3f},{hi:.3f}]")
            else:
                row.append(f"{cell.ratio:.3f}")
        rows.append(row)
    return rows


def result_table(result: ExperimentResult, *, with_ci: bool = False) -> str:
    """Fixed-width table: one row per x value, one column per series."""
    headers = [result.x_label] + list(result.series)
    return format_table(headers, _rows(result, with_ci=with_ci))


def _has_lateness(result: ExperimentResult) -> bool:
    return any(c.lateness_trials > 0 for c in result.cells.values())


def lateness_table(result: ExperimentResult) -> str:
    """Mean maximum-lateness table (§4.2 secondary quality measure)."""
    headers = [result.x_label] + [f"{s} (max lateness)" for s in result.series]
    rows: list[list[str]] = []
    for xi, x in enumerate(result.x_values):
        row = [f"{x:g}" if isinstance(x, float) else str(x)]
        for label in result.series:
            cell = result.cell(xi, label)
            if cell.lateness_trials:
                row.append(f"{cell.mean_max_lateness:.1f}")
            else:
                row.append("-")
        rows.append(row)
    return format_table(headers, rows)


def result_markdown(result: ExperimentResult, *, with_ci: bool = True) -> str:
    """Markdown table (used by EXPERIMENTS.md)."""
    headers = [result.x_label] + list(result.series)
    return format_markdown_table(headers, _rows(result, with_ci=with_ci))


def result_chart(result: ExperimentResult, *, height: int = 14) -> str:
    """ASCII success-ratio chart of all series."""
    series = {label: result.ratios(label) for label in result.series}
    return ascii_chart(result.x_values, series, height=height)


def render_report(result: ExperimentResult) -> str:
    """Title + table + chart + provenance, ready for the terminal."""
    parts = [
        f"== {result.title} ({result.name}, {result.paper_reference}) ==",
        result_table(result, with_ci=True),
    ]
    if _has_lateness(result):
        parts += ["", lateness_table(result)]
    parts += [
        "",
        result_chart(result),
        (
            f"trials/cell={result.trials_per_cell} seed={result.seed} "
            f"elapsed={result.elapsed_seconds:.1f}s"
        ),
    ]
    return "\n".join(parts)


def save_json(result: ExperimentResult, path: str | Path) -> None:
    """Persist the full result (counts, intervals, provenance) as JSON."""
    Path(path).write_text(json.dumps(result.to_dict(), indent=2))


def save_csv(result: ExperimentResult, path: str | Path) -> None:
    """Persist the success-ratio matrix as CSV (one column per series)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([result.x_label] + list(result.series))
        for xi, x in enumerate(result.x_values):
            writer.writerow(
                [x] + [result.cell(xi, s).ratio for s in result.series]
            )
