"""Per-trial shared derived state for the paired-trial engine.

The paper's evaluation judges one fixed set of random task graphs with
*every* metric (the paired design of §6), so within one trial every
series sees the same workload.  Everything derivable from the workload
alone — topological order, successor adjacency, the transitive closure,
each estimator's WCET map, the strict-locality clustering — is therefore
identical across series and is computed lazily, exactly once, on a
:class:`TrialContext`.  Series then differ only in the metric's sharing
rule, the scheduler policy, and the communication model, which is where
the 2–4× amortization win of the paired engine comes from.

Laziness matters for bit-identical equivalence with the per-cell engine:
a PURE-only series never builds a transitive closure, so the context
must not build one either unless some series asks for it.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.estimation import WcetEstimator, estimate_map, get_estimator
from ..errors import DistributionError
from ..graph.algorithms import TransitiveClosure
from ..graph.taskgraph import TaskGraph
from ..system.platform import Platform
from ..rng import make_rng
from ..types import Time
from ..workload.generator import Workload, generate_workload
from ..workload.params import WorkloadParams

__all__ = ["TrialContext"]


class TrialContext:
    """Lazily cached derived state of one generated workload.

    One context serves every series of one trial; all cached values are
    pure functions of the workload, so sharing them cannot change any
    outcome — only how often they are recomputed.
    """

    __slots__ = (
        "workload",
        "_topo_order",
        "_successors",
        "_predecessors",
        "_initial_pins",
        "_closure",
        "_estimates",
        "_strict",
        "_compiled",
    )

    def __init__(self, workload: Workload) -> None:
        self.workload = workload
        self._topo_order: list[str] | None = None
        self._successors: dict[str, list[str]] | None = None
        self._predecessors: dict[str, list[str]] | None = None
        self._initial_pins: tuple[dict[str, Time], dict[str, Time]] | None = None
        self._closure: TransitiveClosure | None = None
        self._estimates: dict[str, Mapping[str, Time]] = {}
        self._strict: tuple[object, Mapping[str, Time]] | None = None
        self._compiled = None

    @classmethod
    def from_seed(cls, params: "WorkloadParams", seed: int) -> "TrialContext":
        """Generate the trial's workload from *seed* and wrap it.

        The one sanctioned way to materialize a trial context in the
        engines: the workload — and therefore everything this context
        derives — is a pure function of ``(params, seed)``, which is
        the determinism contract the persistent result store keys on.
        """
        return cls(generate_workload(params, make_rng(seed)))

    @classmethod
    def from_seeds(
        cls, params: "WorkloadParams", seeds: Sequence[int]
    ) -> list["TrialContext"]:
        """One context per seed of a chunk, in seed order.

        The seed-batch driver's input shape: generation stays strictly
        per-seed (each workload is a pure function of ``(params,
        seed)``), so batching changes nothing about the workloads —
        only how the derived stages are evaluated across them.
        """
        return [cls.from_seed(params, seed) for seed in seeds]

    # ------------------------------------------------------------------
    @property
    def graph(self) -> TaskGraph:
        return self.workload.graph

    @property
    def platform(self) -> Platform:
        return self.workload.platform

    @property
    def topo_order(self) -> Sequence[str]:
        """Topological order of the task graph (computed once)."""
        if self._topo_order is None:
            self._topo_order = self.graph.topological_order()
        return self._topo_order

    @property
    def successors(self) -> Mapping[str, Sequence[str]]:
        """Immediate-successor adjacency (computed once)."""
        if self._successors is None:
            graph = self.graph
            self._successors = {
                tid: graph.successors(tid) for tid in self.topo_order
            }
        return self._successors

    @property
    def predecessors(self) -> Mapping[str, Sequence[str]]:
        """Immediate-predecessor adjacency (computed once)."""
        if self._predecessors is None:
            graph = self.graph
            self._predecessors = {
                tid: graph.predecessors(tid) for tid in self.topo_order
            }
        return self._predecessors

    @property
    def initial_pins(self) -> tuple[Mapping[str, Time], Mapping[str, Time]]:
        """Step-1 boundary pins of Algorithm SLICING (computed once).

        ``(arrivals, deadlines)`` templates: the phasing of every input
        task and the tightest E-T-E bound of every output task.  Both
        depend only on the workload, so the slicing runs of every series
        copy these instead of re-deriving them.
        """
        if self._initial_pins is None:
            graph = self.graph
            arrivals = {
                tid: graph.task(tid).phasing for tid in graph.input_tasks()
            }
            deadlines: dict[str, Time] = {}
            for tid in graph.output_tasks():
                bound = graph.output_deadline(tid)
                if bound is None:
                    raise DistributionError(
                        f"output task {tid!r} has no E-T-E deadline; the "
                        "slicing technique needs a window for every output "
                        "task"
                    )
                deadlines[tid] = bound
            self._initial_pins = (arrivals, deadlines)
        return self._initial_pins

    @property
    def closure(self) -> TransitiveClosure:
        """Transitive closure of the task graph (computed once)."""
        if self._closure is None:
            self._closure = TransitiveClosure(self.graph)
        return self._closure

    @property
    def compiled(self):
        """The workload's :class:`~repro.kernel.compiled.CompiledWorkload`.

        Built lazily, exactly once per trial, and shared by every
        series judged on this workload — the kernel's analogue of the
        other derived-state properties (it is likewise a pure function
        of the workload).
        """
        if self._compiled is None:
            from ..kernel.compiled import compile_workload

            self._compiled = compile_workload(self.graph, self.platform)
        return self._compiled

    # ------------------------------------------------------------------
    def estimates_for(
        self, estimator: WcetEstimator | str
    ) -> Mapping[str, Time]:
        """The estimator's ``c̄_i`` map, computed once per estimator."""
        est = get_estimator(estimator)
        cached = self._estimates.get(est.name)
        if cached is None:
            cached = estimate_map(self.graph, est, self.platform)
            self._estimates[est.name] = cached
        return cached

    def strict_assignment(self):
        """The strict-locality clustering and its exact estimates.

        Returns ``(TaskAssignment, estimates)`` as used by the
        ``locality="strict"`` regime; both depend only on the workload,
        so one clustering serves every strict series of the trial.
        """
        if self._strict is None:
            from ..assign import cluster_assignment, exact_estimates

            fixed = cluster_assignment(self.graph, self.platform)
            self._strict = (
                fixed,
                exact_estimates(self.graph, self.platform, fixed),
            )
        return self._strict
