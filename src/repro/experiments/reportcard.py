"""Combined report generation from saved experiment results.

``repro-figures --all --out results/`` leaves one JSON document per
experiment; :func:`build_report` folds a whole results directory back
into a single Markdown report (tables + provenance), ready to diff
against EXPERIMENTS.md or paste into a lab notebook.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..analysis.tables import format_markdown_table
from ..errors import ExperimentError

__all__ = ["load_result_doc", "result_doc_markdown", "build_report"]


def load_result_doc(path: str | Path) -> dict[str, Any]:
    """Load and validate one saved experiment-result JSON document."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"cannot read result {path}: {exc}") from exc
    if doc.get("format") != "repro.experiment-result/1":
        raise ExperimentError(
            f"{path} is not an experiment result "
            f"(format={doc.get('format')!r})"
        )
    return doc


def result_doc_markdown(doc: dict[str, Any]) -> str:
    """Render one result document as a Markdown section."""
    series = list(doc["series"])
    x_values = list(doc["x_values"])
    cells = {
        (c["x_index"], c["series_index"]): c for c in doc["cells"]
    }
    rows = []
    for xi, x in enumerate(x_values):
        row = [f"{x:g}" if isinstance(x, float) else str(x)]
        for si in range(len(series)):
            cell = cells.get((xi, si))
            if cell is None:
                row.append("-")
                continue
            lo, hi = cell["interval"]
            row.append(f"{cell['ratio']:.3f} [{lo:.3f},{hi:.3f}]")
        rows.append(row)
    parts = [
        f"### {doc.get('title', doc['name'])} (`{doc['name']}`, "
        f"{doc.get('paper_reference', '')})",
        "",
        format_markdown_table([doc.get("x_label", "x")] + series, rows),
        "",
        f"*{doc.get('trials_per_cell', '?')} trials/cell, "
        f"seed {doc.get('seed', '?')}, "
        f"{doc.get('elapsed_seconds', 0.0):.1f}s*",
    ]
    # Lateness block when the experiment measured it.
    if any(c.get("lateness_trials", 0) > 0 for c in doc["cells"]):
        late_rows = []
        for xi, x in enumerate(x_values):
            row = [f"{x:g}" if isinstance(x, float) else str(x)]
            for si in range(len(series)):
                cell = cells.get((xi, si))
                if cell and cell.get("lateness_trials", 0) > 0:
                    row.append(f"{cell['mean_max_lateness']:.1f}")
                else:
                    row.append("-")
            late_rows.append(row)
        parts += [
            "",
            "Mean maximum lateness:",
            "",
            format_markdown_table(
                [doc.get("x_label", "x")]
                + [f"{s} (lateness)" for s in series],
                late_rows,
            ),
        ]
    return "\n".join(parts)


def build_report(
    results_dir: str | Path, *, title: str = "Experiment report"
) -> str:
    """Fold every ``*.json`` experiment result in a directory into one report.

    Non-result JSON files (e.g. heatmap exports) are skipped.  Results
    are ordered with the paper figures first, then ablations, then the
    rest alphabetically.
    """
    directory = Path(results_dir)
    if not directory.is_dir():
        raise ExperimentError(f"{results_dir} is not a directory")
    docs = []
    for path in sorted(directory.glob("*.json")):
        try:
            docs.append(load_result_doc(path))
        except ExperimentError:
            continue  # other JSON artifacts live here too
    if not docs:
        raise ExperimentError(f"no experiment results found in {results_dir}")

    def order(doc: dict[str, Any]) -> tuple[int, str]:
        name = doc["name"]
        if name.startswith("fig"):
            return (0, name)
        if name.startswith("abl-"):
            return (1, name)
        return (2, name)

    docs.sort(key=order)
    sections = [f"# {title}", ""]
    for doc in docs:
        sections.append(result_doc_markdown(doc))
        sections.append("")
    return "\n".join(sections)
