"""Experiment harness reproducing the evaluation of §6 (Figs. 2–6)."""

from .config import apply_setting, load_spec, spec_from_dict
from .figures import FIGURES, get_figure_spec
from .reportcard import build_report, load_result_doc, result_doc_markdown
from .robustness import RobustnessResult, robustness_table, run_robustness
from .report import (
    lateness_table,
    render_report,
    result_chart,
    result_markdown,
    result_table,
    save_csv,
    save_json,
)
from .context import TrialContext
from .runner import (
    ENGINE_NAMES,
    CellResult,
    ExperimentResult,
    cell_chunk_key,
    run_cell,
    run_experiment,
    run_paired_cells,
    run_trial,
)
from .spec import ExperimentSpec, TrialConfig, TrialOutcome
from .sweep2d import Sweep2DResult, heatmap, run_sweep2d

__all__ = [
    "TrialConfig",
    "TrialOutcome",
    "ExperimentSpec",
    "run_trial",
    "run_cell",
    "run_paired_cells",
    "run_experiment",
    "cell_chunk_key",
    "ENGINE_NAMES",
    "TrialContext",
    "CellResult",
    "ExperimentResult",
    "FIGURES",
    "get_figure_spec",
    "result_table",
    "result_markdown",
    "result_chart",
    "lateness_table",
    "render_report",
    "save_json",
    "save_csv",
    "run_sweep2d",
    "Sweep2DResult",
    "heatmap",
    "spec_from_dict",
    "load_spec",
    "apply_setting",
    "run_robustness",
    "RobustnessResult",
    "robustness_table",
    "build_report",
    "load_result_doc",
    "result_doc_markdown",
]
