"""Two-dimensional parameter sweeps (e.g. system size × OLR heatmaps).

The paper's figures are one-dimensional cuts through a larger response
surface; :func:`run_sweep2d` maps the whole surface for a single
metric/configuration — handy for locating the transition front the
individual figures slice through.

The same determinism contract as :mod:`repro.experiments.runner`
applies: outcomes depend only on ``(seed, x_index, y_index,
trial_index)``, and the per-point workload seeds are shared by any two
sweeps with the same seed, so sweeps of different metrics are paired.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import ExperimentError, ReproError
from ..rng import derive_seed
from .runner import CellResult, run_cell
from .spec import TrialConfig

__all__ = ["Sweep2DResult", "run_sweep2d", "heatmap"]


@dataclass
class Sweep2DResult:
    """Grid of cell results over two swept parameters."""

    title: str
    x_label: str
    y_label: str
    x_values: list[Any]
    y_values: list[Any]
    cells: dict[tuple[int, int], CellResult] = field(default_factory=dict)
    trials_per_cell: int = 0
    seed: int = 0
    elapsed_seconds: float = 0.0

    def cell(self, x_index: int, y_index: int) -> CellResult:
        try:
            return self.cells[(x_index, y_index)]
        except KeyError:
            raise ExperimentError(
                f"no cell at x={x_index}, y={y_index}"
            ) from None

    def ratio_grid(self) -> list[list[float]]:
        """Rows indexed by y, columns by x (matrix convention)."""
        return [
            [self.cell(xi, yi).ratio for xi in range(len(self.x_values))]
            for yi in range(len(self.y_values))
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": "repro.sweep2d/1",
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "x_values": list(self.x_values),
            "y_values": list(self.y_values),
            "trials_per_cell": self.trials_per_cell,
            "seed": self.seed,
            "elapsed_seconds": self.elapsed_seconds,
            "ratios": self.ratio_grid(),
        }


def run_sweep2d(
    config_for: Callable[[Any, Any], TrialConfig],
    x_values: Sequence[Any],
    y_values: Sequence[Any],
    *,
    title: str = "2D sweep",
    x_label: str = "x",
    y_label: str = "y",
    trials: int = 128,
    seed: int = 2026,
    jobs: int | None = None,
    chunk_size: int = 32,
) -> Sweep2DResult:
    """Evaluate ``config_for(x, y)`` over the full grid."""
    if not x_values or not y_values:
        raise ExperimentError("both sweep axes need at least one value")
    if trials < 1:
        raise ExperimentError("trials must be at least 1")
    start = time.perf_counter()

    units: list[tuple[tuple[int, int], TrialConfig, list[int]]] = []
    for xi, x in enumerate(x_values):
        for yi, y in enumerate(y_values):
            config = config_for(x, y)
            seeds = [
                derive_seed(seed, xi, yi, t) for t in range(trials)
            ]
            for lo in range(0, trials, chunk_size):
                units.append(
                    ((xi, yi), config, seeds[lo : lo + chunk_size])
                )

    if jobs is None:
        jobs = os.cpu_count() or 1
    partials: list[tuple[tuple[int, int], CellResult]] = []
    if jobs <= 1 or len(units) == 1:
        for key, config, seeds in units:
            partials.append((key, run_cell(config, seeds)))
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                (key, pool.submit(run_cell, config, seeds))
                for key, config, seeds in units
            ]
            for key, fut in futures:
                try:
                    partials.append((key, fut.result()))
                except ReproError:
                    raise
                except Exception as exc:
                    raise ExperimentError(
                        f"worker failed on cell {key}: {exc}"
                    ) from exc

    result = Sweep2DResult(
        title=title,
        x_label=x_label,
        y_label=y_label,
        x_values=list(x_values),
        y_values=list(y_values),
        trials_per_cell=trials,
        seed=seed,
    )
    for key, cell in partials:
        if key in result.cells:
            result.cells[key] = result.cells[key].merged(cell)
        else:
            result.cells[key] = cell
    result.elapsed_seconds = time.perf_counter() - start
    return result


_SHADES = " .:-=+*#%@"


def heatmap(result: Sweep2DResult) -> str:
    """ASCII heatmap of the success-ratio grid (darker = higher)."""
    col_w = max(4, max(len(f"{x:g}" if isinstance(x, float) else str(x))
                       for x in result.x_values) + 1)
    lines = [f"{result.title} (success ratio; ' '=0 .. '@'=1)"]
    header = " " * 8
    for x in result.x_values:
        header += (f"{x:g}" if isinstance(x, float) else str(x)).rjust(col_w)
    lines.append(header)
    for yi in reversed(range(len(result.y_values))):
        y = result.y_values[yi]
        label = (f"{y:g}" if isinstance(y, float) else str(y)).rjust(7)
        row = label + " "
        for xi in range(len(result.x_values)):
            r = result.cell(xi, yi).ratio
            shade = _SHADES[min(len(_SHADES) - 1, int(r * (len(_SHADES) - 1) + 0.5))]
            row += (shade * 2).rjust(col_w)
        lines.append(row)
    lines.append(f"        [{result.y_label} rising ↑, {result.x_label} →]")
    return "\n".join(lines)
