"""Definitions of every evaluation figure (§6) and the §7 ablations.

Each factory returns an :class:`~repro.experiments.spec.ExperimentSpec`
whose defaults mirror the paper: ETD = 25%, OLR = 0.8, CCR = 0.1,
``c_thres = 1.0·c_mean``, ``k_G = 1.5``, ``k_L = 0.2``, WCET-AVG, 40–60
tasks, depth 8–12, 1–3 processor classes, shared bus at one unit/item.

The registry :data:`FIGURES` maps experiment ids (``fig2`` … ``fig6``,
``abl-*``) to factories; :func:`get_figure_spec` resolves them.
"""

from __future__ import annotations

from typing import Callable

from ..core.metrics import METRIC_NAMES, AdaptiveParams
from ..errors import ExperimentError
from ..workload.params import WorkloadParams
from .spec import ExperimentSpec, TrialConfig

__all__ = [
    "FIGURES",
    "get_figure_spec",
    "fig2_system_size",
    "fig3_olr",
    "fig4_etd",
    "fig5_wcet_olr",
    "fig6_wcet_etd",
    "ablation_kg",
    "ablation_kl",
    "ablation_threshold",
    "ablation_ccr",
    "ablation_schedulers",
    "ablation_lateness",
    "ablation_locality",
]

#: WCET estimation strategies plotted by Figs. 5–6.
_WCET_SERIES = ("WCET-AVG", "WCET-MAX", "WCET-MIN")

#: OLR sweep used by Figs. 3 and 5 (tight → loose deadlines).
OLR_SWEEP = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: ETD sweep used by Figs. 4 and 6 ("0% to 100% in steps of 25%").
ETD_SWEEP = (0.0, 0.25, 0.5, 0.75, 1.0)


def _paper_adaptive() -> AdaptiveParams:
    """The paper's default adaptive parameters (§6)."""
    return AdaptiveParams(k_g=1.5, k_l=0.2, c_thres_factor=1.0)


def fig2_system_size() -> ExperimentSpec:
    """Figure 2 — success ratio vs. system size (m = 2..8), all metrics."""

    def config(m, metric: str) -> TrialConfig:
        return TrialConfig(
            workload=WorkloadParams(m=int(m)),
            metric=metric,
            adaptive=_paper_adaptive(),
        )

    return ExperimentSpec(
        name="fig2",
        title="Success ratio as a function of system size",
        x_label="processors (m)",
        x_values=tuple(range(2, 9)),
        series=METRIC_NAMES,
        config_for=config,
        paper_reference="Figure 2",
        description=(
            "OLR=0.8, ETD=25%. Expected shape: all curves rise to 1.0 "
            "with m; ADAPT-L dominates, especially at m=2..3 where the "
            "non-adaptive metrics nearly always fail."
        ),
    )


def fig3_olr() -> ExperimentSpec:
    """Figure 3 — success ratio vs. overall laxity ratio, m = 3."""

    def config(olr, metric: str) -> TrialConfig:
        return TrialConfig(
            workload=WorkloadParams(m=3, olr=float(olr)),
            metric=metric,
            adaptive=_paper_adaptive(),
        )

    return ExperimentSpec(
        name="fig3",
        title="Success ratio as a function of OLR",
        x_label="overall laxity ratio (OLR)",
        x_values=OLR_SWEEP,
        series=METRIC_NAMES,
        config_for=config,
        paper_reference="Figure 3",
        description=(
            "Three processors, ETD=25%. Expected shape: every metric "
            "improves with looser deadlines; ADAPT-L leads by ~an order "
            "of magnitude at tight OLR, ADAPT-G by ~3x over non-adaptive."
        ),
    )


def fig4_etd() -> ExperimentSpec:
    """Figure 4 — success ratio vs. execution-time distribution, m = 3."""

    def config(etd, metric: str) -> TrialConfig:
        return TrialConfig(
            workload=WorkloadParams(m=3, etd=float(etd)),
            metric=metric,
            adaptive=_paper_adaptive(),
        )

    return ExperimentSpec(
        name="fig4",
        title="Success ratio as a function of ETD",
        x_label="execution time distribution (ETD)",
        x_values=ETD_SWEEP,
        series=METRIC_NAMES,
        config_for=config,
        paper_reference="Figure 4",
        description=(
            "Three processors, OLR=0.8. Expected shape: PURE, NORM and "
            "ADAPT-G coincide at ETD=0 while ADAPT-L is an order of "
            "magnitude ahead; NORM overtakes ADAPT-G at large ETD; the "
            "adaptive metrics sag slightly past ETD=50%."
        ),
    )


def fig5_wcet_olr() -> ExperimentSpec:
    """Figure 5 — ADAPT-L success vs. OLR per WCET estimation strategy."""

    def config(olr, estimator: str) -> TrialConfig:
        return TrialConfig(
            workload=WorkloadParams(m=3, olr=float(olr)),
            metric="ADAPT-L",
            estimator=estimator,
            adaptive=_paper_adaptive(),
        )

    return ExperimentSpec(
        name="fig5",
        title="Success ratio for ADAPT-L vs OLR per WCET strategy",
        x_label="overall laxity ratio (OLR)",
        x_values=OLR_SWEEP,
        series=_WCET_SERIES,
        config_for=config,
        paper_reference="Figure 5",
        description=(
            "Three processors, ETD=25%. Expected shape: WCET-MAX edges "
            "out WCET-AVG by ~5%; WCET-MIN trails by ~5%."
        ),
    )


def fig6_wcet_etd() -> ExperimentSpec:
    """Figure 6 — ADAPT-L success vs. ETD per WCET estimation strategy."""

    def config(etd, estimator: str) -> TrialConfig:
        return TrialConfig(
            workload=WorkloadParams(m=3, etd=float(etd)),
            metric="ADAPT-L",
            estimator=estimator,
            adaptive=_paper_adaptive(),
        )

    return ExperimentSpec(
        name="fig6",
        title="Success ratio for ADAPT-L vs ETD per WCET strategy",
        x_label="execution time distribution (ETD)",
        x_values=ETD_SWEEP,
        series=_WCET_SERIES,
        config_for=config,
        paper_reference="Figure 6",
        description=(
            "Three processors, OLR=0.8. Expected shape: WCET-MAX best at "
            "small/medium ETD but degrading past ETD=75%, where its "
            "pessimism starves short tasks of laxity."
        ),
    )


# ----------------------------------------------------------------------
# Ablations (§7.1 adaptivity factors, §4.5 threshold, §5.2 comm model)
# ----------------------------------------------------------------------
def ablation_kg() -> ExperimentSpec:
    """§7.1 — sensitivity of ADAPT-G to the global adaptivity factor k_G."""

    def config(k_g, _series: str) -> TrialConfig:
        return TrialConfig(
            workload=WorkloadParams(m=3),
            metric="ADAPT-G",
            adaptive=AdaptiveParams(k_g=float(k_g), c_thres_factor=1.0),
        )

    return ExperimentSpec(
        name="abl-kg",
        title="ADAPT-G sensitivity to the global adaptivity factor",
        x_label="k_G",
        x_values=(0.0, 0.5, 1.0, 1.5, 2.0, 3.0),
        series=("ADAPT-G",),
        config_for=config,
        paper_reference="Section 7.1",
        description=(
            "k_G=0 reduces ADAPT-G to PURE; the paper's default is 1.5. "
            "Performance should be robust in a broad band around it."
        ),
    )


def ablation_kl() -> ExperimentSpec:
    """§7.1 — sensitivity of ADAPT-L to the local adaptivity factor k_L."""

    def config(k_l, _series: str) -> TrialConfig:
        return TrialConfig(
            workload=WorkloadParams(m=3),
            metric="ADAPT-L",
            adaptive=AdaptiveParams(k_l=float(k_l), c_thres_factor=1.0),
        )

    return ExperimentSpec(
        name="abl-kl",
        title="ADAPT-L sensitivity to the local adaptivity factor",
        x_label="k_L",
        x_values=(0.0, 0.05, 0.1, 0.2, 0.4, 0.8),
        series=("ADAPT-L",),
        config_for=config,
        paper_reference="Section 7.1",
        description=(
            "k_L=0 reduces ADAPT-L to PURE; the paper's default is 0.2."
        ),
    )


def ablation_threshold() -> ExperimentSpec:
    """§4.5 — the execution-time threshold c_thres for both adaptive metrics."""

    def config(factor, metric: str) -> TrialConfig:
        return TrialConfig(
            workload=WorkloadParams(m=3),
            metric=metric,
            adaptive=AdaptiveParams(c_thres_factor=float(factor)),
        )

    return ExperimentSpec(
        name="abl-thres",
        title="Adaptive metrics vs. execution-time threshold",
        x_label="c_thres / c_mean",
        x_values=(0.0, 0.5, 0.75, 1.0, 1.25, 1.5),
        series=("ADAPT-G", "ADAPT-L"),
        config_for=config,
        paper_reference="Section 4.5",
        description=(
            "c_thres filters which tasks receive virtual-time surplus; "
            "the paper fixes it at 1.0 x c_mean."
        ),
    )


def ablation_ccr() -> ExperimentSpec:
    """§5.2/§3.1 — communication intensity and the contention-bus extension."""

    def config(ccr, series: str) -> TrialConfig:
        return TrialConfig(
            workload=WorkloadParams(m=3, ccr=float(ccr)),
            metric="ADAPT-L",
            adaptive=_paper_adaptive(),
            contention_bus=(series == "contention bus"),
        )

    return ExperimentSpec(
        name="abl-ccr",
        title="ADAPT-L vs. CCR under nominal and contention bus models",
        x_label="CCR",
        x_values=(0.0, 0.1, 0.25, 0.5, 1.0),
        series=("nominal bus", "contention bus"),
        config_for=config,
        paper_reference="Sections 3.1, 5.2",
        description=(
            "The paper's nominal (contention-free) delay vs. a serialized "
            "shared bus; the gap grows with communication intensity."
        ),
    )


def ablation_locality() -> ExperimentSpec:
    """§1/§2 — relaxed vs. strict locality constraints.

    The paper's whole premise is that relaxed locality (assignment
    unknown at distribution time) makes deadline distribution harder.
    This ablation quantifies the premise: ADAPT-L under the relaxed
    regime vs. conventional distribution with a clustering
    pre-assignment, exact execution times and fixed placement.
    """

    def config(olr, series: str) -> TrialConfig:
        return TrialConfig(
            workload=WorkloadParams(m=3, olr=float(olr)),
            metric="ADAPT-L",
            adaptive=_paper_adaptive(),
            locality="strict" if series == "strict (clustered)" else "relaxed",
        )

    return ExperimentSpec(
        name="abl-locality",
        title="Relaxed vs. strict locality constraints under ADAPT-L",
        x_label="overall laxity ratio (OLR)",
        x_values=(0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
        series=("relaxed (free placement)", "strict (clustered)"),
        config_for=config,
        paper_reference="Sections 1-2",
        description=(
            "Strict assignment trades exact information for lost "
            "placement freedom; relaxed placement exploits the whole "
            "machine at the cost of estimated WCETs."
        ),
    )


def ablation_lateness() -> ExperimentSpec:
    """§4.2 secondary measure — maximum lateness under loose deadlines.

    Reference [12] evaluated the slicing metrics by maximum lateness in
    a regime where E-T-E deadlines are loose enough for a near-100%
    success ratio.  This experiment recreates that evaluation: at
    OLR ≥ 1 the success ratios saturate and the mean maximum lateness
    (more negative = more margin for additional background workload)
    becomes the discriminating measure.
    """

    def config(olr, metric: str) -> TrialConfig:
        return TrialConfig(
            workload=WorkloadParams(m=3, olr=float(olr)),
            metric=metric,
            adaptive=_paper_adaptive(),
            measure_lateness=True,
        )

    return ExperimentSpec(
        name="abl-lateness",
        title="Maximum lateness under loose deadlines (the [12] measure)",
        x_label="overall laxity ratio (OLR)",
        x_values=(1.0, 1.1, 1.2, 1.3),
        series=METRIC_NAMES,
        config_for=config,
        paper_reference="Section 4.2 / reference [12]",
        description=(
            "Success ratios saturate; mean maximum lateness (reported "
            "alongside the ratio table) ranks the metrics by margin."
        ),
    )


def ablation_schedulers() -> ExperimentSpec:
    """§7.3 — the metrics' robustness across scheduling policies.

    Sweeps the OLR at m = 3 with ADAPT-L deadlines under four
    non-preemptive list-scheduling policies: the paper's EDF baseline,
    highest-static-level-first (HLFET), arrival-order dispatch (FIFO)
    and least-laxity-first.
    """

    def config(olr, scheduler: str) -> TrialConfig:
        return TrialConfig(
            workload=WorkloadParams(m=3, olr=float(olr)),
            metric="ADAPT-L",
            adaptive=_paper_adaptive(),
            scheduler=scheduler,
        )

    return ExperimentSpec(
        name="abl-sched",
        title="ADAPT-L under alternative scheduling policies",
        x_label="overall laxity ratio (OLR)",
        x_values=(0.6, 0.7, 0.8, 0.9, 1.0),
        series=("EDF-LIST", "LLF-LIST", "SL-LIST", "FIFO-LIST"),
        config_for=config,
        paper_reference="Section 7.3",
        description=(
            "The slicing technique is not tied to the EDF baseline "
            "(implications I1/I2).  Expected: EDF dominates; FIFO "
            "(timeline-aware, deadline-blind) trails; static levels "
            "and static least-laxity (both timeline-blind) collapse."
        ),
    )


FIGURES: dict[str, Callable[[], ExperimentSpec]] = {
    "fig2": fig2_system_size,
    "fig3": fig3_olr,
    "fig4": fig4_etd,
    "fig5": fig5_wcet_olr,
    "fig6": fig6_wcet_etd,
    "abl-kg": ablation_kg,
    "abl-kl": ablation_kl,
    "abl-thres": ablation_threshold,
    "abl-ccr": ablation_ccr,
    "abl-sched": ablation_schedulers,
    "abl-lateness": ablation_lateness,
    "abl-locality": ablation_locality,
}


def get_figure_spec(name: str) -> ExperimentSpec:
    """Resolve an experiment id from :data:`FIGURES`."""
    try:
        return FIGURES[name]()
    except KeyError:
        raise ExperimentError(
            f"unknown figure {name!r}; available: {sorted(FIGURES)}"
        ) from None
