"""Experiment execution: trials, cells, and multiprocessing fan-out.

Determinism contract: the outcome of a trial depends only on
``(root_seed, x_index, trial_index)`` — never on worker
count or scheduling order.  Workers receive (config, seed-block) pairs
and return aggregate counts, so inter-process traffic stays tiny (per
the hpc-parallel guidance: parallelize coarse-grained units, keep the
serial inner loop simple and measured).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..analysis.stats import BinomialEstimate
from ..core.estimation import estimate_map, get_estimator
from ..core.metrics import get_metric
from ..core.slicing import distribute_deadlines
from ..errors import ExperimentError, ReproError
from ..rng import derive_seed, make_rng
from ..sched.listsched import get_scheduler
from ..system.interconnect import ContentionBus
from ..workload.generator import generate_workload
from .spec import ExperimentSpec, TrialConfig, TrialOutcome

__all__ = ["run_trial", "run_cell", "run_experiment", "CellResult", "ExperimentResult"]


def run_trial(config: TrialConfig, seed: int) -> TrialOutcome:
    """Run one generate→slice→schedule trial."""
    rng = make_rng(seed)
    workload = generate_workload(config.workload, rng)
    graph, platform = workload.graph, workload.platform

    estimator = get_estimator(config.estimator)
    fixed = None
    if config.locality == "strict":
        # Conventional regime: a clustering pre-assignment makes the
        # execution times exact and pins every task's processor.
        from ..assign import cluster_assignment, exact_estimates

        fixed = cluster_assignment(graph, platform)
        estimates = exact_estimates(graph, platform, fixed)
    else:
        estimates = estimate_map(graph, estimator, platform)
    metric = get_metric(config.metric, config.adaptive)

    assignment = distribute_deadlines(
        graph,
        platform,
        metric,
        estimator=estimator,
        estimates=estimates,
        validate=False,  # generator output is valid by construction
    )

    comm = (
        ContentionBus(config.workload.bus_delay_per_item)
        if config.contention_bus
        else None
    )
    if fixed is not None:
        from ..assign import FixedAssignmentEdfScheduler

        scheduler = FixedAssignmentEdfScheduler(
            fixed, continue_on_miss=config.measure_lateness
        )
    else:
        scheduler = get_scheduler(
            config.scheduler, continue_on_miss=config.measure_lateness
        )
    schedule = scheduler.schedule(graph, platform, assignment, comm=comm)

    if config.measure_lateness or schedule.feasible:
        max_lateness = schedule.max_lateness()
    else:
        max_lateness = float("nan")  # fail-fast schedules are partial
    return TrialOutcome(
        success=schedule.feasible,
        degenerate=assignment.degenerate,
        n_tasks=graph.n_tasks,
        min_laxity=assignment.min_laxity(estimates),
        makespan=schedule.makespan,
        max_lateness=max_lateness,
        failed_task=schedule.failed_task,
    )


@dataclass
class CellResult:
    """Aggregated outcomes of all trials of one (x, series) cell.

    ``mean_max_lateness`` averages the maximum lateness over the trials
    where it was measured (always, under ``measure_lateness``; only the
    feasible trials otherwise); ``lateness_trials`` counts them.
    """

    estimate: BinomialEstimate
    degenerate: int = 0
    mean_min_laxity: float = float("nan")
    mean_max_lateness: float = float("nan")
    lateness_trials: int = 0

    @property
    def ratio(self) -> float:
        return self.estimate.ratio

    @property
    def trials(self) -> int:
        return self.estimate.trials

    def merged(self, other: "CellResult") -> "CellResult":
        n = self.trials + other.trials
        if n == 0:
            lax = float("nan")
        else:
            lax = (
                _nan_zero(self.mean_min_laxity) * self.trials
                + _nan_zero(other.mean_min_laxity) * other.trials
            ) / n
        ln = self.lateness_trials + other.lateness_trials
        if ln == 0:
            late = float("nan")
        else:
            late = (
                _nan_zero(self.mean_max_lateness) * self.lateness_trials
                + _nan_zero(other.mean_max_lateness) * other.lateness_trials
            ) / ln
        return CellResult(
            estimate=self.estimate.merged(other.estimate),
            degenerate=self.degenerate + other.degenerate,
            mean_min_laxity=lax,
            mean_max_lateness=late,
            lateness_trials=ln,
        )


def _nan_zero(v: float) -> float:
    return 0.0 if v != v else v


def run_cell(config: TrialConfig, seeds: Sequence[int]) -> CellResult:
    """Run a block of trials of one cell serially (worker unit)."""
    successes = 0
    degenerate = 0
    laxities: list[float] = []
    latenesses: list[float] = []
    for seed in seeds:
        outcome = run_trial(config, seed)
        successes += int(outcome.success)
        degenerate += int(outcome.degenerate)
        laxities.append(outcome.min_laxity)
        if outcome.max_lateness == outcome.max_lateness:  # not NaN
            latenesses.append(outcome.max_lateness)
    mean_lax = sum(laxities) / len(laxities) if laxities else float("nan")
    mean_late = (
        sum(latenesses) / len(latenesses) if latenesses else float("nan")
    )
    return CellResult(
        estimate=BinomialEstimate(successes, len(seeds)),
        degenerate=degenerate,
        mean_min_laxity=mean_lax,
        mean_max_lateness=mean_late,
        lateness_trials=len(latenesses),
    )


@dataclass
class ExperimentResult:
    """All cells of one experiment, plus provenance."""

    name: str
    title: str
    x_label: str
    x_values: list[Any]
    series: list[str]
    cells: dict[tuple[int, int], CellResult] = field(default_factory=dict)
    trials_per_cell: int = 0
    seed: int = 0
    elapsed_seconds: float = 0.0
    paper_reference: str = ""

    def cell(self, x_index: int, series_label: str) -> CellResult:
        try:
            si = self.series.index(series_label)
            return self.cells[(x_index, si)]
        except (ValueError, KeyError):
            raise ExperimentError(
                f"no cell for x_index={x_index}, series={series_label!r}"
            ) from None

    def ratios(self, series_label: str) -> list[float]:
        """Success-ratio curve of one series over the x sweep."""
        return [
            self.cell(xi, series_label).ratio
            for xi in range(len(self.x_values))
        ]

    def latenesses(self, series_label: str) -> list[float]:
        """Mean maximum-lateness curve (§4.2 secondary measure)."""
        return [
            self.cell(xi, series_label).mean_max_lateness
            for xi in range(len(self.x_values))
        ]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "format": "repro.experiment-result/1",
            "name": self.name,
            "title": self.title,
            "x_label": self.x_label,
            "x_values": list(self.x_values),
            "series": list(self.series),
            "trials_per_cell": self.trials_per_cell,
            "seed": self.seed,
            "elapsed_seconds": self.elapsed_seconds,
            "paper_reference": self.paper_reference,
            "cells": [
                {
                    "x_index": xi,
                    "series_index": si,
                    "successes": cell.estimate.successes,
                    "trials": cell.estimate.trials,
                    "ratio": cell.ratio,
                    "interval": list(cell.estimate.interval),
                    "degenerate": cell.degenerate,
                    "mean_min_laxity": cell.mean_min_laxity,
                    "mean_max_lateness": cell.mean_max_lateness,
                    "lateness_trials": cell.lateness_trials,
                }
                for (xi, si), cell in sorted(self.cells.items())
            ],
        }


def _cell_seeds(root_seed: int, x_index: int, trials: int) -> list[int]:
    """Deterministic per-trial seeds for one sweep point.

    Seeds depend on the x index and trial index but *not* on the
    series: every series at a sweep point is evaluated on the same
    random workloads, mirroring the paper's design (one fixed set of
    1024 task graphs judged by every metric) and giving the comparisons
    a paired structure.  Series only change the metric/estimator/bus
    model, never the generation, so sharing seeds is always sound.
    """
    return [derive_seed(root_seed, x_index, t) for t in range(trials)]


def run_experiment(
    spec: ExperimentSpec,
    *,
    trials: int = 1024,
    seed: int = 2026,
    jobs: int | None = None,
    chunk_size: int = 32,
) -> ExperimentResult:
    """Run every cell of *spec* with *trials* trials each.

    ``jobs`` selects the number of worker processes (default: CPU
    count); ``jobs <= 1`` runs serially in-process, which is also the
    mode the test suite uses.  Results are invariant to ``jobs`` and
    ``chunk_size``.
    """
    if trials < 1:
        raise ExperimentError("trials must be at least 1")
    if jobs is not None and jobs < 1:
        # Fail here with a domain error instead of letting
        # ProcessPoolExecutor raise an opaque ValueError later.
        raise ExperimentError(
            f"jobs must be at least 1, got {jobs} (omit it for CPU count)"
        )
    start = time.perf_counter()
    result = ExperimentResult(
        name=spec.name,
        title=spec.title,
        x_label=spec.x_label,
        x_values=list(spec.x_values),
        series=list(spec.series),
        trials_per_cell=trials,
        seed=seed,
        paper_reference=spec.paper_reference,
    )

    # Build the work units: (cell key, config, seed chunk).
    units: list[tuple[tuple[int, int], TrialConfig, list[int]]] = []
    for xi, _x, si, _label, config in spec.cells():
        seeds = _cell_seeds(seed, xi, trials)
        for lo in range(0, trials, chunk_size):
            units.append(((xi, si), config, seeds[lo : lo + chunk_size]))

    if jobs is None:
        jobs = os.cpu_count() or 1
    partials: list[tuple[tuple[int, int], CellResult]] = []
    if jobs <= 1 or len(units) == 1:
        for key, config, seeds in units:
            partials.append((key, run_cell(config, seeds)))
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                (key, pool.submit(run_cell, config, seeds))
                for key, config, seeds in units
            ]
            for key, fut in futures:
                try:
                    partials.append((key, fut.result()))
                except ReproError:
                    raise
                except Exception as exc:  # surface worker crashes clearly
                    raise ExperimentError(
                        f"worker failed on cell {key}: {exc}"
                    ) from exc

    for key, cell in partials:
        if key in result.cells:
            result.cells[key] = result.cells[key].merged(cell)
        else:
            result.cells[key] = cell

    result.elapsed_seconds = time.perf_counter() - start
    return result
