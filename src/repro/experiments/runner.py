"""Experiment execution: paired trials, cells, and multiprocessing fan-out.

Determinism contract: the outcome of a trial depends only on
``(root_seed, x_index, trial_index)`` — never on worker
count, scheduling order, or engine choice.  Workers receive coarse
(configs, seed-block) pairs and return aggregate counts, so
inter-process traffic stays tiny (per the hpc-parallel guidance:
parallelize coarse-grained units, keep the serial inner loop simple and
measured).

Two engines share the same trial primitive:

* ``"paired"`` (default) — a work unit is ``(x_index, seed_chunk)``
  covering *every* series of the sweep point.  Each seed's workload is
  generated once, its derived state (topological order, adjacency,
  transitive closure, per-estimator WCET maps) is computed once on a
  :class:`~repro.experiments.context.TrialContext`, and every series is
  judged on that same workload — the paper's paired design (one fixed
  set of 1024 task graphs judged by every metric), and a 2–4× wall-clock
  win on multi-series sweeps.
* ``"percell"`` — the historical engine: one work unit per
  ``(x_index, series)`` cell, regenerating the workload per series.
  Kept for equivalence testing and benchmarking; both engines produce
  bit-identical cells because trial seeds never depend on the series.

Both engines can consult a persistent content-addressed result store
(``run_experiment(cache=...)``, see :mod:`repro.store`): each
``(cell, seed-chunk)`` partial is keyed by a digest of the trial config
and its seed block, so warm re-runs skip completed chunks entirely, an
interrupted sweep resumes where it stopped, and a delta sweep that adds
a series to an existing grid recomputes only the new series' judgments
— all while producing the same ``ExperimentResult``, bit for bit, as an
uncached run at any ``jobs``/``engine`` setting (cached partials are
the exact aggregates the engine would have produced, and merge order is
preserved).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from ..analysis.stats import BinomialEstimate
from ..core.metrics import get_metric
from ..core.slicing import distribute_deadlines
from ..errors import ExperimentError, ReproError
from ..rng import derive_seed
from ..sched.listsched import get_scheduler
from ..store import StoreStats, TrialStore, store_key
from ..system.interconnect import ContentionBus
from ..kernel.trial import (
    kernel_enabled,
    kernel_supported,
    run_trial_kernel,
    run_trial_vec,
)
from ..kernel.vec import (
    VEC_MIN_LANES,
    batch_supported,
    vec_available,
    vec_enabled,
    vec_mode,
)
from .context import TrialContext
from .spec import ExperimentSpec, TrialConfig, TrialOutcome

__all__ = [
    "run_trial",
    "run_cell",
    "run_paired_cells",
    "run_experiment",
    "cell_chunk_key",
    "CellResult",
    "ExperimentResult",
    "ENGINE_NAMES",
]

#: Execution engines accepted by :func:`run_experiment`.
#: ``"paired-ref"`` is the paired engine pinned to the string-keyed
#: reference trial pipeline (the kernel's oracle); ``"paired"`` and
#: ``"percell"`` use the compiled kernel whenever it is enabled and the
#: config is inside its envelope — results are bit-identical either way.
ENGINE_NAMES: tuple[str, ...] = ("paired", "paired-ref", "percell")


def run_trial(
    config: TrialConfig,
    seed: int,
    context: TrialContext | None = None,
    use_kernel: bool | None = None,
    use_vec: bool | None = None,
) -> TrialOutcome:
    """Run one generate→slice→schedule trial.

    ``context`` optionally supplies the trial's generated workload and
    lazily cached derived state; the paired engine passes one context to
    every series of a trial.  When omitted, the workload is generated
    here from *seed* — the outcome is identical either way, because the
    context only memoizes pure functions of the workload.

    ``use_kernel`` pins the compiled fast path on (``True``) or off
    (``False``); the default ``None`` defers to the ``REPRO_KERNEL``
    environment switch.  ``use_vec`` likewise pins the vectorized tier
    (default: the ``REPRO_VEC`` switch — in its default ``auto`` mode
    this *single-trial* path stays scalar, because the vec win only
    materializes across a seed batch; ``REPRO_VEC=1`` forces it on);
    it engages only when NumPy is importable and silently falls through
    to the compiled kernel otherwise.  Pinning ``use_kernel=False``
    (the ``paired-ref`` oracle) disables the vectorized tier too — the
    reference pipeline runs alone.  Every tier is bit-identical inside
    its envelope, so the outcome never depends on these switches.
    """
    if context is None:
        context = TrialContext.from_seed(config.workload, seed)
    use_k = use_kernel if use_kernel is not None else kernel_enabled()
    use_v = use_vec if use_vec is not None else vec_mode() == "on"
    if use_kernel is False:
        use_v = False
    if use_v and vec_available() and kernel_supported(config):
        return run_trial_vec(config, context)
    if use_k and kernel_supported(config):
        return run_trial_kernel(config, context)
    graph, platform = context.graph, context.platform

    fixed = None
    if config.locality == "strict":
        # Conventional regime: a clustering pre-assignment makes the
        # execution times exact and pins every task's processor.
        fixed, estimates = context.strict_assignment()
    else:
        estimates = context.estimates_for(config.estimator)
    metric = get_metric(config.metric, config.adaptive)

    # ``use_k`` pins the slicing/scheduling sub-dispatch too: with the
    # kernel off (the ``paired-ref`` oracle leg, ``use_kernel=False``)
    # every layer must run the string-keyed reference code, so neither
    # helper may fall back to its own environment check.
    assignment = distribute_deadlines(
        graph,
        platform,
        metric,
        estimator=config.estimator,
        estimates=estimates,
        validate=False,  # generator output is valid by construction
        closure=context.closure if metric.uses_closure else None,
        topo_order=context.topo_order,
        successors=context.successors,
        predecessors=context.predecessors,
        initial_pins=context.initial_pins,
        compiled=context.compiled if use_k else None,
        kernel=use_k,
    )

    comm = (
        ContentionBus(config.workload.bus_delay_per_item)
        if config.contention_bus
        else None
    )
    if fixed is not None:
        from ..assign import FixedAssignmentEdfScheduler

        scheduler = FixedAssignmentEdfScheduler(
            fixed, continue_on_miss=config.measure_lateness
        )
    else:
        scheduler = get_scheduler(
            config.scheduler, continue_on_miss=config.measure_lateness
        )
    schedule = scheduler.schedule(
        graph,
        platform,
        assignment,
        comm=comm,
        predecessors=context.predecessors,
        successors=context.successors,
        compiled=context.compiled if use_k else None,
    )

    if config.measure_lateness or schedule.feasible:
        max_lateness = schedule.max_lateness()
    else:
        max_lateness = float("nan")  # fail-fast schedules are partial
    return TrialOutcome(
        success=schedule.feasible,
        degenerate=assignment.degenerate,
        n_tasks=graph.n_tasks,
        min_laxity=assignment.min_laxity(estimates),
        makespan=schedule.makespan,
        max_lateness=max_lateness,
        failed_task=schedule.failed_task,
    )


@dataclass
class CellResult:
    """Aggregated outcomes of all trials of one (x, series) cell.

    ``mean_max_lateness`` averages the maximum lateness over the trials
    where it was measured (always, under ``measure_lateness``; only the
    feasible trials otherwise); ``lateness_trials`` counts them.
    """

    estimate: BinomialEstimate
    degenerate: int = 0
    mean_min_laxity: float = float("nan")
    mean_max_lateness: float = float("nan")
    lateness_trials: int = 0

    @property
    def ratio(self) -> float:
        return self.estimate.ratio

    @property
    def trials(self) -> int:
        return self.estimate.trials

    def merged(self, other: "CellResult") -> "CellResult":
        n = self.trials + other.trials
        if n == 0:
            lax = float("nan")
        else:
            lax = (
                _nan_zero(self.mean_min_laxity) * self.trials
                + _nan_zero(other.mean_min_laxity) * other.trials
            ) / n
        ln = self.lateness_trials + other.lateness_trials
        if ln == 0:
            late = float("nan")
        else:
            late = (
                _nan_zero(self.mean_max_lateness) * self.lateness_trials
                + _nan_zero(other.mean_max_lateness) * other.lateness_trials
            ) / ln
        return CellResult(
            estimate=self.estimate.merged(other.estimate),
            degenerate=self.degenerate + other.degenerate,
            mean_min_laxity=lax,
            mean_max_lateness=late,
            lateness_trials=ln,
        )

    def to_dict(self) -> dict[str, Any]:
        """The store record of this (partial) cell.

        Round-trips exactly: counts are integers, means go through
        JSON's ``repr``-based float encoding which is lossless for
        float64 (NaN included), so a cached partial merges to the same
        bits as a freshly computed one.
        """
        return {
            "successes": self.estimate.successes,
            "trials": self.estimate.trials,
            "degenerate": self.degenerate,
            "mean_min_laxity": self.mean_min_laxity,
            "mean_max_lateness": self.mean_max_lateness,
            "lateness_trials": self.lateness_trials,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "CellResult":
        """Inverse of :meth:`to_dict` (store records, result files)."""
        try:
            return cls(
                estimate=BinomialEstimate(
                    int(doc["successes"]), int(doc["trials"])
                ),
                degenerate=int(doc["degenerate"]),
                mean_min_laxity=float(doc["mean_min_laxity"]),
                mean_max_lateness=float(doc["mean_max_lateness"]),
                lateness_trials=int(doc["lateness_trials"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(f"malformed cell record: {exc}") from exc


def cell_chunk_key(config: TrialConfig, seeds: Sequence[int]) -> str:
    """Content address of one (cell, seed-chunk) partial result.

    Keyed by everything that determines the outcomes — the full trial
    config (workload params, metric/estimator/adaptive/bus/scheduler/
    locality knobs) and the exact seed block — plus, inside
    :func:`repro.store.store_key`, the store schema and the code salt.
    Deliberately *not* keyed: the root seed, x value/index and trials
    count (all already captured by the derived seeds), and
    ``jobs``/``engine`` (results are invariant to them).  Sweeps that
    overlap — a widened x axis, more trials per cell, a new series —
    therefore share every chunk they have in common.
    """
    return store_key(
        "cell-chunk", {"config": config.to_dict(), "seeds": list(seeds)}
    )


def _nan_zero(v: float) -> float:
    return 0.0 if v != v else v


class _CellAccumulator:
    """Streaming aggregation of trial outcomes into one :class:`CellResult`.

    Shared by both engines so their per-chunk floating-point arithmetic
    is literally the same code (a prerequisite of the bit-identical
    equivalence contract).
    """

    __slots__ = ("successes", "degenerate", "laxities", "latenesses")

    def __init__(self) -> None:
        self.successes = 0
        self.degenerate = 0
        self.laxities: list[float] = []
        self.latenesses: list[float] = []

    def add(self, outcome: TrialOutcome) -> None:
        self.successes += int(outcome.success)
        self.degenerate += int(outcome.degenerate)
        self.laxities.append(outcome.min_laxity)
        if outcome.max_lateness == outcome.max_lateness:  # not NaN
            self.latenesses.append(outcome.max_lateness)

    def result(self, trials: int) -> CellResult:
        laxities, latenesses = self.laxities, self.latenesses
        mean_lax = sum(laxities) / len(laxities) if laxities else float("nan")
        mean_late = (
            sum(latenesses) / len(latenesses) if latenesses else float("nan")
        )
        return CellResult(
            estimate=BinomialEstimate(self.successes, trials),
            degenerate=self.degenerate,
            mean_min_laxity=mean_lax,
            mean_max_lateness=mean_late,
            lateness_trials=len(latenesses),
        )


def run_cell(
    config: TrialConfig,
    seeds: Sequence[int],
    use_kernel: bool | None = None,
    use_vec: bool | None = None,
) -> CellResult:
    """Run a block of trials of one cell serially (per-cell worker unit)."""
    acc = _CellAccumulator()
    for seed in seeds:
        acc.add(run_trial(config, seed, use_kernel=use_kernel, use_vec=use_vec))
    return acc.result(len(seeds))


def run_paired_cells(
    cells: Sequence[tuple[int, TrialConfig]],
    seeds: Sequence[int],
    use_kernel: bool | None = None,
    use_vec: bool | None = None,
) -> list[tuple[int, CellResult]]:
    """Run a block of paired trials covering every series of one sweep point.

    *cells* lists ``(series_index, config)`` for one ``x_index``; for
    each seed the workload is generated **once** per distinct
    :class:`~repro.workload.params.WorkloadParams` (normally exactly
    once — series vary the metric/estimator/bus model, not the
    generator) and every series is judged on it through a shared
    :class:`TrialContext`.  Returns one partial :class:`CellResult` per
    series, aggregated over this seed block.

    With the vectorized tier active (NumPy present; engaged
    automatically for batches of at least
    :data:`~repro.kernel.vec.VEC_MIN_LANES` seeds, or at any width ≥ 2
    when pinned via ``use_vec=True``/``REPRO_VEC=1``) and a single
    shared workload family, the whole block runs through the seed-batch
    driver: one weight-stage array pass and one lockstep EDF pass cover
    every seed lane of each series, and the per-series accumulators are
    fed the identical outcomes in the identical seed order — the
    aggregates match the sequential loop bit for bit.
    """
    pinned = use_vec is True or vec_mode() == "on"
    use_v = use_vec if use_vec is not None else vec_enabled()
    if use_kernel is False:
        use_v = False
    min_lanes = 2 if pinned else VEC_MIN_LANES
    if (
        use_v
        and vec_available()
        and len(seeds) >= min_lanes
        and len({config.workload for _si, config in cells}) == 1
        and any(batch_supported(config) for _si, config in cells)
    ):
        from ..kernel.vec import paired_outcomes

        contexts = TrialContext.from_seeds(cells[0][1].workload, seeds)
        outcomes = paired_outcomes(cells, seeds, contexts, use_kernel)
        accs = {si: _CellAccumulator() for si, _ in cells}
        for sp in range(len(seeds)):
            for si, _config in cells:
                accs[si].add(outcomes[(si, sp)])
        return [(si, accs[si].result(len(seeds))) for si, _ in cells]

    accs = {si: _CellAccumulator() for si, _ in cells}
    for seed in seeds:
        contexts_by_wl: dict[Any, TrialContext] = {}
        for si, config in cells:
            context = contexts_by_wl.get(config.workload)
            if context is None:
                context = TrialContext.from_seed(config.workload, seed)
                contexts_by_wl[config.workload] = context
            accs[si].add(
                run_trial(config, seed, context, use_kernel, use_vec)
            )
    return [(si, accs[si].result(len(seeds))) for si, _ in cells]


@dataclass
class ExperimentResult:
    """All cells of one experiment, plus provenance."""

    name: str
    title: str
    x_label: str
    x_values: list[Any]
    series: list[str]
    cells: dict[tuple[int, int], CellResult] = field(default_factory=dict)
    trials_per_cell: int = 0
    seed: int = 0
    elapsed_seconds: float = 0.0
    paper_reference: str = ""
    #: Store activity of this run (hit/miss/append deltas) when a cache
    #: was used, else ``None``.  Excluded from :meth:`to_dict` so cached
    #: and uncached runs serialize identically.
    cache_stats: StoreStats | None = None

    def cell(self, x_index: int, series_label: str) -> CellResult:
        try:
            si = self.series.index(series_label)
            return self.cells[(x_index, si)]
        except (ValueError, KeyError):
            raise ExperimentError(
                f"no cell for x_index={x_index}, series={series_label!r}"
            ) from None

    def ratios(self, series_label: str) -> list[float]:
        """Success-ratio curve of one series over the x sweep."""
        return [
            self.cell(xi, series_label).ratio
            for xi in range(len(self.x_values))
        ]

    def latenesses(self, series_label: str) -> list[float]:
        """Mean maximum-lateness curve (§4.2 secondary measure)."""
        return [
            self.cell(xi, series_label).mean_max_lateness
            for xi in range(len(self.x_values))
        ]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "format": "repro.experiment-result/1",
            "name": self.name,
            "title": self.title,
            "x_label": self.x_label,
            "x_values": list(self.x_values),
            "series": list(self.series),
            "trials_per_cell": self.trials_per_cell,
            "seed": self.seed,
            "elapsed_seconds": self.elapsed_seconds,
            "paper_reference": self.paper_reference,
            "cells": [
                {
                    "x_index": xi,
                    "series_index": si,
                    "successes": cell.estimate.successes,
                    "trials": cell.estimate.trials,
                    "ratio": cell.ratio,
                    "interval": list(cell.estimate.interval),
                    "degenerate": cell.degenerate,
                    "mean_min_laxity": cell.mean_min_laxity,
                    "mean_max_lateness": cell.mean_max_lateness,
                    "lateness_trials": cell.lateness_trials,
                }
                for (xi, si), cell in sorted(self.cells.items())
            ],
        }


def _cell_seeds(root_seed: int, x_index: int, trials: int) -> list[int]:
    """Deterministic per-trial seeds for one sweep point.

    Seeds depend on the x index and trial index but *not* on the
    series: every series at a sweep point is evaluated on the same
    random workloads, mirroring the paper's design (one fixed set of
    1024 task graphs judged by every metric) and giving the comparisons
    a paired structure.  Series only change the metric/estimator/bus
    model, never the generation, so sharing seeds is always sound.
    """
    return [derive_seed(root_seed, x_index, t) for t in range(trials)]


def run_experiment(
    spec: ExperimentSpec,
    *,
    trials: int = 1024,
    seed: int = 2026,
    jobs: int | None = None,
    chunk_size: int = 32,
    engine: str = "paired",
    cache: "TrialStore | str | Path | None" = None,
) -> ExperimentResult:
    """Run every cell of *spec* with *trials* trials each.

    ``jobs`` selects the number of worker processes (default: CPU
    count, clamped to the number of dispatched work units so small
    sweeps never spawn idle workers); ``jobs <= 1`` runs serially
    in-process, which is also the mode the test suite uses.  ``engine``
    picks the work-unit shape: ``"paired"`` (default) fans out
    ``(x_index, seed_chunk)`` units that evaluate every series on one
    generated workload per seed; ``"percell"`` is the historical
    one-unit-per-(x, series) engine.  Results are invariant to ``jobs``
    and ``engine`` — cell for cell, bit for bit — because trial seeds
    depend only on ``(seed, x_index, trial_index)`` and both engines
    chunk the seed sequence identically.  ``chunk_size`` changes only
    how the partial mean-laxity/lateness sums are grouped before
    merging, which can shift those two means by floating-point rounding
    (success counts stay bit-identical).

    ``cache`` — a :class:`~repro.store.TrialStore` or a directory path
    — consults the persistent result store before computing: completed
    ``(cell, seed-chunk)`` partials (see :func:`cell_chunk_key`) are
    restored instead of re-judged, fresh partials are appended for the
    next run.  The returned result is bit-identical to an uncached run;
    the run's store activity lands in ``result.cache_stats``.  Because
    keys cover the config and seed block only, a warm store also
    accelerates *overlapping* sweeps: added series, widened x axes, or
    raised trial counts recompute just the missing chunks.
    """
    if trials < 1:
        raise ExperimentError("trials must be at least 1")
    if jobs is not None and jobs < 1:
        # Fail here with a domain error instead of letting
        # ProcessPoolExecutor raise an opaque ValueError later.
        raise ExperimentError(
            f"jobs must be at least 1, got {jobs} (omit it for CPU count)"
        )
    if chunk_size < 1:
        raise ExperimentError(
            f"chunk_size must be at least 1, got {chunk_size}"
        )
    if engine not in ENGINE_NAMES:
        raise ExperimentError(
            f"unknown engine {engine!r}; choose from {ENGINE_NAMES}"
        )
    store, owned = _resolve_store(cache)
    start = time.perf_counter()
    result = ExperimentResult(
        name=spec.name,
        title=spec.title,
        x_label=spec.x_label,
        x_values=list(spec.x_values),
        series=list(spec.series),
        trials_per_cell=trials,
        seed=seed,
        paper_reference=spec.paper_reference,
    )

    stats_before = store.stats() if store is not None else None
    try:
        if engine == "percell":
            partials = _run_percell_units(
                spec, trials, seed, jobs, chunk_size, store
            )
        else:
            # "paired" defers to the REPRO_KERNEL switch per trial;
            # "paired-ref" pins the reference pipeline (kernel oracle).
            partials = _run_paired_units(
                spec, trials, seed, jobs, chunk_size, store,
                use_kernel=False if engine == "paired-ref" else None,
            )
    finally:
        if store is not None:
            result.cache_stats = store.stats().since(stats_before)
            if owned:
                store.close()

    for key, cell in partials:
        if key in result.cells:
            result.cells[key] = result.cells[key].merged(cell)
        else:
            result.cells[key] = cell

    result.elapsed_seconds = time.perf_counter() - start
    return result


def _resolve_store(
    cache: "TrialStore | str | Path | None",
) -> tuple[TrialStore | None, bool]:
    """Normalize the ``cache`` argument; the bool means "close after"."""
    if cache is None:
        return None, False
    if isinstance(cache, (str, Path)):
        return TrialStore(cache), True
    return cache, False


def _resolve_jobs(jobs: int | None, n_units: int | None = None) -> int:
    """Worker count: explicit ``jobs`` or CPU count, clamped to the work.

    The clamp matters for small sweeps and warm caches: spawning more
    processes than there are dispatched units only pays fork/import
    cost for workers that would exit without ever receiving work.
    """
    resolved = jobs if jobs is not None else (os.cpu_count() or 1)
    if n_units is not None:
        resolved = min(resolved, max(1, n_units))
    return resolved


def _collect(futures, what: str = "cell"):
    """Drain (key, future) pairs, surfacing worker crashes clearly."""
    out = []
    for key, fut in futures:
        try:
            out.append((key, fut.result()))
        except ReproError:
            raise
        except Exception as exc:
            raise ExperimentError(
                f"worker failed on {what} {key}: {exc}"
            ) from exc
    return out


def _run_pool(max_workers: int, tasks, what: str):
    """Run ``(key, args)`` tasks on a process pool, interrupt-safely.

    ``tasks`` yields ``(key, callable, args)``; returns ``_collect``'s
    ``(key, result)`` list.  The happy path is a plain submit/drain.
    On *any* teardown — KeyboardInterrupt first among them — queued
    futures are cancelled and the worker processes terminated instead
    of the default ``shutdown(wait=True)``, which would keep computing
    every queued unit after Ctrl-C and strand the user.  Discarding
    running work is safe: results only reach the caller (and any
    result store) after a future completes in-parent.
    """
    pool = ProcessPoolExecutor(max_workers=max_workers)
    try:
        futures = [(key, pool.submit(fn, *args)) for key, fn, args in tasks]
        out = _collect(futures, what=what)
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        # shutdown() only stops *queued* work; in-flight chunks would
        # still run to completion (and block interpreter exit joining
        # them).  Terminate the workers so Ctrl-C means now.
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.terminate()
            except (OSError, AttributeError):  # already reaped
                pass
        raise
    pool.shutdown(wait=True)
    return out


def _run_percell_units(
    spec: ExperimentSpec,
    trials: int,
    seed: int,
    jobs: int | None,
    chunk_size: int,
    store: TrialStore | None,
) -> list[tuple[tuple[int, int], CellResult]]:
    """The historical engine: one work unit per (cell, seed chunk)."""
    units: list[tuple[tuple[int, int], TrialConfig, list[int]]] = []
    for xi, _x, si, _label, config in spec.cells():
        seeds = _cell_seeds(seed, xi, trials)
        for lo in range(0, trials, chunk_size):
            units.append(((xi, si), config, seeds[lo : lo + chunk_size]))

    # Partition units into store hits (restored) and pending work.
    results: list[CellResult | None] = [None] * len(units)
    store_keys: dict[int, str] = {}
    pending: list[int] = []
    for i, (_key, config, seeds) in enumerate(units):
        if store is not None:
            skey = cell_chunk_key(config, seeds)
            cached = store.get(skey)
            if cached is not None:
                results[i] = CellResult.from_dict(cached)
                continue
            store_keys[i] = skey
        pending.append(i)

    if pending:
        # A single pending unit always runs inline: forking a pool to
        # judge one chunk costs more than the chunk (the warm-cache
        # tail of a resumed sweep hits this constantly).
        if len(pending) == 1 or _resolve_jobs(jobs, len(pending)) <= 1:
            for i in pending:
                _key, config, seeds = units[i]
                results[i] = run_cell(config, seeds)
        else:
            fresh = _run_pool(
                _resolve_jobs(jobs, len(pending)),
                ((i, run_cell, (units[i][1], units[i][2])) for i in pending),
                what="cell",
            )
            for i, cell in fresh:
                results[i] = cell
        if store is not None:
            store.put_many(
                (store_keys[i], results[i].to_dict()) for i in pending
            )

    # Emit in unit order — the exact merge order of the uncached run.
    return [(units[i][0], results[i]) for i in range(len(units))]


def _run_paired_units(
    spec: ExperimentSpec,
    trials: int,
    seed: int,
    jobs: int | None,
    chunk_size: int,
    store: TrialStore | None,
    use_kernel: bool | None = None,
) -> list[tuple[tuple[int, int], CellResult]]:
    """The paired engine: one work unit per (x_index, seed chunk).

    Each unit returns one partial per series; partials are flattened
    back to ``((x_index, series_index), CellResult)`` pairs in chunk
    order per cell — the same merge order as the per-cell engine, so
    the sequential weighted-mean merges produce identical floats.

    With a store, a unit dispatches only its *missing* series (the
    delta-sweep path): the shared paired workloads are generated once
    per seed either way, but already-stored series skip judgment
    entirely, and a fully stored unit never reaches a worker.
    """
    units: list[tuple[int, list[tuple[int, TrialConfig]], list[int]]] = []
    for xi, _x, group in spec.cells_by_x():
        cells = [(si, config) for si, _label, config in group]
        seeds = _cell_seeds(seed, xi, trials)
        for lo in range(0, trials, chunk_size):
            units.append((xi, cells, seeds[lo : lo + chunk_size]))

    unit_results: list[dict[int, CellResult]] = [{} for _ in units]
    unit_keys: list[dict[int, str]] = [{} for _ in units]
    dispatch: list[tuple[int, list[tuple[int, TrialConfig]], list[int]]] = []
    for u, (_xi, cells, seeds) in enumerate(units):
        missing = cells
        if store is not None:
            missing = []
            for si, config in cells:
                skey = cell_chunk_key(config, seeds)
                cached = store.get(skey)
                if cached is not None:
                    unit_results[u][si] = CellResult.from_dict(cached)
                else:
                    unit_keys[u][si] = skey
                    missing.append((si, config))
        if missing:
            dispatch.append((u, missing, seeds))

    if dispatch:
        # A single dispatched unit always runs inline in the parent
        # process — no pool spin-up for the warm-cache tail where one
        # chunk is missing (fork/import costs more than the kernel
        # spends judging it).
        if len(dispatch) == 1 or _resolve_jobs(jobs, len(dispatch)) <= 1:
            batches = [
                (u, run_paired_cells(cells, seeds, use_kernel))
                for u, cells, seeds in dispatch
            ]
        else:
            batches = _run_pool(
                _resolve_jobs(jobs, len(dispatch)),
                (
                    (u, run_paired_cells, (cells, seeds, use_kernel))
                    for u, cells, seeds in dispatch
                ),
                what="sweep-point unit",
            )
        records: list[tuple[str, dict[str, Any]]] = []
        for u, partials in batches:
            for si, cell in partials:
                unit_results[u][si] = cell
                if store is not None:
                    records.append((unit_keys[u][si], cell.to_dict()))
        if store is not None:
            store.put_many(records)

    # Flatten per unit in series order — identical to the uncached walk.
    return [
        ((units[u][0], si), unit_results[u][si])
        for u in range(len(units))
        for si, _config in units[u][1]
    ]
