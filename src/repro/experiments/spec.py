"""Experiment specifications (the GAST-like evaluation driver's inputs).

A *trial* is one randomly generated workload pushed through the full
pipeline: generate → estimate WCETs → distribute deadlines (slicing
with one metric) → schedule (EDF baseline) → record success.  A
:class:`TrialConfig` pins every knob of one trial and is picklable, so
trials can fan out across worker processes.

An *experiment* (one figure of §6) sweeps an x variable and plots one
curve per series; :class:`ExperimentSpec` holds the sweep and a
config-factory mapping ``(x, series)`` to a :class:`TrialConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..core.metrics import AdaptiveParams
from ..errors import ExperimentError
from ..workload.params import WorkloadParams

__all__ = ["TrialConfig", "TrialOutcome", "ExperimentSpec"]


@dataclass(frozen=True)
class TrialConfig:
    """Everything needed to run one reproducible trial (picklable)."""

    workload: WorkloadParams = field(default_factory=WorkloadParams)
    metric: str = "ADAPT-L"
    estimator: str = "WCET-AVG"
    adaptive: AdaptiveParams = field(default_factory=AdaptiveParams)
    contention_bus: bool = False
    scheduler: str = "EDF-LIST"
    #: Complete the schedule past deadline misses so the maximum
    #: lateness (§4.2's secondary quality measure, the criterion of
    #: reference [12]) is defined for every trial, feasible or not.
    measure_lateness: bool = False
    #: Locality regime.  ``"relaxed"`` (the paper's setting): assignment
    #: unknown, WCETs estimated per `estimator`, free placement.
    #: ``"strict"``: a clustering pre-assignment fixes every task's
    #: processor, estimates collapse to exact execution times, and the
    #: scheduler honours the assignment (cf. [1], [5]).
    locality: str = "relaxed"

    def __post_init__(self) -> None:
        if self.locality not in ("relaxed", "strict"):
            raise ExperimentError(
                f"unknown locality regime {self.locality!r}; "
                "choose 'relaxed' or 'strict'"
            )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"m={self.workload.m} metric={self.metric} "
            f"est={self.estimator} OLR={self.workload.olr:g} "
            f"ETD={self.workload.etd:.0%} CCR={self.workload.ccr:g}"
        )

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON document of every outcome-determining knob.

        This is the config half of the persistent result store's key
        (see :mod:`repro.store`): two configs produce the same trial
        outcomes for the same seeds iff these documents are equal, so
        every field that can change an outcome must appear here.
        """
        return {
            "workload": self.workload.to_dict(),
            "metric": self.metric,
            "estimator": self.estimator,
            "adaptive": {
                "k_g": self.adaptive.k_g,
                "k_l": self.adaptive.k_l,
                "c_thres": self.adaptive.c_thres,
                "c_thres_factor": self.adaptive.c_thres_factor,
            },
            "contention_bus": self.contention_bus,
            "scheduler": self.scheduler,
            "measure_lateness": self.measure_lateness,
            "locality": self.locality,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "TrialConfig":
        """Inverse of :meth:`to_dict`, an exact round-trip.

        The fabric's HTTP transport ships configs as these documents;
        a round-tripped config must produce byte-identical canonical
        JSON (and therefore the same store keys), which holds because
        JSON floats decode to the same float64 they encoded.
        """
        try:
            adaptive = doc["adaptive"]
            return cls(
                workload=WorkloadParams.from_dict(doc["workload"]),
                metric=doc["metric"],
                estimator=doc["estimator"],
                adaptive=AdaptiveParams(
                    k_g=adaptive["k_g"],
                    k_l=adaptive["k_l"],
                    c_thres=adaptive["c_thres"],
                    c_thres_factor=adaptive["c_thres_factor"],
                ),
                contention_bus=bool(doc["contention_bus"]),
                scheduler=doc["scheduler"],
                measure_lateness=bool(doc["measure_lateness"]),
                locality=doc["locality"],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(
                f"malformed trial-config document: {exc}"
            ) from exc


@dataclass(frozen=True)
class TrialOutcome:
    """Result of one trial."""

    success: bool
    degenerate: bool
    n_tasks: int
    min_laxity: float
    makespan: float
    max_lateness: float
    failed_task: str | None = None


@dataclass
class ExperimentSpec:
    """One figure: an x sweep with one curve per series.

    ``config_for(x, series_label)`` must return the
    :class:`TrialConfig` for that cell.  The factory runs in the parent
    process only (workers receive ready-made configs), so closures are
    fine.
    """

    name: str
    title: str
    x_label: str
    x_values: Sequence[Any]
    series: Sequence[str]
    config_for: Callable[[Any, str], TrialConfig]
    description: str = ""
    paper_reference: str = ""

    def __post_init__(self) -> None:
        if not self.x_values:
            raise ExperimentError(f"experiment {self.name!r}: empty x sweep")
        if not self.series:
            raise ExperimentError(f"experiment {self.name!r}: no series")
        if len(set(self.series)) != len(self.series):
            raise ExperimentError(
                f"experiment {self.name!r}: duplicate series labels"
            )

    def cells(self) -> list[tuple[int, Any, int, str, TrialConfig]]:
        """Enumerate ``(x_index, x, series_index, series, config)``."""
        out = []
        for xi, x in enumerate(self.x_values):
            for si, label in enumerate(self.series):
                out.append((xi, x, si, label, self.config_for(x, label)))
        return out

    def cells_by_x(
        self,
    ) -> list[tuple[int, Any, list[tuple[int, str, TrialConfig]]]]:
        """Enumerate ``(x_index, x, [(series_index, series, config), ...])``.

        The grouping the paired-trial engine fans out over: one work
        unit covers *every* series of a sweep point, so each random
        workload is generated once and judged by all series (the paper's
        paired design over one fixed set of task graphs).
        """
        out: list[tuple[int, Any, list[tuple[int, str, TrialConfig]]]] = []
        for xi, x in enumerate(self.x_values):
            group = [
                (si, label, self.config_for(x, label))
                for si, label in enumerate(self.series)
            ]
            out.append((xi, x, group))
        return out
