"""Robustness analysis across system configurations (the title claim).

The paper's headline property for ADAPT-L is not just that it wins at
one operating point, but that it is "extremely robust for various
system configurations".  This module turns that into a measurable
statement: evaluate every metric over a *grid* of configurations
(machine size × deadline tightness × execution-time spread × …), rank
the metrics within each configuration (paired workloads, so ranks are
meaningful), and report each metric's rank distribution and worst-case
regret.

Definitions, per configuration `c` and metric `M`:

* ``rank(M, c)`` — 1 + number of metrics with strictly higher success
  ratio at `c` (1 = best, ties share the better rank);
* ``regret(M, c)`` — ``best_ratio(c) − ratio(M, c)``.

A robust metric has rank ≈ 1 almost everywhere and small worst-case
regret.  Configurations where *every* metric saturates (or fails
completely) are excluded from ranking — nothing is being discriminated
there.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..analysis.tables import format_table
from ..errors import ExperimentError, ReproError
from ..rng import derive_seed
from .runner import CellResult, run_cell
from .spec import TrialConfig

__all__ = ["RobustnessResult", "run_robustness", "robustness_table"]


@dataclass
class RobustnessResult:
    """Rank statistics of each metric over a configuration grid."""

    metrics: list[str]
    configurations: list[Mapping[str, Any]]
    ratios: dict[tuple[int, str], CellResult] = field(default_factory=dict)
    trials_per_cell: int = 0
    seed: int = 0
    elapsed_seconds: float = 0.0
    #: Configurations that discriminated (not all-saturated/all-failed).
    informative: list[int] = field(default_factory=list)

    def ratio(self, config_index: int, metric: str) -> float:
        return self.ratios[(config_index, metric)].ratio

    def ranks(self, metric: str) -> list[int]:
        """This metric's rank in every informative configuration."""
        out = []
        for ci in self.informative:
            mine = self.ratio(ci, metric)
            better = sum(
                1 for m in self.metrics if self.ratio(ci, m) > mine + 1e-12
            )
            out.append(1 + better)
        return out

    def mean_rank(self, metric: str) -> float:
        ranks = self.ranks(metric)
        return sum(ranks) / len(ranks) if ranks else float("nan")

    def worst_rank(self, metric: str) -> int:
        ranks = self.ranks(metric)
        return max(ranks) if ranks else 0

    def first_place_share(self, metric: str) -> float:
        ranks = self.ranks(metric)
        if not ranks:
            return float("nan")
        return sum(1 for r in ranks if r == 1) / len(ranks)

    def max_regret(self, metric: str) -> float:
        worst = 0.0
        for ci in self.informative:
            best = max(self.ratio(ci, m) for m in self.metrics)
            worst = max(worst, best - self.ratio(ci, metric))
        return worst


def run_robustness(
    metrics: Sequence[str],
    configurations: Sequence[Mapping[str, Any]],
    config_builder: Callable[[Mapping[str, Any], str], TrialConfig],
    *,
    trials: int = 128,
    seed: int = 2026,
    jobs: int | None = None,
    chunk_size: int = 32,
    saturation: float = 0.98,
    floor: float = 0.02,
) -> RobustnessResult:
    """Evaluate *metrics* over *configurations* and rank them.

    ``config_builder(configuration, metric)`` must return the
    :class:`TrialConfig` for that cell.  Workload seeds are shared
    across metrics within a configuration (paired ranking).
    Configurations where every metric lands above *saturation* or below
    *floor* are excluded from the rank statistics.
    """
    if not metrics:
        raise ExperimentError("need at least one metric")
    if len(set(metrics)) != len(metrics):
        raise ExperimentError("duplicate metrics")
    if not configurations:
        raise ExperimentError("need at least one configuration")
    if trials < 1:
        raise ExperimentError("trials must be at least 1")
    start = time.perf_counter()

    units = []
    for ci, conf in enumerate(configurations):
        seeds = [derive_seed(seed, ci, t) for t in range(trials)]
        for metric in metrics:
            trial_config = config_builder(conf, metric)
            for lo in range(0, trials, chunk_size):
                units.append(
                    ((ci, metric), trial_config, seeds[lo : lo + chunk_size])
                )

    if jobs is None:
        jobs = os.cpu_count() or 1
    partials: list[tuple[tuple[int, str], CellResult]] = []
    if jobs <= 1 or len(units) == 1:
        for key, cfg, seeds in units:
            partials.append((key, run_cell(cfg, seeds)))
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                (key, pool.submit(run_cell, cfg, seeds))
                for key, cfg, seeds in units
            ]
            for key, fut in futures:
                try:
                    partials.append((key, fut.result()))
                except ReproError:
                    raise
                except Exception as exc:
                    raise ExperimentError(
                        f"worker failed on cell {key}: {exc}"
                    ) from exc

    result = RobustnessResult(
        metrics=list(metrics),
        configurations=list(configurations),
        trials_per_cell=trials,
        seed=seed,
    )
    for key, cell in partials:
        if key in result.ratios:
            result.ratios[key] = result.ratios[key].merged(cell)
        else:
            result.ratios[key] = cell

    for ci in range(len(configurations)):
        values = [result.ratio(ci, m) for m in metrics]
        if max(values) < floor or min(values) > saturation:
            continue
        result.informative.append(ci)

    result.elapsed_seconds = time.perf_counter() - start
    return result


def robustness_table(result: RobustnessResult) -> str:
    """Summary table: mean/worst rank, first-place share, max regret."""
    rows = []
    for metric in result.metrics:
        rows.append(
            [
                metric,
                f"{result.mean_rank(metric):.2f}",
                result.worst_rank(metric),
                f"{result.first_place_share(metric):.0%}",
                f"{result.max_regret(metric):.3f}",
            ]
        )
    header = (
        f"{len(result.informative)} informative / "
        f"{len(result.configurations)} configurations, "
        f"{result.trials_per_cell} trials each"
    )
    return header + "\n" + format_table(
        ["metric", "mean rank", "worst rank", "1st place", "max regret"],
        rows,
    )
