"""Integer-indexed workload compilation (the kernel's data layer).

A :class:`CompiledWorkload` flattens one generated workload — task
graph plus platform — into contiguous arrays indexed by small integers,
so the hot trial loop (metric weights → slicing DP → EDF placement)
never touches a string key, a dataclass attribute chain, or a per-task
dict lookup:

* a task-index ↔ task-id table in **graph insertion order** (the order
  of ``graph.task_ids()``, which is the order the reference
  implementation sums estimates and WCETs in — float summation order is
  part of the bit-identity contract);
* the topological order as an int array (insertion order and
  topological order differ in general, so both are kept);
* CSR successor/predecessor adjacency (``array('i')`` offset+index
  pairs, with per-predecessor-edge message sizes alongside);
* a dense WCET matrix ``[task × processor]`` (row-major, ``-1.0``
  marking an ineligible processor) and the matching per-task
  eligibility bitmask over processors;
* per-task arrival phasings, output-deadline bounds, and resource sets;
* string-rank permutations for tasks and processors: ``rank[i]`` is the
  position of ``ids[i]`` in ``sorted(ids)``.  Every tie-break in the
  reference implementation compares id *strings*; comparing ranks is
  order-isomorphic, so integer comparisons reproduce the exact same
  winners.

The compilation is pure — everything derives from the workload alone —
so one compiled workload is shared by every series of a trial (it hangs
off :class:`~repro.experiments.context.TrialContext` as a lazy
property), and memoizes the per-estimator weight arrays the kernel
metrics produce.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Mapping

from ..errors import EligibilityError
from ..types import Time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..graph.taskgraph import TaskGraph
    from ..system.platform import Platform

__all__ = ["CompiledWorkload", "compile_workload"]


class CompiledWorkload:
    """Flat, integer-indexed view of one (graph, platform) pair.

    Attributes are documented in the module docstring; all arrays are
    immutable by convention (the kernel never writes to them).
    """

    __slots__ = (
        "graph",
        "platform",
        "n",
        "m",
        "ids",
        "index",
        "rank",
        "topo",
        "succ_off",
        "succ",
        "succ_lists",
        "pred_ps",
        "indeg",
        "wcet_vals",
        "wcet_pp",
        "elig_rows",
        "elig_mask",
        "phasing",
        "resources",
        "has_resources",
        "input_idx",
        "output_idx",
        "out_deadline",
        "proc_ids",
        "proc_rank",
        "_psets",
        "_est_lists",
        "_weight_lists",
        "_succ_w_masters",
        "_vec",
    )

    def __init__(self, graph: "TaskGraph", platform: "Platform") -> None:
        self.graph = graph
        self.platform = platform

        # Compilation reads the graph's raw adjacency dicts: the public
        # accessors copy a list per call, and one compile per trial walks
        # every task several times.  The insertion order of ``_tasks`` is
        # exactly ``graph.task_ids()`` — the reference sum order.
        tasks_d = graph._tasks
        succ_d = graph._succ
        pred_d = graph._pred
        ids = list(tasks_d)
        n = len(ids)
        index = {tid: i for i, tid in enumerate(ids)}
        self.ids = ids
        self.index = index
        self.n = n

        # String-rank permutation: rank-compare ≡ id-string-compare.
        rank = [0] * n
        for r, tid in enumerate(sorted(ids)):
            rank[index[tid]] = r
        self.rank = rank

        # CSR adjacency, preserving the graph's edge-insertion order per
        # task (the order the reference DP/commit loops iterate in).
        succ_off = array("i", [0] * (n + 1))
        succ_flat: list[int] = []
        succ_lists: list[tuple[int, ...]] = []
        pred_ps: list[tuple[tuple[int, float], ...]] = []
        for i, tid in enumerate(ids):
            row = tuple([index[s] for s in succ_d[tid]])
            succ_lists.append(row)
            succ_flat.extend(row)
            succ_off[i + 1] = len(succ_flat)
            pred_ps.append(
                tuple([(index[p], size) for p, size in pred_d[tid].items()])
            )
        self.succ_off = succ_off
        self.succ = array("i", succ_flat)
        # Tuple-per-task successor rows: the slicing DP's innermost loop
        # iterates successors millions of times per sweep, and a direct
        # tuple walk beats a CSR range+index pair in CPython.
        self.succ_lists = succ_lists
        # Tuple-per-task (predecessor, message-size) rows — the EDF
        # incoming/commit loops and the slicing attach sweep walk these
        # instead of paired index/size lookups.
        self.pred_ps = pred_ps
        indeg = array("i", (len(prow) for prow in pred_ps))
        self.indeg = indeg

        # Kahn topological order over the int arrays, replicating the
        # exact LIFO pop / insertion-order seeding of
        # :meth:`TaskGraph.topological_order` (the DP relaxation order
        # depends on it, so the sequence must match the reference).
        indeg_rem = list(indeg)
        topo_ready = [i for i in range(n) if not indeg_rem[i]]
        topo: list[int] = []
        while topo_ready:
            i = topo_ready.pop()
            topo.append(i)
            for j in succ_lists[i]:
                indeg_rem[j] -= 1
                if not indeg_rem[j]:
                    topo_ready.append(j)
        if len(topo) != n:
            # Defer to the reference walk for its CycleError diagnostics.
            graph.topological_order()
        self.topo = array("i", topo)

        # Dense WCET matrix and eligibility masks over the platform.
        procs = list(platform.processors())
        m = len(procs)
        self.m = m
        self.proc_ids = [p.id for p in procs]
        proc_index = {pid: q for q, pid in enumerate(self.proc_ids)}
        proc_rank = [0] * m
        for r, pid in enumerate(sorted(self.proc_ids)):
            proc_rank[proc_index[pid]] = r
        self.proc_rank = proc_rank
        proc_cls = [(q, proc.cls) for q, proc in enumerate(procs)]
        wcet_pp = array("d", [-1.0] * (n * m))
        elig_mask = [0] * n
        # (processor, wcet) pairs per task in processor order — the EDF
        # probe loop walks these directly instead of scanning the dense
        # row for ineligible -1.0 cells.
        elig_rows: list[tuple[tuple[int, float], ...]] = []
        phasing = array("d", [0.0]) * n
        resources: list[tuple[str, ...]] = []
        # Per-task platform-valid WCET values, exactly the list the
        # reference estimators filter per call (`task.wcet.items()`
        # restricted to the platform's used classes, insertion order) —
        # captured once so the kernel can combine estimates without
        # building the string-keyed estimate map.
        usable = set(platform.used_class_ids())
        wcet_vals: list[tuple[float, ...]] = []
        for i, task in enumerate(tasks_d.values()):
            wcet_get = task.wcet.get
            base = i * m
            row: list[tuple[int, float]] = []
            for q, cls in proc_cls:
                c = wcet_get(cls)
                if c is not None:
                    wcet_pp[base + q] = c
                    elig_mask[i] |= 1 << q
                    row.append((q, c))
            elig_rows.append(tuple(row))
            wcet_vals.append(
                tuple(
                    [c for cls, c in task.wcet.items() if cls in usable]
                )
            )
            phasing[i] = task.phasing
            resources.append(tuple(task.resources))
        self.wcet_vals = wcet_vals
        self.wcet_pp = wcet_pp
        self.elig_rows = elig_rows
        self.elig_mask = elig_mask
        self.phasing = phasing
        self.resources = resources
        self.has_resources = any(resources)

        self.input_idx = [index[t] for t in ids if not pred_d[t]]
        output_idx = [index[t] for t in ids if not succ_d[t]]
        self.output_idx = output_idx
        # Tightest E-T-E bound per output, by one pass over the pair
        # deadlines (min() is exact, so accumulation order is free).
        # Pairs ending at a non-output task are ignored, like the
        # reference's per-output :meth:`TaskGraph.output_deadline` scan.
        out_deadline: list[Time | None] = [None] * n
        out_set = set(output_idx)
        for (a1, a2), d in graph._e2e.items():
            j = index[a2]
            if j not in out_set:
                continue
            bound = tasks_d[a1].phasing + d
            cur = out_deadline[j]
            if cur is None or bound < cur:
                out_deadline[j] = bound
        self.out_deadline = out_deadline

        self._psets: list[int] | None = None
        self._est_lists: dict[str, list[float]] = {}
        self._weight_lists: dict[tuple, list[float]] = {}
        self._succ_w_masters: dict[int, tuple] = {}
        # Lazily built NumPy twin of the flat arrays (padded successor/
        # predecessor matrices, dense WCET view) — owned and memoized by
        # :func:`repro.kernel.vec.vec_arrays`; ``None`` until the
        # vectorized path first touches this workload.
        self._vec = None

    # ------------------------------------------------------------------
    def parallel_set_sizes(self) -> list[int]:
        """``|Ψ_i|`` per task (lazy bitset closure; exact integers).

        Identical to :meth:`TransitiveClosure.parallel_set_size` for
        every task — popcounts of reachability masks are integers, so no
        float-order caveats apply.
        """
        if self._psets is None:
            n = self.n
            topo = self.topo
            succ_off, succ = self.succ_off, self.succ
            desc = [0] * n
            for pos in range(n - 1, -1, -1):
                i = topo[pos]
                mask = 0
                for k in range(succ_off[i], succ_off[i + 1]):
                    j = succ[k]
                    mask |= (1 << j) | desc[j]
                desc[i] = mask
            anc = [0] * n
            for i in range(n):
                bit = 1 << i
                m = desc[i]
                while m:
                    low = m & -m
                    anc[low.bit_length() - 1] |= bit
                    m ^= low
            self._psets = [
                n - 1 - desc[i].bit_count() - anc[i].bit_count()
                for i in range(n)
            ]
        return self._psets

    def estimates_list(
        self, est_name: str, est_map: Mapping[str, Time]
    ) -> list[float]:
        """*est_map* flattened to insertion order, memoized per estimator."""
        cached = self._est_lists.get(est_name)
        if cached is None:
            cached = [est_map[tid] for tid in self.ids]
            self._est_lists[est_name] = cached
        return cached

    def estimates_from_vals(self, est_name: str, combine) -> list[float]:
        """Estimates combined straight from the platform-valid WCET rows.

        *combine* must be the estimator's own ``combine`` (it sees the
        very value tuples the reference filters per task, so the floats
        — including WCET-AVG's summation order — are identical).  Shares
        the memo with :meth:`estimates_list`; both produce the same
        list for the same estimator name.
        """
        cached = self._est_lists.get(est_name)
        if cached is None:
            ids = self.ids
            cached = []
            for i, vals in enumerate(self.wcet_vals):
                if not vals:
                    raise EligibilityError(
                        f"task {ids[i]!r} has no eligible class on this "
                        "platform"
                    )
                cached.append(combine(vals))
            self._est_lists[est_name] = cached
        return cached

    def weights_cache(self) -> dict[tuple, list[float]]:
        """Memo for metric weight arrays, keyed by the kernel metrics."""
        return self._weight_lists

    def succ_w_master(self, weights) -> list[list[tuple[int, float]]]:
        """Fresh weight-paired successor rows for the slicing DP.

        The initial Π covers every task, so the rows depend only on
        *weights* — memoized per weight array (PURE and NORM share one
        array per estimator, so their slices share one master).  The
        memo pins the array itself, which both keeps a slicing run safe
        against mutation-after-free ``id`` reuse and makes the identity
        key stable.  Returns a fresh outer list per call; the row lists
        are shared and must be replaced, never mutated, by the caller.
        """
        entry = self._succ_w_masters.get(id(weights))
        if entry is None or entry[0] is not weights:
            master = [
                [(j, weights[j]) for j in row] for row in self.succ_lists
            ]
            entry = (weights, master)
            self._succ_w_masters[id(weights)] = entry
        return list(entry[1])


def compile_workload(graph: "TaskGraph", platform: "Platform") -> CompiledWorkload:
    """Compile *graph*/*platform* into a :class:`CompiledWorkload`."""
    return CompiledWorkload(graph, platform)
