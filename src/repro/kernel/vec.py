"""Vectorized trial kernel: NumPy batch path over compiled workloads.

Third tier of the trial dispatch (reference oracle → compiled kernel →
vectorized kernel).  Where the compiled kernel replaced string-keyed
dicts with flat integer-indexed arrays walked by interpreted Python,
this layer lifts the remaining hot loops onto whole-array NumPy ops:

* :func:`vec_weights` / :func:`vec_weights_batch` — the metric weight
  arrays (thresholds, static levels, average parallelism ξ, the
  ADAPT-G/ADAPT-L surplus inflation) as elementwise array expressions,
  batched across every seed of a ``(cell, chunk)`` unit;
* :func:`vec_tail_rank` — the slicing DP's per-head candidate ranking
  over vectorized laxity/weight arrays (used by
  :func:`repro.kernel.slicing.kernel_slice` when the tail set is wide);
* :func:`vec_schedule_edf_batch` — a lockstep EDF engine that advances
  *all* seeds of a chunk one placement per step, batching the ready-set
  deadline comparisons and the per-processor placement probes as
  ``[lanes × tasks]`` array ops;
* :func:`paired_outcomes` — the seed-batch driver the paired engine
  calls: one shared array pipeline replaces thousands of per-trial
  Python operations.

Bit-identity contract: on the default tie-break the vectorized path
produces the exact floats of the reference pipeline.  The load-bearing
facts are (a) ``np.cumsum`` accumulates strictly left-to-right, exactly
like Python's ``sum`` (NumPy's ``.sum()`` does *not* — it pairs up), so
every ordered summation goes through ``cumsum``; (b) min/max/compare
and elementwise ``+ - * /`` on float64 are single IEEE operations, so
``np.where(est >= c_thres, est * surplus, est)`` is bitwise the scalar
loop; (c) staged masked argmins reproduce lexicographic tie-breaks.

``REPRO_VEC`` selects the tier with three states (:func:`vec_mode`):
unset defaults to **auto** — batch entry points engage on their own
whenever NumPy is importable and the seed batch is wide enough
(:data:`VEC_MIN_LANES` lanes) to amortize the array setup, while the
per-trial path stays scalar because its win is modest.  ``REPRO_VEC=1``
(or ``run_trial(use_vec=True)``) forces **on** — every path vectorizes
regardless of width — and ``REPRO_VEC=0`` opts **off** entirely.
``REPRO_VEC_FASTMATH=1`` additionally relaxes the bit-identity
contract where the paper's results cannot depend on it: ordered
summations may use pairwise ``np.sum``, and ready-pop ties may resolve
by array position instead of task-id rank.  When NumPy is absent every
entry point reports unavailable and callers fall through to the pure
Python compiled kernel — same results, smaller speedup.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from itertools import chain
from typing import TYPE_CHECKING, Any, Sequence

from ..core.estimation import WCET_AVG, WCET_MAX, WCET_MIN, get_estimator
from ..core.metrics import AdaptGMetric, AdaptLMetric, get_metric
from ..errors import SchedulingError
from ..system.interconnect import SharedBus
from .compiled import CompiledWorkload
from .edf import MISS_TOLERANCE, kernel_schedule_edf
from .metrics import kernel_weights

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..experiments.context import TrialContext
    from ..experiments.spec import TrialConfig, TrialOutcome

__all__ = [
    "VEC_MIN_LANES",
    "vec_available",
    "vec_enabled",
    "vec_fastmath",
    "vec_mode",
    "estimator_batch_supported",
    "vec_estimates_batch",
    "vec_arrays",
    "vec_weights",
    "vec_weights_batch",
    "vec_tail_rank",
    "vec_schedule_edf_batch",
    "paired_outcomes",
]

_np: Any = None
_np_checked = False


def _numpy():
    """NumPy, or ``None`` when it cannot be imported (checked once).

    ``REPRO_VEC_NO_NUMPY=1`` forces the absent answer — the CI leg that
    keeps the pure-Python fallback from rotting sets it, because NumPy
    cannot actually be uninstalled under the test suite (workload
    generation's determinism contract is NumPy's RNG).
    """
    global _np, _np_checked
    if os.environ.get("REPRO_VEC_NO_NUMPY", "0") == "1":
        return None
    if not _np_checked:
        _np_checked = True
        try:
            import numpy
        except Exception:  # pragma: no cover - exercised via monkeypatch
            _np = None
        else:
            _np = numpy
    return _np


def vec_available() -> bool:
    """Whether the vectorized tier can run at all (NumPy importable)."""
    return _numpy() is not None


#: Minimum seed-batch width at which ``auto`` mode engages the batch
#: path.  Below this the array setup (context building, padded views,
#: per-step masking) costs as much as the lockstep arithmetic saves —
#: measured on the reference container, 32-lane batches still run a
#: few percent *behind* the compiled scalar kernel and parity arrives
#: around 64 lanes; the stage-level array wins only compound past
#: that.  Forced mode (``REPRO_VEC=1``/``use_vec=True``) ignores this
#: floor.
VEC_MIN_LANES = 64


def vec_mode() -> str:
    """The ``REPRO_VEC`` switch: ``"auto"`` (default), ``"on"``, ``"off"``.

    Unset defaults to **auto**: batch entry points self-select when
    NumPy is importable and the batch is at least :data:`VEC_MIN_LANES`
    wide; the per-trial path stays scalar.  ``"1"`` forces **on**
    (every path vectorizes, any width — the pre-auto opt-in behavior);
    any other value, e.g. ``"0"``, opts **off**.  Read per call (like
    ``REPRO_KERNEL``) so tests and the CLI can flip it at runtime
    without re-imports.
    """
    raw = os.environ.get("REPRO_VEC")
    if raw is None or raw == "":
        return "auto"
    return "on" if raw == "1" else "off"


def vec_enabled() -> bool:
    """Whether the vec tier may engage at all (mode is not ``"off"``)."""
    return vec_mode() != "off"


def vec_fastmath() -> bool:
    """Whether ``REPRO_VEC_FASTMATH=1`` relaxes the bit-identity rules."""
    return os.environ.get("REPRO_VEC_FASTMATH", "0") == "1"


# ----------------------------------------------------------------------
# Per-workload array views
# ----------------------------------------------------------------------


class VecArrays:
    """NumPy twin of one :class:`CompiledWorkload`'s flat buffers.

    Padded rectangular views (successor/predecessor matrices padded to
    the workload's max degree, with count vectors delimiting the valid
    prefix of each row) so batch code can gather without ragged rows.
    Built once per workload, memoized on ``cw._vec``.
    """

    __slots__ = (
        "n",
        "m",
        "topo",
        "succ_pad",
        "succ_cnt",
        "pred_pad",
        "pred_sz",
        "pred_cnt",
        "wcet",
        "rank",
        "proc_rank",
        "win_pad",
    )

    def __init__(self, cw: CompiledWorkload) -> None:
        np = _numpy()
        n, m = cw.n, cw.m
        self.n = n
        self.m = m
        self.topo = np.asarray(cw.topo, dtype=np.int64)
        s_max = max((len(r) for r in cw.succ_lists), default=0) or 1
        p_max = max((len(r) for r in cw.pred_ps), default=0) or 1
        succ_pad = np.zeros((n, s_max), dtype=np.int64)
        succ_cnt = np.zeros(n, dtype=np.int64)
        pred_pad = np.zeros((n, p_max), dtype=np.int64)
        pred_sz = np.zeros((n, p_max), dtype=np.float64)
        pred_cnt = np.zeros(n, dtype=np.int64)
        for i in range(n):
            srow = cw.succ_lists[i]
            succ_cnt[i] = len(srow)
            if srow:
                succ_pad[i, : len(srow)] = srow
            prow = cw.pred_ps[i]
            pred_cnt[i] = len(prow)
            for k, (p, size) in enumerate(prow):
                pred_pad[i, k] = p
                pred_sz[i, k] = size
        self.succ_pad = succ_pad
        self.succ_cnt = succ_cnt
        self.pred_pad = pred_pad
        self.pred_sz = pred_sz
        self.pred_cnt = pred_cnt
        # Dense [n × m] execution times; -1.0 still marks ineligible.
        self.wcet = np.asarray(cw.wcet_pp, dtype=np.float64).reshape(n, m)
        self.rank = np.asarray(cw.rank, dtype=np.int64)
        self.proc_rank = np.asarray(cw.proc_rank, dtype=np.int64)
        self.win_pad = None  # scratch slot, unused for now


def vec_arrays(cw: CompiledWorkload) -> VecArrays:
    """The workload's :class:`VecArrays`, built lazily once."""
    va = cw._vec
    if va is None:
        va = VecArrays(cw)
        cw._vec = va
    return va


class _LaneStack:
    """Stacked ``[lanes × tasks × …]`` structure arrays of one lane list.

    Every array here is a pure function of the workloads — the batch
    analogue of :func:`~repro.kernel.compiled.compile_workload` — so it
    is built once per lane list and shared by every stage that judges
    the same seed chunk (all metrics, all series).  Parts are lazy:
    the levels sweep only ever touches ``topo``/``succ``, the EDF
    engine touches everything but ``vals``.
    """

    __slots__ = ("cws", "n_arr", "n_max", "_parts")

    def __init__(self, cws: Sequence[CompiledWorkload]) -> None:
        np = _numpy()
        self.cws = tuple(cws)
        self.n_arr = np.array([cw.n for cw in cws], dtype=np.int64)
        self.n_max = max(int(self.n_arr.max()), 1) if len(cws) else 1
        self._parts: dict[str, tuple] = {}

    def succ(self):
        """``(succ_pad, succ_cnt, s_max)`` over ``[L, n_max, s_max]``."""
        part = self._parts.get("succ")
        if part is None:
            np = _numpy()
            L, n_max = len(self.cws), self.n_max
            s_max = 1
            vas = [vec_arrays(cw) for cw in self.cws]
            for va in vas:
                s_max = max(s_max, va.succ_pad.shape[1])
            succ_pad = np.zeros((L, n_max, s_max), dtype=np.int64)
            succ_cnt = np.zeros((L, n_max), dtype=np.int64)
            for b, va in enumerate(vas):
                succ_pad[b, : va.n, : va.succ_pad.shape[1]] = va.succ_pad
                succ_cnt[b, : va.n] = va.succ_cnt
            part = (succ_pad, succ_cnt, s_max)
            self._parts["succ"] = part
        return part

    def topo(self):
        """``topo_pad [L, n_max]`` (padding repeats the last real task)."""
        part = self._parts.get("topo")
        if part is None:
            np = _numpy()
            topo_pad = np.zeros((len(self.cws), self.n_max), dtype=np.int64)
            for b, cw in enumerate(self.cws):
                topo_pad[b, : cw.n] = vec_arrays(cw).topo
            part = (topo_pad,)
            self._parts["topo"] = part
        return part[0]

    def pred(self):
        """``(pred_pad, pred_sz, pred_cnt, p_max)`` predecessor stacks."""
        part = self._parts.get("pred")
        if part is None:
            np = _numpy()
            L, n_max = len(self.cws), self.n_max
            p_max = 1
            vas = [vec_arrays(cw) for cw in self.cws]
            for va in vas:
                p_max = max(p_max, va.pred_pad.shape[1])
            pred_pad = np.zeros((L, n_max, p_max), dtype=np.int64)
            pred_sz = np.zeros((L, n_max, p_max), dtype=np.float64)
            pred_cnt = np.zeros((L, n_max), dtype=np.int64)
            for b, va in enumerate(vas):
                w = va.pred_pad.shape[1]
                pred_pad[b, : va.n, :w] = va.pred_pad
                pred_sz[b, : va.n, :w] = va.pred_sz
                pred_cnt[b, : va.n] = va.pred_cnt
            part = (pred_pad, pred_sz, pred_cnt, p_max)
            self._parts["pred"] = part
        return part

    def sched(self):
        """``(cpen, pen, rank, proc_rank, indeg0)`` — the EDF stacks.

        Requires a uniform processor count across the lane list (the
        EDF engine groups lanes by ``m`` before asking).  ``cpen`` is
        the dense WCET matrix with ineligible entries replaced by
        ``+inf`` (so a probe's finish time is ``+inf`` exactly where
        the scalar kernel skips the processor) and ``pen`` is its 0/inf
        eligibility penalty; padding rows are fully ineligible, with
        ``BIG`` ranks and ``BIG`` in-degrees (never ready).
        """
        part = self._parts.get("sched")
        if part is None:
            np = _numpy()
            L, n_max = len(self.cws), self.n_max
            m = self.cws[0].m
            if any(cw.m != m for cw in self.cws):
                raise ValueError("sched() stacks need a uniform m")
            big = np.iinfo(np.int64).max
            wcet = np.full((L, n_max, m), -1.0, dtype=np.float64)
            rank = np.full((L, n_max), big, dtype=np.int64)
            proc_rank = np.zeros((L, m), dtype=np.int64)
            indeg0 = np.full((L, n_max), big, dtype=np.int64)
            for b, cw in enumerate(self.cws):
                va = vec_arrays(cw)
                n = cw.n
                if n == 0:
                    continue
                wcet[b, :n] = va.wcet
                rank[b, :n] = va.rank
                proc_rank[b] = va.proc_rank
                indeg0[b, :n] = np.asarray(cw.indeg, dtype=np.int64)
            inelig = wcet < 0.0
            cpen = np.where(inelig, np.inf, wcet).reshape(L * n_max, m)
            pen = np.where(inelig, np.inf, 0.0).reshape(L * n_max, m)
            part = (cpen, pen, rank, proc_rank, indeg0)
            self._parts["sched"] = part
        return part

    def csr(self):
        """``(soff, sidx, ssz)`` — successor edges in flat CSR form.

        ``sidx[soff[l * n_max + i] : soff[...] + succ_cnt[l, i]]`` are
        the successor task indices of task *i* of lane *l* and ``ssz``
        the matching edge message sizes, derived by inverting the
        predecessor stacks.  Edge order within a task is irrelevant to
        every consumer (in-degree decrements count edges, data-ready
        pushes combine by exact ``max``), so no particular order is
        promised.
        """
        part = self._parts.get("csr")
        if part is None:
            np = _numpy()
            L, n_max = len(self.cws), self.n_max
            pred_pad, pred_sz, pred_cnt, p_max = self.pred()
            valid = np.arange(p_max) < pred_cnt[:, :, None]  # [L, n, p]
            lanes_g, tasks_g, _slots = np.nonzero(valid)
            src = pred_pad[valid]  # predecessor (edge source) per edge
            sz = pred_sz[valid]
            key = lanes_g * n_max + src  # flat source address per edge
            edge_order = np.argsort(key, kind="stable")
            counts = np.bincount(key, minlength=L * n_max)
            soff = np.zeros(L * n_max + 1, dtype=np.int64)
            np.cumsum(counts, out=soff[1:])
            sidx = tasks_g[edge_order].astype(np.int64)
            ssz = sz[edge_order]
            part = (soff, sidx, ssz)
            self._parts["csr"] = part
        return part

    def vals(self):
        """``(pad, cnt, v_max)`` — the raw per-task WCET value lists."""
        part = self._parts.get("vals")
        if part is None:
            np = _numpy()
            L, n_max = len(self.cws), self.n_max
            v_max = 1
            for cw in self.cws:
                for row in cw.wcet_vals:
                    if len(row) > v_max:
                        v_max = len(row)
            pad = np.zeros((L, n_max, v_max), dtype=np.float64)
            cnt = np.zeros((L, n_max), dtype=np.int64)
            for b, cw in enumerate(self.cws):
                for i, row in enumerate(cw.wcet_vals):
                    cnt[b, i] = len(row)
                    if row:
                        pad[b, i, : len(row)] = row
            part = (pad, cnt, v_max)
            self._parts["vals"] = part
        return part

    def sizes_pad(self):
        """``[L, n_max]`` parallel-set sizes — ADAPT-L's ``|P_i|`` stack.

        A pure function of the workloads (the per-workload tuples are
        themselves memoized), padded with zeros past each lane's task
        count.
        """
        part = self._parts.get("sizes")
        if part is None:
            np = _numpy()
            sizes = np.zeros((len(self.cws), self.n_max), dtype=np.float64)
            valid = np.arange(self.n_max) < self.n_arr[:, None]
            sizes[valid] = np.fromiter(
                chain.from_iterable(
                    cw.parallel_set_sizes() for cw in self.cws
                ),
                dtype=np.float64,
                count=int(self.n_arr.sum()),
            )
            part = (sizes,)
            self._parts["sizes"] = part
        return part[0]


#: Bounded memo of :class:`_LaneStack` by lane-list identity.  Entries
#: hold strong references to their workloads, so an ``id`` key can never
#: be recycled while its entry lives; the LRU bound keeps a long sweep
#: from pinning more than a few chunks' worth of arrays.
_STACK_CACHE_CAP = 8
_stack_cache: "OrderedDict[tuple[int, ...], _LaneStack]" = OrderedDict()


def _lane_stack(cws: Sequence[CompiledWorkload]) -> _LaneStack:
    """The lane list's stacked arrays, memoized across batch stages."""
    key = tuple(map(id, cws))
    st = _stack_cache.get(key)
    if st is None:
        st = _LaneStack(cws)
        _stack_cache[key] = st
        while len(_stack_cache) > _STACK_CACHE_CAP:
            _stack_cache.popitem(last=False)
    else:
        _stack_cache.move_to_end(key)
    return st


# ----------------------------------------------------------------------
# Batched estimates and metric weights
# ----------------------------------------------------------------------

#: The estimator singletons whose ``combine`` the batch path replicates
#: as array expressions (ordered sum via cumsum / exact max / exact min).
_BATCH_ESTIMATORS = {
    WCET_AVG.name: "avg",
    WCET_MAX.name: "max",
    WCET_MIN.name: "min",
}


def estimator_batch_supported(est_name: str) -> bool:
    """Whether *est_name* (canonical spelling) has a batched estimate stage.

    The public gate for callers outside the trial engine — e.g. the
    service's micro-batch flush path — that want to route many distinct
    workloads through :func:`vec_estimates_batch` /
    :func:`vec_weights_batch` without reaching into the private table.
    """
    return est_name in _BATCH_ESTIMATORS


def _ordered_sum(np, mat, axis=1):
    """Row sums with Python's left-to-right accumulation order.

    ``cumsum`` adds strictly sequentially, so its last column equals
    ``functools.reduce(operator.add, row, 0.0)`` — the reference
    ``sum()`` — bit for bit.  Fast-math mode may use pairwise ``sum``.
    """
    if vec_fastmath():
        return mat.sum(axis=axis)
    if mat.shape[axis] == 0:
        return np.zeros(mat.shape[0], dtype=np.float64)
    return np.cumsum(mat, axis=axis)[:, -1]


def vec_estimates_batch(
    cws: Sequence[CompiledWorkload], est_name: str
) -> list[list[float] | None]:
    """Per-lane estimate lists for one of the WCET-* estimators.

    Lanes whose workload has a task with no platform-valid WCET return
    ``None`` (the caller's scalar path raises the reference
    ``EligibilityError`` with the exact task id).  Results are written
    into each workload's estimate memo, so later scalar stages (slicing
    laxity, the reference estimators) observe the identical floats.
    """
    np = _numpy()
    kind = _BATCH_ESTIMATORS[est_name]
    out: list[list[float] | None] = [None] * len(cws)
    pending: list[int] = []
    for li, cw in enumerate(cws):
        cached = cw._est_lists.get(est_name)
        if cached is not None:
            out[li] = cached
        else:
            pending.append(li)
    if not pending:
        return out
    st = _lane_stack([cws[li] for li in pending])
    L, n_max = len(pending), st.n_max
    pad, cnt, v_max = st.vals()
    valid = np.arange(v_max) < cnt[:, :, None]
    if kind == "avg":
        flat = pad.reshape(L * n_max, v_max)
        totals = _ordered_sum(np, flat).reshape(L, n_max)
        est = np.divide(
            totals,
            cnt,
            out=np.zeros_like(totals),
            where=cnt > 0,
        )
    elif kind == "max":
        est = np.where(valid, pad, -np.inf).max(axis=2, initial=-np.inf)
    else:
        est = np.where(valid, pad, np.inf).min(axis=2, initial=np.inf)
    if kind != "avg":
        # Zero the ±inf padding so the array doubles as a weights-stage
        # ``est_pad`` (whose row sums run over the full padded width).
        task_valid = np.arange(n_max) < st.n_arr[:, None]
        np.copyto(est, 0.0, where=~task_valid)
    complete = True
    for b, li in enumerate(pending):
        cw = cws[li]
        n = cw.n
        if n and int(cnt[b, :n].min()) == 0:
            complete = False
            continue  # empty-WCET lane: scalar path raises for it
        lane = est[b, :n].tolist()
        cw._est_lists[est_name] = lane
        out[li] = lane
    if complete:
        # Stash the padded array for the weights stage: reusing it is
        # bit-identical to refilling from the lists (float64 lists round
        # -trip exactly), and the identity check on the list objects
        # guards against a stale stash.
        st._parts["est_pad"] = (tuple(out[li] for li in pending), est)
    return out


def _batch_levels(np, st, est_pad, n_arr):
    """Static levels for one lane stack, swept one topo position per step.

    Relaxation runs over the reversed topological order exactly like
    the scalar ``_average_parallelism``: each step resolves one task
    per lane, taking ``est + max(successor levels, default 0.0)`` —
    the max is exact and the add is one IEEE op, so the levels match
    the scalar floats bit for bit.
    """
    L = len(st.cws)
    n_max = st.n_max
    levels = np.zeros((L, n_max), dtype=np.float64)
    topo_pad = st.topo()
    succ_pad, succ_cnt, s_max = st.succ()
    ar = np.arange(L)
    base = ar * n_max
    lvl_flat = levels.ravel()
    topo_flat = topo_pad.ravel()
    est_flat = est_pad.ravel()
    scnt_flat = succ_cnt.ravel()
    succ_rows = succ_pad.reshape(L * n_max, s_max)
    nm1_base = base + (n_arr - 1)
    # Scratch reused across positions; the successor max runs as a
    # column chain of width-[L] ufuncs (numpy's small-last-axis
    # reductions are an order of magnitude slower).
    posidx = np.empty(L, dtype=np.int64)
    flat_t = np.empty(L, dtype=np.int64)
    scnt = np.empty(L, dtype=np.int64)
    tail = np.empty(L, dtype=np.float64)
    valid = np.empty(L, dtype=bool)
    upd = np.empty(L, dtype=np.float64)
    eidx = np.empty((L, s_max), dtype=np.int64)
    vals = np.empty((L, s_max), dtype=np.float64)
    srow = np.empty((L, s_max), dtype=np.int64)
    pad_mask = np.empty((L, s_max), dtype=bool)
    slots = np.arange(s_max)
    for pos in range(n_max - 1, -1, -1):
        np.add(base, pos, out=posidx)
        np.minimum(posidx, nm1_base, out=posidx)
        topo_flat.take(posidx, out=flat_t)
        np.add(flat_t, base, out=flat_t)
        scnt_flat.take(flat_t, out=scnt)
        # Only the first k_max successor slots carry edges this step;
        # the mask pass and the max chain both stop there.
        k_max = int(scnt.max())
        if k_max:
            ew, mw = eidx[:, :k_max], pad_mask[:, :k_max]
            succ_rows.take(flat_t, axis=0, out=srow)
            np.add(srow[:, :k_max], base[:, None], out=ew)
            lvl_flat.take(ew, out=vals[:, :k_max])
            np.greater_equal(slots[:k_max], scnt[:, None], out=mw)
            np.copyto(vals[:, :k_max], -np.inf, where=mw)
            np.copyto(tail, -np.inf)
            for k in range(k_max):
                np.maximum(tail, vals[:, k], out=tail)
            np.less_equal(scnt, 0, out=valid)
            np.copyto(tail, 0.0, where=valid)
        else:
            tail.fill(0.0)
        est_flat.take(flat_t, out=upd)
        upd += tail
        live = pos < n_arr
        lvl_flat[flat_t[live]] = upd[live]
    return levels


def vec_weights_batch(
    cws: Sequence[CompiledWorkload],
    metric,
    ests: Sequence[Sequence[float] | None],
    est_key: str | None = None,
) -> list[tuple | None]:
    """Metric weight tuples for many workload lanes in one array pass.

    ``ests[l]`` is lane *l*'s estimate array (``None`` skips the lane).
    Error lanes — empty task set, non-positive longest path — come back
    ``None`` with **no cache write**, so the caller's per-trial scalar
    retry raises the reference exception verbatim.  Successful lanes
    are written into each workload's weight memo exactly like
    :func:`repro.kernel.metrics.kernel_weights` would, so every
    downstream stage (slicing's ``succ_w_master``, the EDF windows)
    observes the identical objects.
    """
    np = _numpy()
    out: list[tuple | None] = [None] * len(cws)
    if not isinstance(metric, (AdaptGMetric, AdaptLMetric)):
        # PURE/NORM weights *are* the estimates — the memoized copy is
        # the whole computation; arrays would only add overhead.
        for li, cw in enumerate(cws):
            if ests[li] is not None:
                out[li] = kernel_weights(cw, metric, ests[li], est_key)
        return out

    p = metric.params
    lanes: list[int] = []
    for li, cw in enumerate(cws):
        if ests[li] is None:
            continue
        if est_key is not None:
            key = (
                metric.name, p.k_g, p.k_l, p.c_thres, p.c_thres_factor,
                est_key,
            )
            cached = cw.weights_cache().get(key)
            if cached is not None:
                out[li] = cached
                continue
        if cw.n == 0 or cw.m < 1:
            continue  # scalar retry raises MetricError/GraphError
        lanes.append(li)
    if not lanes:
        return out

    L = len(lanes)
    st = _lane_stack([cws[li] for li in lanes])
    n_arr = st.n_arr
    m_arr = np.array([cws[li].m for li in lanes], dtype=np.float64)
    n_max = st.n_max
    est_pad = None
    stash = st._parts.get("est_pad")
    if stash is not None:
        s_lists, s_arr = stash
        if len(s_lists) == L and all(
            ests[li] is s_lists[b] for b, li in enumerate(lanes)
        ):
            est_pad = s_arr  # read-only below; padding is zeroed
    if est_pad is None:
        est_pad = np.zeros((L, n_max), dtype=np.float64)
        valid = np.arange(n_max) < n_arr[:, None]
        est_pad[valid] = np.fromiter(
            chain.from_iterable(ests[li] for li in lanes),
            dtype=np.float64,
            count=int(n_arr.sum()),
        )
    totals = _ordered_sum(np, est_pad)

    # c_thres: the pinned constant, or factor × insertion-order mean.
    if p.c_thres is not None:
        c_thres = np.full(L, p.c_thres, dtype=np.float64)
    else:
        c_thres = p.c_thres_factor * (totals / n_arr)

    ok = np.ones(L, dtype=bool)
    if isinstance(metric, AdaptGMetric):
        levels = _batch_levels(np, st, est_pad, n_arr)
        col = np.arange(n_max)
        longest = np.where(col < n_arr[:, None], levels, -np.inf).max(
            axis=1, initial=-np.inf
        )
        ok = longest > 0.0  # `longest <= 0` lanes raise via scalar retry
        xi = np.divide(
            totals, longest, out=np.zeros(L), where=ok
        )
        surplus = 1.0 + p.k_g * xi / m_arr
        weights = np.where(
            est_pad >= c_thres[:, None], est_pad * surplus[:, None], est_pad
        )
    else:
        sizes = st.sizes_pad()
        factor = 1.0 + p.k_l * sizes / m_arr[:, None]
        weights = np.where(
            est_pad >= c_thres[:, None], est_pad * factor, est_pad
        )

    for b, li in enumerate(lanes):
        if not bool(ok[b]):
            continue
        cw = cws[li]
        w = tuple(weights[b, : cw.n].tolist())
        out[li] = w
        if est_key is not None:
            key = (
                metric.name, p.k_g, p.k_l, p.c_thres, p.c_thres_factor,
                est_key,
            )
            cw.weights_cache()[key] = w
    return out


def vec_weights(
    cw: CompiledWorkload,
    metric,
    est: Sequence[float],
    est_key: str | None = None,
) -> tuple:
    """Single-workload :func:`kernel_weights` through the array path.

    Falls back to the scalar kernel for lanes the batch flags as
    erroneous, so exceptions (empty task set, non-positive longest
    path) surface with the reference types and messages.
    """
    out = vec_weights_batch([cw], metric, [est], est_key)[0]
    if out is None:
        return kernel_weights(cw, metric, est, est_key)
    return out


# ----------------------------------------------------------------------
# Slicing: vectorized per-head tail ranking
# ----------------------------------------------------------------------

#: Minimum tail-set width before the slicing DP hands its candidate
#: ranking to NumPy — below this the per-op overhead loses to the
#: scalar scan.
VEC_TAIL_MIN = 16


def vec_tail_rank(
    tails: Sequence[int],
    dist: Sequence[float | None],
    cnt: Sequence[int],
    dl: Sequence[float],
    a_h: float,
    norm: bool,
) -> tuple[list[int], float, float, int] | None:
    """Rank one head's candidate tails on vectorized laxity arrays.

    Scores every tail with the reference formula — ``r = (window −
    Σw)/Σw`` (NORM) or ``/length`` — then selects the minimum under the
    (r, −Σw, −length) prefix of the selection order with staged masked
    comparisons.  Returns ``(tied_tails, r, Σw, length)`` where
    ``tied_tails`` holds every tail still tied after the three float
    stages, **in the scan order of the caller**; the caller resolves
    the final path-lexicographic tie-break scalar-side (it needs the DP
    parent chain).  Returns ``None`` when NORM meets a non-positive
    path weight, so the caller raises the reference ``MetricError``.
    """
    np = _numpy()
    t = np.asarray(tails, dtype=np.int64)
    total_w = np.array([dist[i] for i in tails], dtype=np.float64)
    length = np.array([cnt[i] for i in tails], dtype=np.int64)
    window = np.array([dl[i] for i in tails], dtype=np.float64) - a_h
    if norm:
        if bool((total_w <= 0.0).any()):
            return None
        r = (window - total_w) / total_w
    else:
        r = (window - total_w) / length
    best_r = r.min()
    m1 = r == best_r
    best_w = total_w[m1].max()
    m2 = m1 & (total_w == best_w)
    best_len = int(length[m2].max())
    m3 = m2 & (length == best_len)
    return (
        [int(i) for i in t[m3]],
        float(best_r),
        float(best_w),
        best_len,
    )


# ----------------------------------------------------------------------
# Lockstep batched EDF
# ----------------------------------------------------------------------


class VecLaneSchedule:
    """One lane's result from :func:`vec_schedule_edf_batch`.

    Mirrors the :class:`~repro.kernel.edf.KernelSchedule` surface the
    trial wrapper reads (feasible/failed/makespan/max-lateness); the
    placement order is not materialized — both aggregates are exact
    maxes, so order is irrelevant.
    """

    __slots__ = ("cw", "feasible", "failed", "_makespan", "_lateness", "_any")

    def __init__(self, cw, feasible, failed, makespan, lateness, any_placed):
        self.cw = cw
        self.feasible = feasible
        self.failed = failed
        self._makespan = makespan
        self._lateness = lateness
        self._any = any_placed

    @property
    def failed_task(self) -> str | None:
        return self.cw.ids[self.failed] if self.failed >= 0 else None

    @property
    def makespan(self) -> float:
        return self._makespan

    def max_lateness(self) -> float:
        if not self._any:
            raise SchedulingError("empty schedule has no lateness")
        return self._lateness


def _lane_from_kernel(ks) -> VecLaneSchedule:
    """Adapt a scalar :class:`KernelSchedule` to the lane surface."""
    any_placed = bool(ks.order)
    return VecLaneSchedule(
        ks.cw,
        ks.feasible,
        ks.failed,
        ks.makespan,
        ks.max_lateness() if any_placed else 0.0,
        any_placed,
    )


def vec_schedule_edf_batch(
    lanes: Sequence[tuple[CompiledWorkload, Sequence[float], Sequence[float]]],
    *,
    comms: Sequence | None = None,
    continue_on_miss: "bool | Sequence[bool]" = False,
) -> list[VecLaneSchedule]:
    """EDF-list-schedule many ``(cw, win_a, win_d)`` lanes in lockstep.

    Each step pops one ready task per live lane (staged masked min over
    the deadline array, then task rank — the heap's tuple order), probes
    every processor with one ``[lanes]``-wide comparison per processor,
    and scatters the placements back.  Lanes outside the batch envelope
    — a non-:class:`SharedBus` communication model (``comms[l]``
    overrides the platform's), resource-using tasks — run the scalar
    :func:`kernel_schedule_edf` individually; either way every float is
    the reference expression, so results are bit-identical.

    ``continue_on_miss`` may be a per-lane sequence, so lanes of
    different series (fail-fast feasibility vs lateness measurement)
    can share one lockstep call — the seed-batch driver folds every
    series of a chunk into a single invocation this way.
    """
    np = _numpy()
    per_lane_cont = not isinstance(continue_on_miss, bool)

    def _cont(li: int) -> bool:
        return (
            bool(continue_on_miss[li]) if per_lane_cont else continue_on_miss
        )

    results: list[VecLaneSchedule | None] = [None] * len(lanes)
    groups: dict[int, list[int]] = {}
    for li, (cw, win_a, win_d) in enumerate(lanes):
        comm = comms[li] if comms is not None else None
        comm_model = comm if comm is not None else cw.platform.comm
        if cw.has_resources or type(comm_model) is not SharedBus:
            results[li] = _lane_from_kernel(
                kernel_schedule_edf(
                    cw, win_a, win_d, comm=comm,
                    continue_on_miss=_cont(li),
                )
            )
        else:
            comm_model.reset()
            groups.setdefault(cw.m, []).append(li)

    BIG = np.iinfo(np.int64).max
    for m, members in groups.items():
        L = len(members)
        st = _lane_stack([lanes[li][0] for li in members])
        n_arr = st.n_arr
        n_max = st.n_max
        _succ_pad, succ_cnt, _s_max = st.succ()
        cpen_rows, pen_rows, rank, proc_rank, indeg0 = st.sched()
        soff, sidx, ssz = st.csr()
        scnt_flat = succ_cnt.ravel()

        # Per-call state: the metric-dependent windows, the per-lane
        # communication delay, and a working in-degree copy.  The
        # window fill runs through one ``fromiter`` pass + one masked
        # scatter instead of L row assignments (the row-major order of
        # the padded mask is exactly lane-major, task-minor).
        win_a = np.zeros((L, n_max), dtype=np.float64)
        win_d = np.full((L, n_max), np.inf, dtype=np.float64)
        total_n = int(n_arr.sum())
        valid = np.arange(n_max) < n_arr[:, None]
        win_a[valid] = np.fromiter(
            chain.from_iterable(lanes[li][1] for li in members),
            dtype=np.float64,
            count=total_n,
        )
        win_d[valid] = np.fromiter(
            chain.from_iterable(lanes[li][2] for li in members),
            dtype=np.float64,
            count=total_n,
        )

        def _delay_of(li: int) -> float:
            comm = comms[li] if comms is not None else None
            model = comm if comm is not None else lanes[li][0].platform.comm
            return model.per_item_delay

        per_item = np.fromiter(
            (_delay_of(li) for li in members), dtype=np.float64, count=L
        )
        indeg_rem = indeg0.copy()
        if per_lane_cont:
            stop_on_miss = np.array(
                [not continue_on_miss[li] for li in members], dtype=bool
            )
        else:
            stop_on_miss = np.full(L, not continue_on_miss, dtype=bool)
        fastmath = vec_fastmath()

        # EDF priorities are static — a task's (deadline, id-rank) pop
        # key never changes while it waits — so sort each lane's tasks
        # once and keep the ready set as a bitmap *in priority
        # coordinates*.  The pop is then a single boolean argmax (first
        # ready task in priority order), exactly the heap's minimum.
        # Fast-math keeps only the deadline key: a stable argsort makes
        # deadline ties resolve by array position instead of id rank.
        if fastmath:
            order = np.argsort(win_d, axis=1, kind="stable")
        else:
            order = np.lexsort((rank, win_d), axis=1)
        inv_order = np.empty_like(order)
        np.put_along_axis(
            inv_order,
            order,
            np.broadcast_to(np.arange(n_max), (L, n_max)),
            axis=1,
        )
        prio_ready = np.take_along_axis(indeg_rem == 0, order, axis=1)

        finish = np.full((L, n_max), -np.inf)  # -inf marks "not placed"
        proc_free = np.zeros((L, m), dtype=np.float64)
        feasible = np.ones(L, dtype=bool)
        failed = np.full(L, -1, dtype=np.int64)
        alive = n_arr > 0
        ar = np.arange(L)
        base = ar * n_max
        basem = ar * m
        # Data-ready state, decomposed instead of materialized: the
        # reference value is ``max(win_a, max over placed preds p of
        # (q == q_p ? f_p : f_p + size·delay))``.  The local term
        # ``f_p`` is always dominated by ``proc_free[q_p]`` (processor
        # frontiers are nondecreasing and equal ``f_p`` the moment p
        # places), so only the *remote* contributions matter — and
        # their per-processor maximum is fully described by a top-2
        # over processors: ``v1`` (best remote value), ``p1`` (the
        # processor holding it; -1 while only the arrival counts),
        # ``v2`` (best over the other processors).  The row a pop
        # needs is then ``q == p1 ? v2 : v1`` — three scalars per task
        # instead of an m-vector, and every edge-push update is a
        # width-[edges] op.  All combining is IEEE max (exact,
        # order-independent), so the decomposition is bit-identical.
        v1 = win_a.copy()
        p1v = np.full((L, n_max), -1, dtype=np.int64)
        v2 = np.full((L, n_max), -np.inf)
        # Flat views for gather-by-take: cheaper than advanced
        # indexing, and they alias the buffers the scatters write, so
        # every gather sees the current state.
        wd_flat = win_d.ravel()
        order_flat = order.ravel()
        indeg_flat = indeg_rem.ravel()
        prio_flat = prio_ready.ravel()
        inv_flat = inv_order.ravel()
        v1_f = v1.ravel()
        p1_f = p1v.ravel()
        v2_f = v2.ravel()
        f_flat = None  # bound to fbuf.ravel() below

        # Per-step scratch, allocated once: every hot op in the loop
        # writes through ``out=`` so steps allocate (almost) nothing.
        pos = np.empty(L, dtype=np.int64)
        bpos = np.empty(L, dtype=np.int64)
        cur = np.empty(L, dtype=np.int64)
        curf = np.empty(L, dtype=np.int64)
        rdy = np.empty(L, dtype=bool)
        absdl = np.empty(L, dtype=np.float64)
        misslim = np.empty(L, dtype=np.float64)
        best_f = np.empty(L, dtype=np.float64)
        lane_b = np.empty(L, dtype=bool)
        smin = np.empty(L, dtype=np.float64)
        fmin = np.empty(L, dtype=np.float64)
        bq = np.empty(L, dtype=np.int64)
        g1 = np.empty(L, dtype=np.float64)
        g2 = np.empty(L, dtype=np.float64)
        gp = np.empty(L, dtype=np.int64)
        eqb = np.empty(L, dtype=bool)
        bestr = np.empty(L, dtype=np.int64)
        drow = np.empty((L, m), dtype=np.float64)
        sbuf = np.empty((L, m), dtype=np.float64)
        penb = np.empty((L, m), dtype=np.float64)
        cpenb = np.empty((L, m), dtype=np.float64)
        smask = np.empty((L, m), dtype=np.float64)
        fbuf = np.empty((L, m), dtype=np.float64)
        fmask = np.empty((L, m), dtype=np.float64)
        prb = np.empty((L, m), dtype=np.int64)
        f_flat = fbuf.ravel()
        # Edge-push scratch, sized to the worst single step (every
        # lane placing its highest-degree task at once); per-step
        # slices of these avoid ~a dozen allocations per iteration.
        e_max = int(succ_cnt.max(axis=1).sum()) if L else 0
        eb_t1 = np.empty(e_max, dtype=np.float64)
        eb_t2 = np.empty(e_max, dtype=np.float64)
        eb_tp = np.empty(e_max, dtype=np.int64)
        eb_mx = np.empty(e_max, dtype=np.float64)
        eb_mx2 = np.empty(e_max, dtype=np.float64)
        eb_np1 = np.empty(e_max, dtype=np.int64)
        eb_same = np.empty(e_max, dtype=bool)
        eb_promote = np.empty(e_max, dtype=bool)
        eb_touch = np.empty(e_max, dtype=bool)
        eb_dec = np.empty(e_max, dtype=np.int64)
        eb_new = np.empty(e_max, dtype=bool)
        # Column views: the per-processor reductions below run as
        # chains of width-[L] ufuncs over these — 10-20x faster than
        # numpy's small-last-axis reductions (``min(axis=1)`` walks
        # [L, m] with a strided inner loop of length m).
        drow_c = [drow[:, q] for q in range(m)]
        smask_c = [smask[:, q] for q in range(m)]
        fbuf_c = [fbuf[:, q] for q in range(m)]
        fmask_c = [fmask[:, q] for q in range(m)]
        prb_c = [prb[:, q] for q in range(m)]
        prank_c = [proc_rank[:, q] for q in range(m)]

        while True:
            np.argmax(prio_ready, axis=1, out=pos)  # first ready in order
            np.add(base, pos, out=bpos)
            prio_flat.take(bpos, out=rdy)
            alive &= rdy  # lanes with no ready task left are drained
            if not bool(alive.any()):
                break
            order_flat.take(bpos, out=cur)
            np.add(base, cur, out=curf)
            wd_flat.take(curf, out=absdl)
            v1_f.take(curf, out=g1)
            p1_f.take(curf, out=gp)
            v2_f.take(curf, out=g2)
            pen_rows.take(curf, axis=0, out=penb)
            cpen_rows.take(curf, axis=0, out=cpenb)

            # Expand the top-2 data-ready decomposition into the
            # [L, m] row: v1 everywhere, v2 on the column that holds
            # the top value.
            np.copyto(drow, g1[:, None])
            for q in range(m):
                np.equal(gp, q, out=eqb)
                np.copyto(drow_c[q], g2, where=eqb)
            np.maximum(drow, proc_free, out=sbuf)
            # Lexicographic (start, finish, proc-rank) minimum via
            # staged masks — ineligible processors carry a +inf
            # penalty, so they can never win a stage.  Processor ranks
            # are distinct per lane, so the surviving argmin matches
            # the scalar first-best scan exactly.
            np.add(sbuf, penb, out=smask)
            np.copyto(smin, smask_c[0])
            for q in range(1, m):
                np.minimum(smin, smask_c[q], out=smin)
            np.add(sbuf, cpenb, out=fbuf)  # finish; +inf where ineligible
            np.copyto(fmask, np.inf)
            for q in range(m):
                np.equal(smask_c[q], smin, out=eqb)
                np.copyto(fmask_c[q], fbuf_c[q], where=eqb)
            np.copyto(fmin, fmask_c[0])
            for q in range(1, m):
                np.minimum(fmin, fmask_c[q], out=fmin)
            np.copyto(prb, BIG)
            for q in range(m):
                np.equal(fmask_c[q], fmin, out=eqb)
                np.copyto(prb_c[q], prank_c[q], where=eqb)
            # First-best processor = argmin of rank over the survivors,
            # accumulated column-wise (strict < keeps the first seen).
            np.copyto(bq, 0)
            np.copyto(bestr, prb_c[0])
            for q in range(1, m):
                np.less(prb_c[q], bestr, out=eqb)
                bq[eqb] = q
                np.minimum(bestr, prb_c[q], out=bestr)
            np.add(basem, bq, out=bpos)  # reuse: flat [L, m] address
            f_flat.take(bpos, out=best_f)

            np.isinf(smin, out=lane_b)  # smin == +inf ⇔ no eligible proc
            lane_b &= alive
            if bool(lane_b.any()):
                no_elig = lane_b.copy()
                feasible[no_elig] = False
                failed[no_elig] = cur[no_elig]
                alive &= ~no_elig  # partial, like the scalar early return

            np.add(absdl, MISS_TOLERANCE, out=misslim)
            np.greater(best_f, misslim, out=lane_b)
            lane_b &= alive
            if bool(lane_b.any()):
                miss = lane_b
                feasible[miss] = False
                first = miss & (failed < 0)
                failed[first] = cur[first]
                # Fail-fast lanes stop here (the missed task is never
                # placed); lateness-measuring lanes keep placing.
                alive &= ~(miss & stop_on_miss)

            # Fail-fast already removed missing lanes from ``alive``, so
            # the survivors are exactly the lanes that place this step.
            if bool(alive.all()):
                li_sel, ci, cif, bf, qi = ar, cur, curf, best_f, bq
                pi_sel = per_item
            else:
                li_sel = ar[alive]
                if not li_sel.size:
                    continue
                ci = cur[alive]
                cif = curf[alive]
                bf = best_f[alive]
                qi = bq[alive]
                pi_sel = per_item[alive]
            finish[li_sel, ci] = bf
            proc_free[li_sel, qi] = bf
            prio_flat[base[li_sel] + pos[li_sel]] = False

            # Push the placement along its successor edges (CSR): fold
            # the *remote* arrival ``finish + size · delay`` into each
            # successor's top-2 state and bump its remaining in-degree
            # (the local term rides on ``proc_free``, see above).  Edge
            # addresses are unique this step (one placement per lane,
            # duplicate-free edge lists), so plain gather/modify/
            # scatter is safe (no ufunc.at).
            counts = scnt_flat.take(cif)
            total = int(counts.sum())
            if total:
                cum = np.cumsum(counts)
                pos_e = np.arange(total) + np.repeat(
                    soff.take(cif) - (cum - counts), counts
                )
                tgt = sidx.take(pos_e)
                rows_e = np.repeat(li_sel, counts)
                eflat = rows_e * n_max + tgt
                q_e = np.repeat(qi, counts)
                arr_e = np.repeat(bf, counts)
                arr_e += ssz.take(pos_e) * np.repeat(pi_sel, counts)
                t1 = v1_f.take(eflat, out=eb_t1[:total])
                tp = p1_f.take(eflat, out=eb_tp[:total])
                t2 = v2_f.take(eflat, out=eb_t2[:total])
                # Top-2-by-processor max update with (arr_e, q_e):
                # same processor as the top -> only the top can grow;
                # a larger value from another processor promotes (the
                # old top becomes the runner-up — it already bounds
                # every other processor's best); otherwise the value
                # competes with the runner-up alone.
                same = np.equal(tp, q_e, out=eb_same[:total])
                promote = np.greater(arr_e, t1, out=eb_promote[:total])
                touch = np.logical_or(same, promote, out=eb_touch[:total])
                promote &= ~same
                mx = np.maximum(t1, arr_e, out=eb_mx[:total])
                untouched = np.logical_not(touch, out=eb_new[:total])
                np.copyto(mx, t1, where=untouched)
                v1_f[eflat] = mx
                np1 = eb_np1[:total]
                np.copyto(np1, tp)
                np.copyto(np1, q_e, where=promote)
                p1_f[eflat] = np1
                mx2 = np.maximum(t2, arr_e, out=eb_mx2[:total])
                np.copyto(mx2, t1, where=promote)
                np.copyto(mx2, t2, where=same)
                v2_f[eflat] = mx2
                dec = indeg_flat.take(eflat, out=eb_dec[:total])
                dec -= 1
                indeg_flat[eflat] = dec
                newly = np.equal(dec, 0, out=eb_new[:total])
                if bool(newly.any()):
                    nflat = eflat[newly]
                    nrow = rows_e[newly]
                    prio_flat[nrow * n_max + inv_flat.take(nflat)] = True

        placed = finish != -np.inf
        lateness = np.where(placed, finish - win_d, -np.inf).max(
            axis=1, initial=-np.inf
        )
        makespan = np.where(placed, finish, -np.inf).max(
            axis=1, initial=-np.inf
        )
        any_placed = placed.any(axis=1)
        feas_l = feasible.tolist()
        fail_l = failed.tolist()
        mk_l = makespan.tolist()
        la_l = lateness.tolist()
        any_l = any_placed.tolist()
        for b, li in enumerate(members):
            ap = any_l[b]
            results[li] = VecLaneSchedule(
                lanes[li][0],
                feas_l[b],
                fail_l[b],
                mk_l[b] if ap else 0.0,
                la_l[b] if ap else 0.0,
                ap,
            )
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Seed-batch driver for the paired engine
# ----------------------------------------------------------------------


def batch_supported(config: "TrialConfig") -> bool:
    """Whether the seed-batch pipeline may judge *config* lanes.

    The kernel envelope plus a batchable estimator; anything else is
    judged per trial by :func:`repro.experiments.runner.run_trial`
    (which itself dispatches vec → kernel → reference per config).
    """
    from .trial import kernel_supported

    if not kernel_supported(config):
        return False
    try:
        est = get_estimator(config.estimator)
    except Exception:
        return False
    return est.name in _BATCH_ESTIMATORS


def paired_outcomes(
    cells: Sequence[tuple[int, "TrialConfig"]],
    seeds: Sequence[int],
    contexts: Sequence["TrialContext"],
    use_kernel: bool | None = None,
) -> dict[tuple[int, int], "TrialOutcome"]:
    """All ``(series, seed)`` outcomes of one paired chunk, batch-first.

    *contexts* pairs with *seeds* (one shared workload per seed — the
    caller guarantees every series uses the same workload params).  For
    each supported series the weight stage runs as one
    :func:`vec_weights_batch` across the seed lanes and the EDF stage
    as one :func:`vec_schedule_edf_batch`; slicing (inherently
    sequential at trial size) runs per lane through the compiled DP
    with vectorized tail ranking.  Lanes the batch flags as erroneous,
    and unsupported series, fall back to the per-trial dispatcher in
    ``(seed, series)`` nested order, so any exception surfaces exactly
    where the sequential loop would raise it.

    Returns ``{(series_index, seed_position): TrialOutcome}`` with the
    same floats the sequential loop produces.
    """
    from ..experiments.spec import TrialOutcome
    from .slicing import kernel_slice

    out: dict[tuple[int, int], "TrialOutcome"] = {}
    cws = [ctx.compiled for ctx in contexts]
    S = len(seeds)

    scalar_lanes: set[tuple[int, int]] = set()  # (si, seed_pos) retries
    prepared: dict[int, list] = {}
    # One lockstep EDF call covers *every* series of the chunk: the
    # per-step fixed cost of the vectorized scheduler is paid once for
    # the whole (series x seed) block instead of once per series.
    edf_lanes: list[tuple[int, int]] = []  # (si, seed_pos)
    edf_args: list = []
    edf_comms: list = []
    edf_cont: list[bool] = []
    any_comm = False
    for si, config in cells:
        if not batch_supported(config):
            scalar_lanes.update((si, sp) for sp in range(S))
            continue
        metric = get_metric(config.metric, config.adaptive)
        est_obj = get_estimator(config.estimator)
        ests = vec_estimates_batch(cws, est_obj.name)
        weights = vec_weights_batch(cws, metric, ests, est_obj.name)
        if config.contention_bus:
            from ..system.interconnect import ContentionBus

            def make_comm(c=config):
                return ContentionBus(c.workload.bus_delay_per_item)

            any_comm = True
        else:
            make_comm = None
        lane_rows: list = [None] * S
        for sp in range(S):
            if ests[sp] is None or weights[sp] is None:
                scalar_lanes.add((si, sp))
                continue
            ka = kernel_slice(cws[sp], metric, weights[sp], use_vec=True)
            lane_rows[sp] = ka
            edf_lanes.append((si, sp))
            edf_args.append((cws[sp], ka.win_a, ka.win_d))
            edf_comms.append(None if make_comm is None else make_comm())
            edf_cont.append(config.measure_lateness)
        prepared[si] = [lane_rows, ests]

    sched_by: dict[tuple[int, int], VecLaneSchedule] = {}
    if edf_args:
        scheds = vec_schedule_edf_batch(
            edf_args,
            comms=edf_comms if any_comm else None,
            continue_on_miss=edf_cont,
        )
        sched_by = dict(zip(edf_lanes, scheds))

    from ..experiments.runner import run_trial

    for sp in range(S):
        for si, config in cells:
            if (si, sp) in scalar_lanes:
                out[(si, sp)] = run_trial(
                    config, seeds[sp], contexts[sp], use_kernel
                )
                continue
            lane_rows, ests = prepared[si]
            ka = lane_rows[sp]
            ks = sched_by[(si, sp)]
            if config.measure_lateness or ks.feasible:
                max_lateness = ks.max_lateness()
            else:
                max_lateness = float("nan")
            out[(si, sp)] = TrialOutcome(
                success=ks.feasible,
                degenerate=ka.degenerate,
                n_tasks=cws[sp].n,
                min_laxity=ka.min_laxity(ests[sp]),
                makespan=ks.makespan,
                max_lateness=max_lateness,
                failed_task=ks.failed_task,
            )
    return out
