"""Kernelized EDF list scheduling over a compiled workload (§5.4).

The int-indexed twin of :meth:`repro.sched.edf.EdfListScheduler.schedule`:
the ready queue heap-operates on ``(absolute_deadline, task_rank,
task_index)`` tuples, placement probes read execution times straight
from the dense WCET matrix (``-1.0`` = ineligible), and co-located
predecessors skip the communication model entirely.  The
:class:`~repro.system.interconnect.SharedBus` cost formula is inlined
(it is the default model everywhere); any other model — including the
stateful :class:`~repro.system.interconnect.ContentionBus`, whose
``transfer`` calls must happen in exactly the reference order — goes
through the model object with the original processor-id strings.

Bit-identity notes:

* heap tie-breaks compare precomputed string ranks, which order like
  the reference's ``(deadline, tid)`` string tuples; keys are unique
  per task, so the pop sequence is identical;
* the placement key ``(start, finish, proc_rank)`` reproduces the
  reference's ``(start, start + c, proc_id)`` processor tie-break;
* every float expression (start maximization, the post-commit
  ``max(data_ready, free, floor, arrival)``, the ``+ 1e-9`` miss
  tolerance) is copied verbatim;
* on a deadline miss under fail-fast the missed task is *not* recorded
  (the reference returns before appending), so makespan/lateness see
  the same partial schedule.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from ..errors import SchedulingError
from ..sched.schedule import Schedule, ScheduledTask
from ..system.interconnect import CommunicationModel, SharedBus
from .compiled import CompiledWorkload

__all__ = ["KernelSchedule", "kernel_schedule_edf", "MISS_TOLERANCE"]

#: The reference scheduler's absolute-deadline slack for the miss test
#: (``finish > absdl + MISS_TOLERANCE``) — shared with the vectorized
#: batch engine so both paths apply the very same float expression.
MISS_TOLERANCE = 1e-9


class KernelSchedule:
    """Array-form (possibly partial) schedule from :func:`kernel_schedule_edf`."""

    __slots__ = (
        "cw",
        "feasible",
        "failed",
        "failure_reason",
        "placed",
        "order",
        "start",
        "finish",
        "proc_of",
        "win_a",
        "win_d",
    )

    def __init__(self, cw: CompiledWorkload, win_a, win_d) -> None:
        n = cw.n
        self.cw = cw
        self.feasible = True
        self.failed: int = -1
        self.failure_reason = ""
        self.placed = bytearray(n)
        self.order: list[int] = []  # placement order (= entries dict order)
        self.start = [0.0] * n
        self.finish = [0.0] * n
        self.proc_of = [-1] * n
        self.win_a = win_a
        self.win_d = win_d

    @property
    def failed_task(self) -> str | None:
        return self.cw.ids[self.failed] if self.failed >= 0 else None

    @property
    def makespan(self) -> float:
        """Latest finish over placed tasks (0 when empty) — exact max."""
        finish = self.finish
        return max((finish[i] for i in self.order), default=0.0)

    def max_lateness(self) -> float:
        """``max_i (f_i − D_i)`` over placed tasks — exact max."""
        if not self.order:
            raise SchedulingError("empty schedule has no lateness")
        finish, win_d = self.finish, self.win_d
        return max(finish[i] - win_d[i] for i in self.order)

    def to_schedule(self) -> Schedule:
        """Materialize the reference :class:`Schedule` (bit-identical,
        including the entries' placement-order dict insertion)."""
        cw = self.cw
        ids = cw.ids
        proc_ids = cw.proc_ids
        sched = Schedule(
            feasible=self.feasible,
            failed_task=self.failed_task,
            failure_reason=self.failure_reason,
            scheduler_name="EDF-LIST",
        )
        for i in self.order:
            sched.entries[ids[i]] = ScheduledTask(
                task_id=ids[i],
                processor=proc_ids[self.proc_of[i]],
                start=self.start[i],
                finish=self.finish[i],
                arrival=self.win_a[i],
                absolute_deadline=self.win_d[i],
            )
        return sched


def kernel_schedule_edf(
    cw: CompiledWorkload,
    win_a: Sequence[float],
    win_d: Sequence[float],
    *,
    comm: CommunicationModel | None = None,
    continue_on_miss: bool = False,
) -> KernelSchedule:
    """EDF-list-schedule the compiled workload under the given windows.

    *win_a*/*win_d* are insertion-indexed arrival/absolute-deadline
    arrays (e.g. from a :class:`~repro.kernel.slicing.KernelAssignment`,
    which always covers every task).  *comm* defaults to the platform's
    model; its state is reset first, like the reference.
    """
    comm_model = comm if comm is not None else cw.platform.comm
    comm_model.reset()

    n, m = cw.n, cw.m
    ids = cw.ids
    rank = cw.rank
    pred_ps = cw.pred_ps
    succ_lists = cw.succ_lists
    wcet_pp = cw.wcet_pp
    elig_rows = cw.elig_rows
    proc_ids = cw.proc_ids
    proc_rank = cw.proc_rank
    resources = cw.resources
    has_resources = cw.has_resources

    shared_bus = type(comm_model) is SharedBus
    per_item = comm_model.per_item_delay if shared_bus else 0.0
    cost = comm_model.cost
    transfer = comm_model.transfer

    result = KernelSchedule(cw, win_a, win_d)
    placed = result.placed
    order = result.order
    start_arr = result.start
    finish_arr = result.finish
    proc_of = result.proc_of

    proc_free = [0.0] * m
    resource_free: dict[str, float] = {}
    indeg_rem = list(cw.indeg)
    ready = [
        (win_d[i], rank[i], i) for i in range(n) if indeg_rem[i] == 0
    ]
    heapq.heapify(ready)
    heappop = heapq.heappop
    heappush = heapq.heappush

    while ready:
        _, _, i = heappop(ready)
        arrival = win_a[i]
        absdl = win_d[i]

        res = resources[i] if has_resources else ()
        if res:
            resource_floor = max(
                (resource_free.get(r, 0.0) for r in res), default=0.0
            )
        else:
            resource_floor = 0.0

        # Placed predecessors, their finishes, and message sizes do not
        # depend on the probed processor: resolve them once.  On the
        # shared bus the cross-processor arrival time is probe-invariant
        # too, so it is precomputed per edge (same operands, same bits).
        preds_i = pred_ps[i]
        if shared_bus:
            incoming = [
                (proc_of[p], finish_arr[p], finish_arr[p] + size * per_item)
                for p, size in preds_i
                if placed[p]
            ]
        else:
            incoming = [
                (proc_of[p], finish_arr[p], size)
                for p, size in preds_i
                if placed[p]
            ]

        # Probe every eligible processor with nominal costs.  The best
        # placement is tracked as scalars under the reference's
        # (start, finish, proc-id) lexicographic order — ranks compare
        # like the id strings and are unique, so no further tie-break
        # component is needed.
        q = -1
        start = finish = 0.0
        b_rank = 0
        for cand_q, c in elig_rows[i]:
            s = arrival
            if shared_bus:
                for sq, pf, arrived in incoming:
                    ready_t = pf if sq == cand_q else arrived
                    if ready_t > s:
                        s = ready_t
            else:
                for sq, pf, size in incoming:
                    if sq == cand_q:
                        ready_t = pf
                    else:
                        ready_t = pf + cost(
                            proc_ids[sq], proc_ids[cand_q], size
                        )
                    if ready_t > s:
                        s = ready_t
            free = proc_free[cand_q]
            if free > s:
                s = free
            if resource_floor > s:
                s = resource_floor
            if q < 0 or s < start:
                q = cand_q
                start = s
                finish = s + c
                b_rank = proc_rank[cand_q]
            elif s == start:
                f = s + c
                if f < finish or (f == finish and proc_rank[cand_q] < b_rank):
                    q = cand_q
                    finish = f
                    b_rank = proc_rank[cand_q]
        if q < 0:
            result.feasible = False
            result.failed = i
            result.failure_reason = (
                f"task {ids[i]!r} has no eligible processor on this platform"
            )
            return result

        # Commit transfers on the chosen processor (stateful models may
        # push the data-ready time past the nominal estimate).  The
        # ``incoming`` list is the placed-predecessor subsequence in
        # predecessor order, so walking it preserves the reference's
        # ``transfer`` call sequence.
        data_ready = 0.0
        if shared_bus:
            for sq, pf, arrived in incoming:
                v = pf if sq == q else arrived
                if v > data_ready:
                    data_ready = v
        else:
            for sq, pf, size in incoming:
                if sq == q:
                    if pf > data_ready:
                        data_ready = pf
                    continue
                arrived = transfer(proc_ids[sq], proc_ids[q], size, pf)
                if arrived > data_ready:
                    data_ready = arrived
        if data_ready > start:
            resource_floor = max(
                (resource_free.get(r, 0.0) for r in res), default=0.0
            )
            start = max(data_ready, proc_free[q], resource_floor, arrival)
            finish = start + wcet_pp[i * m + q]

        if finish > absdl + MISS_TOLERANCE:
            result.feasible = False
            if result.failed < 0:
                result.failed = i
                result.failure_reason = (
                    f"task {ids[i]!r} finishes at {finish:g} past its "
                    f"absolute deadline {absdl:g}"
                )
            if not continue_on_miss:
                return result

        placed[i] = 1
        order.append(i)
        start_arr[i] = start
        finish_arr[i] = finish
        proc_of[i] = q
        proc_free[q] = finish
        for r in res:
            resource_free[r] = finish

        for j in succ_lists[i]:
            left = indeg_rem[j] - 1
            indeg_rem[j] = left
            if not left:
                heappush(ready, (win_d[j], rank[j], j))

    if len(order) != n and result.feasible:
        raise SchedulingError(
            "ready queue drained before all tasks were scheduled "
            "(the task graph must be cyclic)"
        )
    return result
