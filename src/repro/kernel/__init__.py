"""Compiled trial kernel — flat integer-indexed fast paths.

Compiles a generated workload once into contiguous arrays
(:class:`CompiledWorkload`) and runs the trial hot loop — metric weight
evaluation, Algorithm SLICING, EDF list scheduling — against them,
bit-identical to the string-keyed reference implementation in
``repro.core`` / ``repro.sched`` (which stays available as the oracle
via ``engine="paired-ref"`` or ``REPRO_KERNEL=0``).

A third tier, :mod:`repro.kernel.vec`, lifts the weight stage, the
slicing tail ranking, and a lockstep seed-batch EDF engine onto NumPy
arrays — engaged automatically for wide seed batches when NumPy is
importable (``REPRO_VEC=0`` opts out, ``=1`` forces it everywhere) —
still bit-identical on the default tie-break, with an automatic
pure-Python fallback when NumPy is absent.

See ``docs/performance.md`` for the architecture and the measured
speedups.
"""

from .compiled import CompiledWorkload, compile_workload
from .edf import KernelSchedule, kernel_schedule_edf
from .metrics import KERNEL_METRIC_TYPES, kernel_weights
from .slicing import KernelAssignment, kernel_slice
from .trial import (
    kernel_enabled,
    kernel_supported,
    run_trial_kernel,
    run_trial_vec,
)
from .vec import (
    VEC_MIN_LANES,
    vec_available,
    vec_enabled,
    vec_fastmath,
    vec_mode,
)

__all__ = [
    "CompiledWorkload",
    "compile_workload",
    "KernelAssignment",
    "kernel_slice",
    "KernelSchedule",
    "kernel_schedule_edf",
    "KERNEL_METRIC_TYPES",
    "kernel_weights",
    "kernel_enabled",
    "kernel_supported",
    "run_trial_kernel",
    "run_trial_vec",
    "VEC_MIN_LANES",
    "vec_available",
    "vec_enabled",
    "vec_fastmath",
    "vec_mode",
]
