"""Compiled trial kernel — flat integer-indexed fast paths.

Compiles a generated workload once into contiguous arrays
(:class:`CompiledWorkload`) and runs the trial hot loop — metric weight
evaluation, Algorithm SLICING, EDF list scheduling — against them,
bit-identical to the string-keyed reference implementation in
``repro.core`` / ``repro.sched`` (which stays available as the oracle
via ``engine="paired-ref"`` or ``REPRO_KERNEL=0``).

See ``docs/performance.md`` for the architecture and the measured
speedups.
"""

from .compiled import CompiledWorkload, compile_workload
from .edf import KernelSchedule, kernel_schedule_edf
from .metrics import KERNEL_METRIC_TYPES, kernel_weights
from .slicing import KernelAssignment, kernel_slice
from .trial import kernel_enabled, kernel_supported, run_trial_kernel

__all__ = [
    "CompiledWorkload",
    "compile_workload",
    "KernelAssignment",
    "kernel_slice",
    "KernelSchedule",
    "kernel_schedule_edf",
    "KERNEL_METRIC_TYPES",
    "kernel_weights",
    "kernel_enabled",
    "kernel_supported",
    "run_trial_kernel",
]
