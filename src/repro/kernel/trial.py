"""Kernel trial execution: dispatch, support predicate, env switch.

The kernel replaces the string-keyed reference pipeline for the
configurations the Monte Carlo experiments actually sweep — relaxed
locality, the plain EDF list scheduler, the paper's four metrics.
Everything else (strict locality's clustering pre-assignment, the
SL/FIFO/LLF scheduler variants, custom metric objects) falls back to
the reference implementation, which remains the oracle the kernel is
tested bit-identical against.

``REPRO_KERNEL=0`` disables the kernel globally (the environment is
read per call, so tests and the CLI can flip it without re-imports);
``engine="paired-ref"`` in :func:`repro.experiments.runner.run_experiment`
forces the reference path for one run regardless of the environment.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from ..core.estimation import WCET_AVG, WCET_MAX, WCET_MIN, get_estimator
from ..core.metrics import get_metric
from ..system.interconnect import ContentionBus
from .metrics import KERNEL_METRIC_TYPES, kernel_weights
from .edf import kernel_schedule_edf
from .slicing import kernel_slice

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.context import TrialContext
    from ..experiments.spec import TrialConfig, TrialOutcome

__all__ = [
    "kernel_enabled",
    "kernel_supported",
    "run_trial_kernel",
    "run_trial_vec",
]


def kernel_enabled() -> bool:
    """Whether the kernel fast path is globally enabled.

    Controlled by the ``REPRO_KERNEL`` environment variable: unset or
    any value but ``"0"`` means enabled.  Read on every call so a test
    or CLI invocation can flip it at runtime.
    """
    return os.environ.get("REPRO_KERNEL", "1") != "0"


def kernel_supported(config: "TrialConfig") -> bool:
    """Whether *config* lies inside the kernel's bit-identical envelope."""
    if config.locality != "relaxed":
        return False
    # Exactly the registry names resolving to the plain EDF scheduler
    # (subclasses substitute other priorities via a proxy assignment,
    # which the kernel heap cannot reproduce).
    if config.scheduler.upper() not in ("EDF-LIST", "EDF"):
        return False
    metric = config.metric
    if not isinstance(metric, str):
        return type(metric) in KERNEL_METRIC_TYPES
    return metric.upper().replace("_", "-") in (
        "PURE",
        "NORM",
        "ADAPT-G",
        "ADAPTG",
        "ADAPT-L",
        "ADAPTL",
    )


def run_trial_kernel(
    config: "TrialConfig", context: "TrialContext", use_vec: bool = False
) -> "TrialOutcome":
    """One generate→slice→schedule trial on the compiled fast path.

    Produces the exact :class:`TrialOutcome` of the reference
    :func:`repro.experiments.runner.run_trial` for every supported
    config (see :func:`kernel_supported`); callers must gate on that
    predicate.  ``use_vec=True`` routes the weight stage and the
    slicing tail ranking through :mod:`repro.kernel.vec` (same floats,
    array ops); callers should additionally gate on
    :func:`repro.kernel.vec.vec_available`.
    """
    from ..experiments.spec import TrialOutcome

    cw = context.compiled
    metric = get_metric(config.metric, config.adaptive)
    est_obj = get_estimator(config.estimator)
    est_key = est_obj.name
    if (
        est_obj is WCET_AVG or est_obj is WCET_MAX or est_obj is WCET_MIN
    ):
        # The stateless per-task estimators combine the platform-valid
        # WCET rows directly — no string-keyed estimate map needed.
        est = cw.estimates_from_vals(est_key, est_obj.combine)
    else:
        # Graph-aware or custom strategies go through the reference map.
        est_map = context.estimates_for(config.estimator)
        est = cw.estimates_list(est_key, est_map)
    if use_vec:
        from .vec import vec_weights

        weights = vec_weights(cw, metric, est, est_key=est_key)
    else:
        weights = kernel_weights(cw, metric, est, est_key=est_key)
    ka = kernel_slice(cw, metric, weights, use_vec=use_vec)

    comm = (
        ContentionBus(config.workload.bus_delay_per_item)
        if config.contention_bus
        else None
    )
    ks = kernel_schedule_edf(
        cw,
        ka.win_a,
        ka.win_d,
        comm=comm,
        continue_on_miss=config.measure_lateness,
    )

    if config.measure_lateness or ks.feasible:
        max_lateness = ks.max_lateness()
    else:
        max_lateness = float("nan")  # fail-fast schedules are partial
    return TrialOutcome(
        success=ks.feasible,
        degenerate=ka.degenerate,
        n_tasks=cw.n,
        min_laxity=ka.min_laxity(est),
        makespan=ks.makespan,
        max_lateness=max_lateness,
        failed_task=ks.failed_task,
    )


def run_trial_vec(
    config: "TrialConfig", context: "TrialContext"
) -> "TrialOutcome":
    """One trial through the vectorized tier (NumPy weight stage and
    tail ranking over the compiled slicing/EDF pipeline).

    Bit-identical to :func:`run_trial_kernel` and the reference for
    every supported config; callers gate on :func:`kernel_supported`
    and :func:`repro.kernel.vec.vec_available` (when NumPy is absent
    the dispatcher must fall through to the pure-Python kernel).
    """
    return run_trial_kernel(config, context, use_vec=True)


