"""Array-native metric weight evaluation (kernel fast path of §4.5).

Produces, for each of the paper's four metrics, the per-task weight
array the slicing DP accumulates — ``c̄_i`` for PURE/NORM, the virtual
execution time ``ĉ_i`` for ADAPT-G/ADAPT-L — as a flat immutable
``tuple[float, ...]`` in task-insertion order.

Bit-identity notes (each mirrors the reference in
:mod:`repro.core.metrics` / :mod:`repro.graph.algorithms` operation for
operation):

* the ``c_thres`` mean and the ADAPT-G total workload are summed in
  graph **insertion order** (the estimate array's order), exactly like
  ``AdaptiveParams.threshold`` and ``average_parallelism``;
* static levels accumulate ``cost + max(succ levels, default 0.0)``
  over the reversed topological order, like ``static_levels``;
* the surplus factors use the very same expressions
  (``1.0 + k_g * xi / m``, ``1.0 + k_l * |Ψ_i| / m``) and the same
  ``c >= c_thres`` inflation guard, so every weight is the same float.
"""

from __future__ import annotations

from ..core.metrics import (
    AdaptGMetric,
    AdaptLMetric,
    CriticalPathMetric,
    NormMetric,
    PureMetric,
)
from ..errors import GraphError, MetricError
from .compiled import CompiledWorkload

__all__ = ["kernel_weights", "KERNEL_METRIC_TYPES"]

#: Exact metric types the kernel understands.  Subclasses are excluded
#: on purpose: they may override the sharing rule, and the kernel would
#: silently compute the base-class behaviour instead.
KERNEL_METRIC_TYPES = (PureMetric, NormMetric, AdaptGMetric, AdaptLMetric)


def _threshold(cw: CompiledWorkload, params, est: list[float]) -> float:
    if params.c_thres is not None:
        return params.c_thres
    if not est:
        raise MetricError("cannot derive c_thres from an empty task set")
    mean = sum(est) / len(est)
    return params.c_thres_factor * mean


def _average_parallelism(cw: CompiledWorkload, est: list[float]) -> float:
    """``xi`` (eq. 7) over the weight array — see ``average_parallelism``."""
    n = cw.n
    if n == 0:
        raise GraphError("average parallelism of an empty graph is undefined")
    total = sum(est)
    topo, succ_off, succ = cw.topo, cw.succ_off, cw.succ
    levels = [0.0] * n
    for pos in range(n - 1, -1, -1):
        i = topo[pos]
        tail = max(
            (levels[succ[k]] for k in range(succ_off[i], succ_off[i + 1])),
            default=0.0,
        )
        levels[i] = est[i] + tail
    longest = max(levels)
    if longest <= 0.0:
        raise GraphError("longest path length must be positive")
    return total / longest


def kernel_weights(
    cw: CompiledWorkload,
    metric: CriticalPathMetric,
    est: list[float],
    est_key: str | None = None,
) -> tuple[float, ...]:
    """The metric's weight array over *cw*, in insertion order.

    *est* is the estimate array (``cw.estimates_list(...)`` output).
    When *est_key* names the estimator the array came from, the result
    is memoized on the workload — one weight array per (metric, params,
    estimator) serves every series of a trial.  Anonymous estimate
    arrays (``est_key=None``) are computed fresh each call.  Only the
    exact types in :data:`KERNEL_METRIC_TYPES` are accepted;
    dispatchers gate on :func:`repro.kernel.trial.kernel_supported`.

    The returned array is an immutable tuple, never the caller's *est*
    object: PURE/NORM weights *equal* the estimates, but handing back
    (and memoizing) the estimate list itself would alias the weight
    cache to the estimate cache — one downstream mutation would then
    corrupt both for every later series of the trial.  PURE and NORM
    still share one tuple per estimator (so their slicing runs share
    one ``succ_w_master``), but that tuple is owned by the weight cache
    alone.
    """
    key = None
    cache = cw.weights_cache()
    if est_key is not None:
        name = metric.name
        if isinstance(metric, (AdaptGMetric, AdaptLMetric)):
            p = metric.params
            key = (name, p.k_g, p.k_l, p.c_thres, p.c_thres_factor, est_key)
        else:
            key = (name, est_key)
        cached = cache.get(key)
        if cached is not None:
            return cached

    if isinstance(metric, (PureMetric, NormMetric)):
        # One shared immutable copy of the estimates per estimator:
        # cached under a key no metric name can collide with, so PURE
        # and NORM resolve to the same tuple (identity matters for the
        # per-weights succ_w_master memo) without aliasing *est*.
        if est_key is not None:
            est_copy_key = ("__est_copy__", est_key)
            weights = cache.get(est_copy_key)
            if weights is None:
                weights = tuple(est)
                cache[est_copy_key] = weights
        else:
            weights = tuple(est)
    elif isinstance(metric, AdaptGMetric):
        m = cw.m
        if m < 1:
            raise MetricError("m must be at least 1")
        xi = _average_parallelism(cw, est)
        c_thres = _threshold(cw, metric.params, est)
        surplus = 1.0 + metric.params.k_g * xi / m
        weights = tuple(
            c * surplus if c >= c_thres else c for c in est
        )
    elif isinstance(metric, AdaptLMetric):
        m = cw.m
        if m < 1:
            raise MetricError("m must be at least 1")
        sizes = cw.parallel_set_sizes()
        c_thres = _threshold(cw, metric.params, est)
        k_l = metric.params.k_l
        weights = tuple(
            c * (1.0 + k_l * sizes[i] / m) if c >= c_thres else c
            for i, c in enumerate(est)
        )
    else:  # pragma: no cover - dispatch gates on kernel_supported
        raise MetricError(
            f"kernel has no fast path for metric {type(metric).__name__}"
        )
    if key is not None:
        cache[key] = weights
    return weights
