"""Algorithm SLICING over a compiled workload (kernel fast path).

One function runs the whole deadline distribution — critical-path
search, window slicing, boundary projection, pin propagation — against
the flat arrays of a :class:`~repro.kernel.compiled.CompiledWorkload`.
It is a line-for-line translation of
:func:`repro.core.slicing.slice_with_state` +
:func:`repro.core.paths.find_critical_path` with every string-keyed
dict replaced by an int-indexed array:

* pins (`arrivals`/`deadlines`) become float arrays plus presence
  bytearrays;
* the per-head DP memos (`dp_cache`) keep their int-keyed dist/count/
  parent dicts but gain a *reached-set bitmask*, so the invalidation
  sweeps (`path_set`/`new_deadline_pins` intersections) become single
  `&` operations;
* the best-candidate memo becomes a flat list with an UNSET sentinel;
* lexicographic path tie-breaks compare precomputed string-rank
  tuples, which order exactly like the id strings.

Bit-identity is the contract: the DP relaxation order (topological
suffix × successor-insertion order, filtered to Π), every floating-point
expression of the scoring/sharing/projection code, and the tie-breaking
total order are preserved operation for operation, so the produced
windows, chosen paths, and degenerate flag equal the reference's bit
for bit.  ``tests/kernel`` enforces this against randomized workloads.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Sequence

from ..core.assignment import DeadlineAssignment, TaskWindow
from ..core.metrics import NormMetric
from ..errors import DistributionError, MetricError
from ..types import Time
from .compiled import CompiledWorkload

__all__ = ["KernelAssignment", "kernel_slice"]

_UNSET = object()  # "no memoized best candidate" sentinel


class KernelAssignment:
    """Array-form deadline assignment produced by :func:`kernel_slice`.

    Holds per-task arrivals and absolute deadlines (insertion-indexed),
    the chosen paths as int tuples, and the degenerate flag — enough for
    the kernel EDF stage and the trial aggregates without materializing
    a :class:`~repro.core.assignment.DeadlineAssignment`.
    """

    __slots__ = ("win_a", "win_d", "paths", "degenerate", "metric_name")

    def __init__(
        self,
        win_a: list[float],
        win_d: list[float],
        paths: list[tuple[int, ...]],
        degenerate: bool,
        metric_name: str,
    ) -> None:
        self.win_a = win_a
        self.win_d = win_d
        self.paths = paths
        self.degenerate = degenerate
        self.metric_name = metric_name

    def min_laxity(self, est: Sequence[float]) -> float:
        """``min_i (d_i − c̄_i)`` — same floats as the reference.

        Each laxity is ``(D_i − a_i) − c̄_i`` exactly as the reference
        computes it (the relative deadline is stored as that difference
        at window-construction time); ``min`` over floats is exact.
        """
        win_a, win_d = self.win_a, self.win_d
        if not win_a:
            raise DistributionError("empty assignment has no laxity")
        return min(
            (win_d[i] - win_a[i]) - est[i] for i in range(len(win_a))
        )

    def to_assignment(
        self, cw: CompiledWorkload, estimator_name: str = "?"
    ) -> DeadlineAssignment:
        """Materialize the reference-format assignment (bit-identical).

        Windows are inserted path by path in selection order — the very
        insertion order the reference loop produces — so even dict
        iteration order matches.
        """
        ids = cw.ids
        win_a, win_d = self.win_a, self.win_d
        windows: dict[str, TaskWindow] = {}
        for path in self.paths:
            for i in path:
                a_i = win_a[i]
                d_abs = win_d[i]
                windows[ids[i]] = TaskWindow(
                    arrival=a_i,
                    relative_deadline=d_abs - a_i,
                    absolute_deadline=d_abs,
                )
        return DeadlineAssignment(
            windows=windows,
            metric_name=self.metric_name,
            estimator_name=estimator_name,
            paths=[tuple(ids[i] for i in path) for path in self.paths],
            degenerate=self.degenerate,
        )


def kernel_slice(
    cw: CompiledWorkload, metric, weights: Sequence[float],
    use_vec: bool = False,
) -> KernelAssignment:
    """Run Algorithm SLICING on the compiled arrays.

    *metric* must be one of the kernel-supported metric instances (its
    sharing family selects the ratio/deadline formulas); *weights* is
    the matching :func:`~repro.kernel.metrics.kernel_weights` array.

    ``use_vec=True`` lets wide per-head tail scans rank their
    candidates on vectorized laxity/weight arrays (see
    :func:`repro.kernel.vec.vec_tail_rank`); the DP itself stays
    sequential — at trial sizes its per-edge work is too fine-grained
    for arrays to win.  The selected candidates are identical either
    way (the vector path applies the same staged total order and defers
    path-lexicographic ties to the scalar comparator).
    """
    vec_rank = None
    if use_vec:
        from .vec import VEC_TAIL_MIN, vec_available, vec_tail_rank

        if vec_available():
            vec_rank = vec_tail_rank
    n = cw.n
    succ_lists = cw.succ_lists
    pred_ps = cw.pred_ps
    rank = cw.rank
    ids = cw.ids
    norm = metric.kernel_share == "norm"

    # Step 1: pin arrivals of input tasks and deadlines of output tasks.
    arr = [0.0] * n
    has_arr = bytearray(n)
    dl = [0.0] * n
    has_dl = bytearray(n)
    for i in cw.input_idx:
        arr[i] = cw.phasing[i]
        has_arr[i] = 1
    dl_mask = 0  # bitmask twin of has_dl — prunes the tails scan
    for i in cw.output_idx:
        bound = cw.out_deadline[i]
        if bound is None:
            raise DistributionError(
                f"output task {ids[i]!r} has no E-T-E deadline; the slicing "
                "technique needs a window for every output task"
            )
        dl[i] = bound
        has_dl[i] = 1
        dl_mask |= 1 << i

    active = bytearray(b"\x01" * n)
    n_left = n
    order_active: list[int] = list(cw.topo)
    # Π-restricted successor rows (the kernel twin of the reference's
    # succ_active), pre-paired with the successor's weight so the DP
    # inner loop does one unpack instead of two list lookups per edge.
    # Rows of removed tasks are never read, and surviving rows are
    # re-filtered in step 13, so the DP needs no per-edge activity
    # check.  Rows are replaced, never mutated — which lets the initial
    # full-Π rows be shared via the per-weights master memo.
    succ_w: list[list[tuple[int, float]]] = cw.succ_w_master(weights)

    win_a = [0.0] * n
    win_d = [0.0] * n
    chosen_paths: list[tuple[int, ...]] = []
    degenerate = False

    # Per-head memos (see repro.core.slicing for the invalidation rules;
    # dp_mask[h] is the reached set of head h's DP as a bitmask).  Each
    # DP is a dense triple of n-vectors — dist None-sentinelled, cnt and
    # par meaningful only where dist is set.
    dp_dist: list[list[float | None] | None] = [None] * n
    dp_cnt: list[list[int] | None] = [None] * n
    dp_par: list[list[int] | None] = [None] * n
    dp_mask = [0] * n
    best_c: list = [_UNSET] * n
    # Bitmask of heads holding a built DP: the invalidation sweeps walk
    # its set bits (~#heads) instead of scanning all n tasks per step.
    built_mask = 0

    # Incremental global selection.  Every head's current candidate
    # lives in a lazy-deletion min-heap keyed by the selection total
    # order — (R, −weight, −length, head-rank) — so a step reads the
    # winner off the top instead of rescanning every head.  The
    # reference breaks full ties by comparing path id-tuples
    # lexicographically; a path starts at its head, so across heads
    # that comparison is decided at position 0, and ``rank[h]`` alone
    # reproduces it (within one head only stale duplicates can tie,
    # and identity against ``best_c`` filters those).  Stale entries
    # (their head's memo was reset) are popped on contact.  ``dirty``
    # lists heads whose candidate must be (re)computed before the
    # next selection.
    cand_heap: list = []
    dirty: list[int] = list(cw.input_idx)

    while n_left:
        # --- refresh the candidates of invalidated heads --------------
        for h in dirty:
            if not active[h] or not has_arr[h] or best_c[h] is not _UNSET:
                continue  # removed, not (yet) a head, or a duplicate
            dist = dp_dist[h]
            if dist is None:
                # Longest-Σw DP over the Π-restricted topological
                # suffix — relaxation order identical to the
                # reference (suffix order × successor-insertion
                # order), so every dist/cnt/par tie-break matches.
                dist = [None] * n
                cnt = [0] * n
                par = [0] * n
                dist[h] = weights[h]
                cnt[h] = 1
                par[h] = -1
                mask = 1 << h
                for i in order_active[order_active.index(h):]:
                    d_i = dist[i]
                    if d_i is None:
                        continue
                    n_i = cnt[i] + 1
                    for j, w_j in succ_w[i]:
                        cand = d_i + w_j
                        cur = dist[j]
                        if cur is None:
                            dist[j] = cand
                            cnt[j] = n_i
                            par[j] = i
                            mask |= 1 << j
                        elif cand > cur or (
                            cand == cur and n_i > cnt[j]
                        ):
                            dist[j] = cand
                            cnt[j] = n_i
                            par[j] = i
                dp_dist[h] = dist
                dp_cnt[h] = cnt
                dp_par[h] = par
                dp_mask[h] = mask
                built_mask |= 1 << h
            else:
                cnt = dp_cnt[h]
                par = dp_par[h]
                mask = dp_mask[h]

            # Score this head's tails from the DP aggregates.  The
            # scan order is irrelevant (total-order selection), so
            # walking the reached-set bitmask is sound.  The leader
            # is tracked as scalars (l_tail < 0 = none yet).
            l_tail = -1
            l_r = l_w = l_dl = 0.0
            l_len = 0
            leader_path: tuple[int, ...] | None = None
            a_h = arr[h]
            mbits = mask & dl_mask
            if vec_rank is not None and mbits.bit_count() >= VEC_TAIL_MIN:
                # Wide tail set: score every candidate in one array
                # pass.  The staged (r, −Σw, −length) selection matches
                # the scalar scan; full ties fall through to the same
                # path-lexicographic comparator, scanned in the same
                # ascending-index order, so the winner is identical.
                tails = []
                tb = mbits
                while tb:
                    low = tb & -tb
                    tb ^= low
                    tails.append(low.bit_length() - 1)
                ranked = vec_rank(tails, dist, cnt, dl, a_h, norm)
                if ranked is None:
                    raise MetricError(
                        "NORM requires positive execution times"
                    )
                tied, l_r, l_w, l_len = ranked
                l_tail = tied[0]
                if len(tied) > 1:
                    leader_path = _reconstruct(par, l_tail)
                    for t in tied[1:]:
                        path = _reconstruct(par, t)
                        if _rank_lt(rank, path, leader_path):
                            l_tail = t
                            leader_path = path
                l_dl = dl[l_tail]
                mbits = 0
            while mbits:
                low = mbits & -mbits
                mbits ^= low
                t = low.bit_length() - 1
                total_w = dist[t]
                window = dl[t] - a_h
                length = cnt[t]
                if norm:
                    if total_w <= 0.0:
                        raise MetricError(
                            "NORM requires positive execution times"
                        )
                    r = (window - total_w) / total_w
                else:
                    r = (window - total_w) / length
                if l_tail >= 0:
                    if r > l_r:
                        continue
                    if r == l_r:
                        if total_w < l_w:
                            continue
                        if total_w == l_w:
                            if length < l_len:
                                continue
                            if length == l_len:
                                if leader_path is None:
                                    leader_path = _reconstruct(
                                        par, l_tail
                                    )
                                path = _reconstruct(par, t)
                                if not _rank_lt(
                                    rank, path, leader_path
                                ):
                                    continue
                                l_r, l_w, l_len = r, total_w, length
                                l_tail, l_dl = t, dl[t]
                                leader_path = path
                                continue
                l_r, l_w, l_len = r, total_w, length
                l_tail, l_dl = t, dl[t]
                leader_path = None
            if l_tail < 0:
                best_c[h] = None
            else:
                if leader_path is None:
                    leader_path = _reconstruct(par, l_tail)
                local = (l_r, l_w, leader_path, a_h, l_dl)
                best_c[h] = local
                heappush(
                    cand_heap, (l_r, -l_w, -l_len, rank[h], h, local)
                )
        dirty = []

        # --- pick the minimum-R critical path off the heap ------------
        best = None  # (r, weight, path, arr_head, dl_tail)
        while cand_heap:
            top = cand_heap[0]
            if best_c[top[4]] is top[5]:
                best = top[5]
                break
            heappop(cand_heap)

        if best is None:
            # Unreachable for valid DAG workloads (see repro.core.slicing).
            raise DistributionError(
                f"no critical path found with {n_left} task(s) "
                "remaining; the task graph violates the slicing "
                "preconditions"
            )
        _r, path_w, path, a0, d_tail = best
        chosen_paths.append(path)

        # --- step 4: distribute the window over the path --------------
        window = d_tail - a0
        k_len = len(path)
        # Σ weights along the path: 0.0 + w_0 + w_1 + … accumulates the
        # same floats as the reference's sum() over the path.
        total_w = 0.0
        for i in path:
            total_w += weights[i]
        if k_len == 1:
            # Single-task path (the most common case): the boundary
            # chain collapses to [a0, max(a0, d_tail)] regardless of the
            # share (`boundaries[k] = end` overwrites the only interior
            # slot, then the forward pass restores monotonicity), and
            # the projection's ok-audit reduces to the three conditions
            # below — same outcomes as _project_boundaries, no lists.
            i0 = path[0]
            if norm:
                if total_w <= 0.0:
                    raise MetricError(
                        "NORM requires positive execution times"
                    )
                r = (window - total_w) / total_w
                s0 = weights[i0] * (1.0 + r)
            else:
                s0 = weights[i0] + (window - total_w) / k_len
            ok = not s0 < 0.0
            if window <= 0.0:
                ok = False
            else:
                t0 = s0 if s0 > 0.0 else 0.0
                if t0 > window and t0 > window * (1.0 + 1e-12):
                    ok = False
            if a0 > d_tail + 1e-9:
                ok = False
            degenerate = degenerate or not ok
            win_a[i0] = a0
            win_d[i0] = d_tail if d_tail >= a0 else a0
        else:
            if norm:
                if total_w <= 0.0:
                    raise MetricError(
                        "NORM requires positive execution times"
                    )
                r = (window - total_w) / total_w
                shares = [weights[i] * (1.0 + r) for i in path]
            else:
                share = (window - total_w) / k_len
                shares = [weights[i] + share for i in path]
            boundaries, ok = _project_boundaries(
                path, a0, d_tail, shares, arr, has_arr, dl, has_dl
            )
            degenerate = degenerate or not ok
            for pos, i in enumerate(path):
                win_a[i] = boundaries[pos]
                win_d[i] = boundaries[pos + 1]

        path_mask = 0
        for i in path:
            path_mask |= 1 << i

        # --- steps 5–12: attach neighbours to the new spine -----------
        new_pin_mask = 0
        for i in path:
            d_abs = win_d[i]
            a_i = win_a[i]
            for j in succ_lists[i]:
                if active[j] and not (path_mask >> j) & 1:
                    if not has_arr[j] or d_abs > arr[j]:
                        arr[j] = d_abs
                        has_arr[j] = 1
                        best_c[j] = _UNSET
                        dirty.append(j)
            for p, _sz in pred_ps[i]:
                if active[p] and not (path_mask >> p) & 1:
                    if not has_dl[p] or a_i < dl[p]:
                        dl[p] = a_i
                        has_dl[p] = 1
                        dl_mask |= 1 << p
                        new_pin_mask |= 1 << p
        if new_pin_mask:
            mb = built_mask
            while mb:
                low = mb & -mb
                mb ^= low
                h = low.bit_length() - 1
                if dp_mask[h] & new_pin_mask:
                    best_c[h] = _UNSET
                    dirty.append(h)

        # --- step 13: remove the path from Π --------------------------
        for i in path:
            active[i] = 0
            has_arr[i] = 0
            has_dl[i] = 0
        dl_mask &= ~path_mask
        n_left -= k_len
        touched = 0
        for i in path:
            for p, _sz in pred_ps[i]:
                if active[p]:
                    touched |= 1 << p
        while touched:
            low = touched & -touched
            touched ^= low
            p = low.bit_length() - 1
            succ_w[p] = [
                jw for jw in succ_w[p] if not (path_mask >> jw[0]) & 1
            ]
        mb = built_mask
        while mb:
            low = mb & -mb
            mb ^= low
            h = low.bit_length() - 1
            if dp_mask[h] & path_mask:
                dp_dist[h] = None
                dp_cnt[h] = None
                dp_par[h] = None
                dp_mask[h] = 0
                best_c[h] = _UNSET
                built_mask ^= low
                dirty.append(h)
        order_active = [i for i in order_active if active[i]]

    return KernelAssignment(
        win_a, win_d, chosen_paths, degenerate, metric.name
    )


def _reconstruct(par: list[int], tail: int) -> tuple[int, ...]:
    path = [tail]
    node = par[tail]
    while node != -1:
        path.append(node)
        node = par[node]
    path.reverse()
    return tuple(path)


def _rank_lt(
    rank: list[int], a: tuple[int, ...], b: tuple[int, ...]
) -> bool:
    """Whether path *a* orders before *b* by task-id string comparison."""
    return [rank[i] for i in a] < [rank[i] for i in b]


def _project_boundaries(
    path: tuple[int, ...],
    start: Time,
    end: Time,
    shares: list[Time],
    arr: list[float],
    has_arr: bytearray,
    dl: list[float],
    has_dl: bytearray,
) -> tuple[list[Time], bool]:
    """Slice boundaries honouring interior pins — the array twin of
    :func:`repro.core.slicing._project_boundaries` (same expressions,
    same tolerances, same clamp order)."""
    k = len(path)
    ok = True

    window = end - start
    # `s if s > 0.0 else 0.0` ≡ max(0.0, s) for every float (including
    # signed zeros: max keeps its first argument when not less).
    clamped = [s if s > 0.0 else 0.0 for s in shares]
    if min(shares) < 0.0:
        ok = False
    total = sum(clamped)
    if window <= 0.0:
        clamped = [0.0] * k
        ok = False
    elif total > window:
        scale = window / total if total > 0.0 else 0.0
        clamped = [s * scale for s in clamped]
        if total > window * (1.0 + 1e-12):
            ok = False
    elif total < window:
        clamped[-1] += window - total

    boundaries = [start]
    acc = start
    for s in clamped:
        acc += s
        boundaries.append(acc)
    boundaries[k] = end

    for i in range(k - 1, 0, -1):
        cap = boundaries[i + 1]
        t = path[i - 1]
        if has_dl[t] and dl[t] < cap:
            cap = dl[t]
        if boundaries[i] > cap:
            boundaries[i] = cap

    for i in range(1, k + 1):
        floor = boundaries[i - 1]
        if i < k:
            t = path[i]
            if has_arr[t] and arr[t] > floor:
                floor = arr[t]
        if boundaries[i] < floor:
            boundaries[i] = floor

    if boundaries[k] > end + 1e-9:
        ok = False
    for i in range(1, k):
        t = path[i - 1]
        if has_dl[t] and boundaries[i] > dl[t] + 1e-9:
            ok = False
    return boundaries, ok
