"""Critical-path search under relaxed locality constraints (§4.4 step 3).

Each iteration of Algorithm SLICING must find, among the not-yet-assigned
tasks Π, the path minimizing the metric value ``R``.  A candidate path

* starts at a **head** — a task whose arrival time is already pinned
  (an input task, or a task with at least one assigned immediate
  predecessor, cf. Fig. 1 step 10);
* ends at a **tail** — a task whose absolute deadline is already pinned
  (an output task under an E-T-E deadline, or a task with at least one
  assigned immediate successor, cf. step 7);
* may pass *through* other pinned tasks: an interior pinned arrival is a
  lower bound on that task's slice start and an interior pinned deadline
  an upper bound on its slice end.  The deadline distribution
  (:func:`repro.core.slicing` boundary projection) enforces those bounds,
  which preserves the slicing invariant ``D_i <= a_j`` on *every*
  precedence arc while keeping paths long — ending every path at the
  first pinned task would fragment the decomposition into singletons and
  starve the metrics of anything to distribute over.

For a fixed head/tail pair the window ``W = dl(tail) − arr(head)`` is a
constant, so minimizing ``R`` reduces to maximizing the accumulated
metric weight ``Σ ŵ`` along the path; one longest-path DP per head
(linear in nodes + arcs) yields the best candidate per pair, and the
global minimum-``R`` candidate wins.  This matches the breadth-first
heuristic search and per-iteration complexity the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Mapping, Sequence

from ..graph.taskgraph import TaskGraph
from ..types import Time
from .metrics import CriticalPathMetric, MetricState

__all__ = ["PathCandidate", "find_critical_path"]


@dataclass(frozen=True)
class PathCandidate:
    """A candidate critical path with its window and metric value."""

    path: tuple[str, ...]
    arrival: Time
    deadline: Time
    ratio: float
    weight: Time

    @property
    def window(self) -> Time:
        """Window length ``W = deadline − arrival`` (may be negative)."""
        return self.deadline - self.arrival


def find_critical_path(
    graph: TaskGraph,
    active: AbstractSet[str],
    arrivals: Mapping[str, Time],
    deadlines: Mapping[str, Time],
    metric: CriticalPathMetric,
    state: MetricState,
    *,
    topo_order: Sequence[str] | None = None,
) -> PathCandidate | None:
    """Find the minimum-``R`` path among the active tasks.

    Parameters
    ----------
    graph:
        The full task graph.
    active:
        The set Π of tasks still awaiting deadline assignment.
    arrivals / deadlines:
        Pinned tentative arrival times / absolute deadlines for (a
        subset of) active tasks; membership defines heads and tails.
    metric / state:
        The critical-path metric and its prepared per-workload state.
    topo_order:
        Optional precomputed topological order of the full graph (an
        optimization for the slicing main loop).

    Returns ``None`` when no head can reach a tail, which for a valid
    workload only happens once ``active`` is empty.
    """
    if not active:
        return None
    order = topo_order if topo_order is not None else graph.topological_order()
    weights = state.weights

    heads = [t for t in order if t in active and t in arrivals]
    best: PathCandidate | None = None

    for head in heads:
        # Longest-Σw DP from `head` over Π-internal chains.
        dist: dict[str, Time] = {head: weights[head]}
        count: dict[str, int] = {head: 1}
        parent: dict[str, str | None] = {head: None}
        for tid in order:
            if tid not in dist:
                continue
            d_tid = dist[tid]
            n_tid = count[tid]
            for succ in graph.successors(tid):
                if succ not in active:
                    continue
                cand = d_tid + weights[succ]
                cur = dist.get(succ)
                if (
                    cur is None
                    or cand > cur
                    or (cand == cur and n_tid + 1 > count[succ])
                ):
                    dist[succ] = cand
                    count[succ] = n_tid + 1
                    parent[succ] = tid

        for tail, total_w in dist.items():
            if tail not in deadlines:
                continue
            window = deadlines[tail] - arrivals[head]
            n = count[tail]
            r = metric.ratio_from_totals(window, total_w, n)
            # Score candidates from the DP aggregates; materialize the
            # path only when a candidate wins (or exactly ties) — path
            # reconstruction dominated the slicing profile otherwise.
            if best is not None:
                if r > best.ratio:
                    continue
                if r == best.ratio:
                    if total_w < best.weight:
                        continue
                    if total_w == best.weight:
                        if n < len(best.path):
                            continue
                        if n == len(best.path):
                            path = _reconstruct(parent, tail)
                            if not tuple(path) < best.path:
                                continue
                            best = PathCandidate(
                                path=tuple(path),
                                arrival=arrivals[head],
                                deadline=deadlines[tail],
                                ratio=r,
                                weight=total_w,
                            )
                            continue
            best = PathCandidate(
                path=tuple(_reconstruct(parent, tail)),
                arrival=arrivals[head],
                deadline=deadlines[tail],
                ratio=r,
                weight=total_w,
            )
    return best


def _reconstruct(parent: Mapping[str, str | None], tail: str) -> list[str]:
    path = [tail]
    node: str | None = parent[tail]
    while node is not None:
        path.append(node)
        node = parent[node]
    path.reverse()
    return path
