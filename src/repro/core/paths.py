"""Critical-path search under relaxed locality constraints (§4.4 step 3).

Each iteration of Algorithm SLICING must find, among the not-yet-assigned
tasks Π, the path minimizing the metric value ``R``.  A candidate path

* starts at a **head** — a task whose arrival time is already pinned
  (an input task, or a task with at least one assigned immediate
  predecessor, cf. Fig. 1 step 10);
* ends at a **tail** — a task whose absolute deadline is already pinned
  (an output task under an E-T-E deadline, or a task with at least one
  assigned immediate successor, cf. step 7);
* may pass *through* other pinned tasks: an interior pinned arrival is a
  lower bound on that task's slice start and an interior pinned deadline
  an upper bound on its slice end.  The deadline distribution
  (:func:`repro.core.slicing` boundary projection) enforces those bounds,
  which preserves the slicing invariant ``D_i <= a_j`` on *every*
  precedence arc while keeping paths long — ending every path at the
  first pinned task would fragment the decomposition into singletons and
  starve the metrics of anything to distribute over.

For a fixed head/tail pair the window ``W = dl(tail) − arr(head)`` is a
constant, so minimizing ``R`` reduces to maximizing the accumulated
metric weight ``Σ ŵ`` along the path; one longest-path DP per head
(linear in nodes + arcs) yields the best candidate per pair, and the
global minimum-``R`` candidate wins.  This matches the breadth-first
heuristic search and per-iteration complexity the paper describes.

This function is the hot loop of the Monte Carlo evaluation, so the
search space is filtered to Π once per call and candidate paths are
only materialized when they win: both the filtering and the lazy
reconstruction leave the relaxation order, every floating-point
operation, and the tie-breaking (larger weight, then longer path, then
lexicographically smallest path — an order-independent rule) exactly as
in the direct formulation, so results are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Mapping, Sequence

from ..graph.taskgraph import TaskGraph
from ..types import Time
from .metrics import CriticalPathMetric, MetricState

__all__ = ["PathCandidate", "find_critical_path"]


@dataclass(frozen=True)
class PathCandidate:
    """A candidate critical path with its window and metric value."""

    path: tuple[str, ...]
    arrival: Time
    deadline: Time
    ratio: float
    weight: Time

    @property
    def window(self) -> Time:
        """Window length ``W = deadline − arrival`` (may be negative)."""
        return self.deadline - self.arrival


def find_critical_path(
    graph: TaskGraph,
    active: AbstractSet[str],
    arrivals: Mapping[str, Time],
    deadlines: Mapping[str, Time],
    metric: CriticalPathMetric,
    state: MetricState,
    *,
    topo_order: Sequence[str] | None = None,
    successors: Mapping[str, Sequence[str]] | None = None,
    dp_cache: dict[str, tuple] | None = None,
    best_cache: dict[str, "PathCandidate | None"] | None = None,
    order_active: Sequence[str] | None = None,
    succ_active: Mapping[str, Sequence[str]] | None = None,
) -> PathCandidate | None:
    """Find the minimum-``R`` path among the active tasks.

    Parameters
    ----------
    graph:
        The full task graph.
    active:
        The set Π of tasks still awaiting deadline assignment.
    arrivals / deadlines:
        Pinned tentative arrival times / absolute deadlines for (a
        subset of) active tasks; membership defines heads and tails.
    metric / state:
        The critical-path metric and its prepared per-workload state.
    topo_order:
        Optional precomputed topological order of the full graph (an
        optimization for the slicing main loop, which calls this once
        per iteration on the same graph).
    successors:
        Optional precomputed immediate-successor adjacency (id → ids),
        same contract as *topo_order*.
    dp_cache:
        Optional per-head DP memo maintained by the slicing main loop
        across its iterations, mapping head → ``(dist, count, parent)``.
        Entries must be invalidated by the caller whenever a task in the
        entry's reached set (``dist``'s keys) leaves ``active``; pin
        changes never invalidate an entry, because pins only enter the
        candidate *scoring* below (``arrivals``/``deadlines`` are read
        fresh on every call), not the reachability DP.
    best_cache:
        Optional per-head best-candidate memo (requires *dp_cache*),
        mapping head → its winning :class:`PathCandidate` (or ``None``
        when no pinned tail is reachable).  On top of the *dp_cache*
        contract, the caller must drop a head's entry whenever that
        head's own arrival pin changes (its windows shift) or a deadline
        pin is added/changed on a task in the head's reached set (its
        tail set shifts).  Valid entries make a head's whole scoring
        pass O(1); candidate selection is unaffected because the
        tie-breaking below is a total order over candidates (two
        distinct head/tail pairs can never produce the same path), so
        per-head winners merged in any order give the same global
        winner as one flat scan.
    order_active / succ_active:
        Optional Π-restricted topological order / adjacency maintained
        incrementally by the slicing loop (both must equal filtering
        ``topo_order``/``successors`` to ``active`` with relative order
        preserved, which is all this function would compute from them).

    Returns ``None`` when no head can reach a tail, which for a valid
    workload only happens once ``active`` is empty.
    """
    if not active:
        return None
    weights = state.weights

    # Restrict the search space to Π once per call: the per-head DPs
    # only ever visit active tasks and Π-internal arcs, so filtering
    # here saves a membership test per (head, arc) pair in the hot loop.
    # The relative topological order is preserved, so DP relaxations
    # (and hence every outcome) are unchanged.
    if order_active is None:
        order = (
            topo_order if topo_order is not None
            else graph.topological_order()
        )
        order_active = [t for t in order if t in active]
    if succ_active is None and successors is None:
        successors = {tid: graph.successors(tid) for tid in order_active}
    heads = [(i, t) for i, t in enumerate(order_active) if t in arrivals]

    best: PathCandidate | None = None
    n_active = len(order_active)
    ratio_from_totals = metric.ratio_from_totals

    for head_pos, head in heads:
        if best_cache is not None and head in best_cache:
            local = best_cache[head]
            if local is not None:
                best = local if best is None else _better(best, local)
            continue
        cached = dp_cache.get(head) if dp_cache is not None else None
        if cached is not None:
            # The reached set is untouched since the entry was stored
            # (caller contract), so the DP would recompute exactly this.
            dist, count, parent = cached
        else:
            # Longest-Σw DP from `head` over Π-internal chains.  Every
            # task reachable from `head` lies strictly after it in a
            # topological order, so scanning the suffix from `head_pos`
            # visits exactly the reachable part of Π.
            if succ_active is None:
                succ_active = {
                    t: [s for s in successors[t] if s in active]
                    for t in order_active
                }
            dist = {head: weights[head]}
            count = {head: 1}
            parent: dict[str, str | None] = {head: None}
            for pos in range(head_pos, n_active):
                tid = order_active[pos]
                d_tid = dist.get(tid)
                if d_tid is None:
                    continue
                n_tid = count[tid]
                for succ in succ_active[tid]:
                    cand = d_tid + weights[succ]
                    cur = dist.get(succ)
                    if (
                        cur is None
                        or cand > cur
                        or (cand == cur and n_tid + 1 > count[succ])
                    ):
                        dist[succ] = cand
                        count[succ] = n_tid + 1
                        parent[succ] = tid
            if dp_cache is not None:
                dp_cache[head] = (dist, count, parent)

        # Score this head's tails from the DP aggregates.  The running
        # leader is kept as plain aggregates ``(r, weight, length,
        # tail)``; its path is materialized once, after the scan — or
        # mid-scan on an exact aggregate tie, the only case where the
        # lexicographic rule needs the actual node sequence.
        leader = None  # (ratio, weight, length, tail, deadline)
        leader_path: tuple[str, ...] | None = None
        arr_head = arrivals[head]
        # The head's tails are the pinned deadlines inside its reached
        # set: intersect by scanning whichever side is smaller.  The
        # scan order is irrelevant — the selection rule is a total
        # order, so the leader after any permutation is the same.
        if len(dist) < len(deadlines):
            tails = [(t, deadlines[t]) for t in dist if t in deadlines]
        else:
            tails = deadlines.items()
        for tail, dl_tail in tails:
            total_w = dist.get(tail)
            if total_w is None:
                continue
            window = dl_tail - arr_head
            length = count[tail]
            r = ratio_from_totals(window, total_w, length)
            if leader is not None:
                l_r, l_w, l_len, l_tail, _l_dl = leader
                if r > l_r:
                    continue
                if r == l_r:
                    if total_w < l_w:
                        continue
                    if total_w == l_w:
                        if length < l_len:
                            continue
                        if length == l_len:
                            if leader_path is None:
                                leader_path = _reconstruct(parent, l_tail)
                            path = _reconstruct(parent, tail)
                            if not path < leader_path:
                                continue
                            leader = (r, total_w, length, tail, dl_tail)
                            leader_path = path
                            continue
            leader = (r, total_w, length, tail, dl_tail)
            leader_path = None
        if leader is None:
            local = None
        else:
            r, total_w, _length, tail, dl_tail = leader
            local = PathCandidate(
                path=(
                    leader_path if leader_path is not None
                    else _reconstruct(parent, tail)
                ),
                arrival=arr_head,
                deadline=dl_tail,
                ratio=r,
                weight=total_w,
            )
        if best_cache is not None:
            best_cache[head] = local
        if local is not None:
            best = local if best is None else _better(best, local)
    return best


def _better(a: PathCandidate, b: PathCandidate) -> PathCandidate:
    """The winner between two candidates under the selection order.

    Lower ``R`` wins; ties resolve by larger weight, then longer path,
    then lexicographically smallest path — a total order, since two
    distinct head/tail pairs always differ in path endpoints.
    """
    if b.ratio < a.ratio:
        return b
    if b.ratio > a.ratio:
        return a
    if b.weight > a.weight:
        return b
    if b.weight < a.weight:
        return a
    if len(b.path) > len(a.path):
        return b
    if len(b.path) < len(a.path):
        return a
    return b if b.path < a.path else a


def _reconstruct(
    parent: Mapping[str, str | None], tail: str
) -> tuple[str, ...]:
    path = [tail]
    node = parent[tail]
    while node is not None:
        path.append(node)
        node = parent[node]
    path.reverse()
    return tuple(path)
