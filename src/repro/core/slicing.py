"""Algorithm SLICING — deadline distribution (Fig. 1, §4.4).

The algorithm repeatedly extracts a critical path from the set Π of
unassigned tasks, slices that path's end-to-end window into
non-overlapping per-task execution windows, and propagates the window
boundaries to the path's neighbours:

1. initialize Π with all tasks; pin arrivals of input tasks and
   absolute deadlines of output tasks from the application's E-T-E
   requirements;
2. while Π is non-empty:
   a. find the path Φ minimizing the critical-path metric R
      (:func:`repro.core.paths.find_critical_path`);
   b. distribute Φ's window: the first task starts at the pinned
      arrival, each subsequent task arrives exactly at its
      predecessor's absolute deadline, relative deadlines follow the
      metric's sharing rule and sum to the window;
   c. attach the remaining tasks: every unassigned immediate successor
      of a path task gets its arrival pinned to (at least) that task's
      absolute deadline, and every unassigned immediate predecessor
      gets its deadline pinned to (at most) that task's arrival;
   d. remove Φ from Π.

The produced :class:`~repro.core.assignment.DeadlineAssignment`
satisfies ``D_i <= a_j`` on every precedence arc (hence eq. 1 on every
path) whenever no window degenerates; negative-laxity windows are
clamped at zero length and flagged ``degenerate``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import DistributionError
from ..graph.algorithms import TransitiveClosure
from ..graph.taskgraph import TaskGraph
from ..graph.validation import validate_graph
from ..system.platform import Platform
from ..types import Time
from .assignment import DeadlineAssignment, TaskWindow
from .estimation import WCET_AVG, WcetEstimator, estimate_map, get_estimator
from .metrics import AdaptiveParams, CriticalPathMetric, get_metric
from .paths import find_critical_path

__all__ = ["distribute_deadlines", "slice_with_state"]


def distribute_deadlines(
    graph: TaskGraph,
    platform: Platform,
    metric: CriticalPathMetric | str = "ADAPT-L",
    *,
    estimator: WcetEstimator | str = WCET_AVG,
    params: AdaptiveParams | None = None,
    estimates: Mapping[str, Time] | None = None,
    validate: bool = True,
    closure: TransitiveClosure | None = None,
    topo_order: Sequence[str] | None = None,
    successors: Mapping[str, Sequence[str]] | None = None,
    predecessors: Mapping[str, Sequence[str]] | None = None,
    initial_pins: tuple[Mapping[str, Time], Mapping[str, Time]] | None = None,
    compiled=None,
    kernel: bool | None = None,
) -> DeadlineAssignment:
    """Distribute E-T-E deadlines over *graph* for *platform*.

    Parameters
    ----------
    graph:
        Application task graph; every output task must be covered by an
        E-T-E deadline (set per pair or via
        :meth:`TaskGraph.set_uniform_e2e_deadline`).
    platform:
        Target multiprocessor (its size ``m`` parameterizes the
        adaptive metrics).
    metric:
        Critical-path metric instance or name
        (``PURE``/``NORM``/``ADAPT-G``/``ADAPT-L``).
    estimator:
        WCET estimation strategy for ``c̄_i`` (default WCET-AVG, the
        paper's default).
    params:
        Adaptive-metric parameters (ignored when *metric* is already an
        instance).
    estimates:
        Precomputed ``c̄_i`` map, overriding *estimator* (useful for
        experiments that reuse estimates across metrics).
    validate:
        Run structural validation of the graph first.
    closure / topo_order / successors / predecessors / initial_pins:
        Optional prederived graph state (transitive closure, topological
        order, successor/predecessor adjacency, step-1 boundary pins)
        injected by callers that evaluate several metrics on the same
        workload — e.g. the paired-trial experiment engine — so it is
        computed once per workload instead of once per (metric,
        workload) pair.  All must describe *graph* exactly; results are
        identical either way.
    compiled / kernel:
        Compiled-kernel controls.  ``kernel=True`` forces the
        integer-indexed fast path (``repro.kernel``), ``False`` forces
        the string-keyed reference, ``None`` (default) follows the
        ``REPRO_KERNEL`` environment switch.  The fast path only
        engages for the four stock metrics (exact types) and is
        bit-identical to the reference; ``compiled`` optionally injects
        a prebuilt :class:`~repro.kernel.compiled.CompiledWorkload` so
        repeat callers skip recompilation.

    Returns
    -------
    DeadlineAssignment
        Windows for every task, with provenance and the selected paths.
    """
    if validate:
        validate_graph(graph).raise_if_invalid()
    metric_obj = get_metric(metric, params)
    est_obj = get_estimator(estimator)
    derived_estimates = estimates is None
    if estimates is None:
        estimates = estimate_map(graph, est_obj, platform)

    # Compiled-kernel fast path: exact stock metric types only, so any
    # subclass with a custom sharing rule always takes the reference
    # implementation below.  Bit-identical by construction (enforced by
    # the kernel property suite and the kernel-smoke CI job).
    if kernel is None:
        from ..kernel.trial import kernel_enabled

        kernel = kernel_enabled()
    if kernel:
        from ..kernel import KERNEL_METRIC_TYPES

        if type(metric_obj) in KERNEL_METRIC_TYPES:
            from ..kernel import compile_workload, kernel_slice, kernel_weights

            cw = compiled
            if cw is None:
                cw = compile_workload(graph, platform)
            est = [estimates[tid] for tid in cw.ids]
            weights = kernel_weights(
                cw,
                metric_obj,
                est,
                est_key=est_obj.name if derived_estimates else None,
            )
            ka = kernel_slice(cw, metric_obj, weights)
            return ka.to_assignment(cw, est_obj.name)

    state = metric_obj.prepare(graph, estimates, platform, closure=closure)
    assignment = slice_with_state(
        graph,
        metric_obj,
        state,
        topo_order=topo_order,
        successors=successors,
        predecessors=predecessors,
        initial_pins=initial_pins,
    )
    assignment.estimator_name = est_obj.name
    return assignment


def slice_with_state(
    graph: TaskGraph,
    metric: CriticalPathMetric,
    state,
    *,
    topo_order: Sequence[str] | None = None,
    successors: Mapping[str, Sequence[str]] | None = None,
    predecessors: Mapping[str, Sequence[str]] | None = None,
    initial_pins: tuple[Mapping[str, Time], Mapping[str, Time]] | None = None,
) -> DeadlineAssignment:
    """Run Algorithm SLICING with a prepared metric state.

    Low-level entry point for callers that manage metric preparation
    themselves (e.g. parameter-sweep experiments).  ``topo_order``,
    ``successors``, ``predecessors``, and ``initial_pins`` optionally
    inject prederived graph state (see :func:`distribute_deadlines`).
    """
    order = topo_order if topo_order is not None else graph.topological_order()
    if successors is None:
        successors = {tid: graph.successors(tid) for tid in order}
    if predecessors is None:
        # Pin the predecessor adjacency once so the attach loop (steps
        # 5–12) does not re-derive it on every iteration.
        predecessors = {tid: graph.predecessors(tid) for tid in order}
    active = set(order)

    # Step 1: pin arrivals of input tasks and deadlines of output tasks.
    if initial_pins is not None:
        arrivals = dict(initial_pins[0])
        deadlines = dict(initial_pins[1])
    else:
        arrivals: dict[str, Time] = {
            tid: graph.task(tid).phasing for tid in graph.input_tasks()
        }
        deadlines: dict[str, Time] = {}
        for tid in graph.output_tasks():
            bound = graph.output_deadline(tid)
            if bound is None:
                raise DistributionError(
                    f"output task {tid!r} has no E-T-E deadline; the slicing "
                    "technique needs a window for every output task"
                )
            deadlines[tid] = bound

    windows: dict[str, TaskWindow] = {}
    chosen_paths: list[tuple[str, ...]] = []
    degenerate = False

    # Per-head memos shared across iterations (see find_critical_path):
    # a DP entry survives as long as its reached set stays inside Π, and
    # a best-candidate entry additionally requires the head's arrival
    # pin and every deadline pin in its reach to be unchanged.  The
    # invalidation sweeps below (attach loop and step 13) guarantee
    # both, so each iteration pays only for the heads the previous
    # path actually disturbed.
    dp_cache: dict[str, tuple] = {}
    best_cache: dict[str, object] = {}

    # Π-restricted search space, maintained incrementally as paths are
    # removed (step 13): filtering a filtered sequence by the shrunken Π
    # gives exactly what filtering the original by it would, with the
    # relative order intact, so find_critical_path sees the same inputs
    # it would derive itself.  The lists bound here are never mutated.
    order_active: list[str] = list(order)
    succ_active: dict[str, Sequence[str]] = dict(successors)

    # Steps 2–14: main loop.
    while active:
        cand = find_critical_path(
            graph,
            active,
            arrivals,
            deadlines,
            metric,
            state,
            dp_cache=dp_cache,
            best_cache=best_cache,
            order_active=order_active,
            succ_active=succ_active,
        )
        if cand is None:
            # Unreachable for valid DAG workloads: every active task lies
            # on a chain between a pinned arrival and a pinned deadline.
            raise DistributionError(
                f"no critical path found with {len(active)} task(s) "
                "remaining; the task graph violates the slicing "
                "preconditions"
            )
        chosen_paths.append(cand.path)

        # Step 4: distribute the window over the path.  Interior tasks
        # may already carry pinned arrivals/deadlines from earlier
        # iterations (step 7/10 propagation); those pins are honoured as
        # interval constraints on the slice boundaries.
        rel = metric.deadlines(cand.window, cand.path, state)
        boundaries, ok = _project_boundaries(
            cand.path, cand.arrival, cand.deadline,
            [rel[tid] for tid in cand.path],
            arrivals, deadlines,
        )
        degenerate = degenerate or not ok
        for i, tid in enumerate(cand.path):
            a_i = boundaries[i]
            d_abs = boundaries[i + 1]
            windows[tid] = TaskWindow(
                arrival=a_i,
                relative_deadline=d_abs - a_i,
                absolute_deadline=d_abs,
            )

        path_set = set(cand.path)

        # Steps 5–12: attach the remaining tasks to the new spine.  An
        # arrival pin shifts only that head's windows, so only its own
        # best-candidate memo drops; a deadline pin creates/moves a tail,
        # which invalidates the memo of every head that reaches it.
        new_deadline_pins: set[str] = set()
        for tid in cand.path:
            w = windows[tid]
            for succ in successors[tid]:
                if succ in active and succ not in path_set:
                    prev = arrivals.get(succ)
                    if prev is None or w.absolute_deadline > prev:
                        arrivals[succ] = w.absolute_deadline
                        best_cache.pop(succ, None)
            for pred in predecessors[tid]:
                if pred in active and pred not in path_set:
                    prev = deadlines.get(pred)
                    if prev is None or w.arrival < prev:
                        deadlines[pred] = w.arrival
                        new_deadline_pins.add(pred)
        if new_deadline_pins:
            for head, entry in dp_cache.items():
                if not new_deadline_pins.isdisjoint(entry[0]):
                    best_cache.pop(head, None)

        # Step 13: remove the path tasks from Π.  Drop every memoized DP
        # whose reached set (its dist keys, which include the head) lost
        # a task: only those could compute differently on the shrunken Π.
        active -= path_set
        for tid in path_set:
            arrivals.pop(tid, None)
            deadlines.pop(tid, None)
        for head in [
            h for h, entry in dp_cache.items()
            if not path_set.isdisjoint(entry[0])
        ]:
            del dp_cache[head]
            best_cache.pop(head, None)

        # Shrink the Π-restricted search space in place of a rebuild:
        # drop the removed tasks from the order and from the adjacency
        # lists of their still-active immediate predecessors.
        order_active = [t for t in order_active if t not in path_set]
        touched = set()
        for tid in path_set:
            succ_active.pop(tid, None)
            for pred in predecessors[tid]:
                if pred in active:
                    touched.add(pred)
        for pred in touched:
            succ_active[pred] = [
                s for s in succ_active[pred] if s not in path_set
            ]

    return DeadlineAssignment(
        windows=windows,
        metric_name=metric.name,
        paths=chosen_paths,
        degenerate=degenerate,
    )


def _project_boundaries(
    path: tuple[str, ...],
    start: Time,
    end: Time,
    shares: list[Time],
    arrivals: Mapping[str, Time],
    deadlines: Mapping[str, Time],
) -> tuple[list[Time], bool]:
    """Slice boundaries for *path*, honouring interior pins.

    ``boundaries[i]`` is the arrival of ``path[i]`` (and the absolute
    deadline of ``path[i-1]``); ``boundaries[0] = start`` and
    ``boundaries[k] = end``.  The metric's raw shares position the
    boundaries first; a backward pass then caps each boundary by any
    pinned deadline of the task it closes, and a forward pass raises it
    to any pinned arrival of the task it opens (and restores
    monotonicity).  Pins win over shares; shares only distribute the
    slack between pins.

    Returns ``(boundaries, ok)`` where ``ok`` is ``False`` when the
    constraints were infeasible (negative window, negative shares, or
    conflicting pins) and some window had to be clamped to zero length —
    the task set is then almost surely unschedulable, which is the
    honest outcome the success-ratio measure needs.
    """
    k = len(path)
    ok = True

    # Normalize shares: non-negative, summing exactly to the window.
    window = end - start
    clamped = [max(0.0, s) for s in shares]
    if any(s < 0.0 for s in shares):
        ok = False
    total = sum(clamped)
    if window <= 0.0:
        clamped = [0.0] * k
        ok = False
    elif total > window:
        scale = window / total if total > 0.0 else 0.0
        clamped = [s * scale for s in clamped]
        if total > window * (1.0 + 1e-12):
            ok = False
    elif total < window:
        # Metric shares always sum to the window; after clamping
        # negatives away the sum can only grow, so a deficit means the
        # shares were all zero (degenerate input). Give the slack to the
        # last task to keep the tail anchored.
        clamped[-1] += window - total

    boundaries = [start]
    acc = start
    for s in clamped:
        acc += s
        boundaries.append(acc)
    boundaries[k] = end  # guard against floating-point drift

    # Backward pass: cap by pinned deadlines (boundary i closes path[i-1]).
    for i in range(k - 1, 0, -1):
        cap = boundaries[i + 1]
        pin = deadlines.get(path[i - 1])
        if pin is not None and pin < cap:
            cap = pin
        if boundaries[i] > cap:
            boundaries[i] = cap

    # Forward pass: raise to pinned arrivals (boundary i opens path[i])
    # and restore monotonicity.  The tail boundary is included so the
    # result is always a well-formed monotone window chain (every
    # relative deadline non-negative), even when the pins conflict.
    for i in range(1, k + 1):
        floor = boundaries[i - 1]
        if i < k:
            pin = arrivals.get(path[i])
            if pin is not None and pin > floor:
                floor = pin
        if boundaries[i] < floor:
            boundaries[i] = floor

    # Feasibility audit: conflicting pins may have pushed a boundary past
    # a deadline pin or past the tail deadline; flag, don't unclamp.
    if boundaries[k] > end + 1e-9:
        ok = False
    for i in range(1, k):
        pin = deadlines.get(path[i - 1])
        if pin is not None and boundaries[i] > pin + 1e-9:
            ok = False
    return boundaries, ok
