"""Estimated-WCET strategies for relaxed locality constraints (§5.3).

Under relaxed locality constraints the task-to-processor assignment is
unknown when deadlines are distributed, so the slicing technique works
with an *estimated* WCET ``c̄_i`` per task, summarizing the per-class
WCET vector:

* **WCET-AVG** (eq. 9) — mean over all valid classes (paper default);
* **WCET-MAX** (eq. 10) — pessimistic maximum;
* **WCET-MIN** (eq. 11) — optimistic minimum.

"Valid" classes are those the task is eligible on; when a platform is
supplied, classes it does not instantiate are excluded as well.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..errors import EligibilityError
from ..graph.task import Task
from ..graph.taskgraph import TaskGraph
from ..system.platform import Platform
from ..types import Time

__all__ = [
    "WcetEstimator",
    "WcetAvg",
    "WcetMax",
    "WcetMin",
    "WcetAuto",
    "WCET_AVG",
    "WCET_MAX",
    "WCET_MIN",
    "WCET_AUTO",
    "get_estimator",
    "estimate_map",
]


class WcetEstimator(ABC):
    """Strategy turning a per-class WCET vector into a scalar ``c̄_i``."""

    #: Registry/reporting name (e.g. ``"WCET-AVG"``).
    name: str = "WCET-?"

    @abstractmethod
    def combine(self, wcets: Sequence[Time]) -> Time:
        """Summarize the non-empty sequence of valid per-class WCETs."""

    def estimate(self, task: Task, platform: Platform | None = None) -> Time:
        """Estimated WCET ``c̄_i`` of *task*, optionally platform-aware."""
        if platform is None:
            values = list(task.wcet.values())
        else:
            usable = set(platform.used_class_ids())
            values = [c for cls, c in task.wcet.items() if cls in usable]
            if not values:
                raise EligibilityError(
                    f"task {task.id!r} has no eligible class on this platform"
                )
        return self.combine(values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class WcetAvg(WcetEstimator):
    """``c̄_i = (Σ_k c_i[e_k]) / |E|`` over valid classes (eq. 9)."""

    name = "WCET-AVG"

    def combine(self, wcets: Sequence[Time]) -> Time:
        return sum(wcets) / len(wcets)


class WcetMax(WcetEstimator):
    """``c̄_i = max_k c_i[e_k]`` over valid classes (eq. 10)."""

    name = "WCET-MAX"

    def combine(self, wcets: Sequence[Time]) -> Time:
        return max(wcets)


class WcetMin(WcetEstimator):
    """``c̄_i = min_k c_i[e_k]`` over valid classes (eq. 11)."""

    name = "WCET-MIN"

    def combine(self, wcets: Sequence[Time]) -> Time:
        return min(wcets)


class WcetAuto(WcetEstimator):
    """The paper's §6.4 recommendation as a strategy.

    "For systems with uniform or near-uniform task execution times, the
    WCET-MAX strategy is the best choice.  For systems with a large
    distribution of task execution times, the WCET-AVG strategy is the
    preferred choice."

    The strategy is *graph-aware*: it measures the task set's
    execution-time spread — the mean over tasks of
    ``(max_k c_i[e_k] − min_k c_i[e_k]) / mean_k c_i[e_k]`` plus the
    relative spread of the per-task means across the set (the two
    components the ETD parameter controls in §5.2) — and delegates to
    WCET-MAX below ``spread_threshold``, WCET-AVG at or above it.

    When used task-by-task (no graph context) it falls back to
    WCET-MAX, the near-uniform default.
    """

    name = "WCET-AUTO"

    def __init__(self, spread_threshold: float = 1.0) -> None:
        if spread_threshold <= 0.0:
            raise EligibilityError("spread threshold must be positive")
        self.spread_threshold = spread_threshold

    def combine(self, wcets: Sequence[Time]) -> Time:
        return max(wcets)

    @staticmethod
    def spread(graph: TaskGraph, platform: Platform | None = None) -> float:
        """The task set's execution-time spread figure (see class doc)."""
        per_task_means: list[Time] = []
        class_spreads: list[float] = []
        usable = (
            set(platform.used_class_ids()) if platform is not None else None
        )
        for task in graph.tasks():
            values = [
                c
                for cls, c in task.wcet.items()
                if usable is None or cls in usable
            ]
            if not values:
                raise EligibilityError(
                    f"task {task.id!r} has no eligible class on this platform"
                )
            mean = sum(values) / len(values)
            per_task_means.append(mean)
            class_spreads.append((max(values) - min(values)) / mean)
        if not per_task_means:
            raise EligibilityError("cannot measure spread of an empty set")
        overall_mean = sum(per_task_means) / len(per_task_means)
        if overall_mean <= 0.0:
            return 0.0
        across = (max(per_task_means) - min(per_task_means)) / overall_mean
        within = sum(class_spreads) / len(class_spreads)
        return across + within

    def estimate_graph(
        self, graph: TaskGraph, platform: Platform | None = None
    ) -> dict[str, Time]:
        """Per-task estimates with the MAX/AVG choice made per task set."""
        delegate = (
            WCET_MAX
            if self.spread(graph, platform) < self.spread_threshold
            else WCET_AVG
        )
        return {
            task.id: delegate.estimate(task, platform)
            for task in graph.tasks()
        }


#: Shared singleton instances (the strategies are stateless, except
#: WCET-AUTO whose default threshold is also fixed).
WCET_AVG = WcetAvg()
WCET_MAX = WcetMax()
WCET_MIN = WcetMin()
WCET_AUTO = WcetAuto()

_REGISTRY: dict[str, WcetEstimator] = {
    "WCET-AVG": WCET_AVG,
    "WCET-MAX": WCET_MAX,
    "WCET-MIN": WCET_MIN,
    "WCET-AUTO": WCET_AUTO,
    "AVG": WCET_AVG,
    "MAX": WCET_MAX,
    "MIN": WCET_MIN,
    "AUTO": WCET_AUTO,
}


def get_estimator(name: str | WcetEstimator) -> WcetEstimator:
    """Resolve an estimator by name (case-insensitive) or pass through."""
    if isinstance(name, WcetEstimator):
        return name
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        raise EligibilityError(
            f"unknown WCET estimation strategy {name!r}; "
            f"choose from {sorted(set(_REGISTRY))}"
        ) from None


def estimate_map(
    graph: TaskGraph,
    estimator: WcetEstimator | str = WCET_AVG,
    platform: Platform | None = None,
) -> dict[str, Time]:
    """Estimated WCET ``c̄_i`` for every task of *graph*.

    Graph-aware strategies (WCET-AUTO) see the whole task set; the
    per-task strategies are applied independently.
    """
    est = get_estimator(estimator)
    if isinstance(est, WcetAuto):
        return est.estimate_graph(graph, platform)
    return {task.id: est.estimate(task, platform) for task in graph.tasks()}
