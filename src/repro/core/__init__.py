"""The paper's primary contribution: adaptive deadline distribution.

* :func:`distribute_deadlines` — Algorithm SLICING (Fig. 1) end to end.
* Metrics: :class:`PureMetric`, :class:`NormMetric`,
  :class:`AdaptGMetric`, :class:`AdaptLMetric` (§4.5).
* WCET estimation: WCET-AVG / WCET-MAX / WCET-MIN (§5.3).
* :class:`DeadlineAssignment` — the produced windows and invariants.
"""

from .assignment import DeadlineAssignment, TaskWindow
from .estimation import (
    WCET_AUTO,
    WCET_AVG,
    WCET_MAX,
    WCET_MIN,
    WcetAuto,
    WcetAvg,
    WcetEstimator,
    WcetMax,
    WcetMin,
    estimate_map,
    get_estimator,
)
from .metrics import (
    METRIC_NAMES,
    AdaptGMetric,
    AdaptLMetric,
    AdaptiveParams,
    CriticalPathMetric,
    MetricState,
    NormMetric,
    PureMetric,
    get_metric,
    virtual_times_global,
    virtual_times_local,
)
from .paths import PathCandidate, find_critical_path
from .slicing import distribute_deadlines, slice_with_state

__all__ = [
    "distribute_deadlines",
    "slice_with_state",
    "DeadlineAssignment",
    "TaskWindow",
    "PathCandidate",
    "find_critical_path",
    "CriticalPathMetric",
    "MetricState",
    "AdaptiveParams",
    "PureMetric",
    "NormMetric",
    "AdaptGMetric",
    "AdaptLMetric",
    "get_metric",
    "METRIC_NAMES",
    "virtual_times_global",
    "virtual_times_local",
    "WcetEstimator",
    "WcetAvg",
    "WcetMax",
    "WcetMin",
    "WcetAuto",
    "WCET_AVG",
    "WCET_MAX",
    "WCET_MIN",
    "WCET_AUTO",
    "get_estimator",
    "estimate_map",
]
