"""Critical-path metrics for the slicing technique (§4.5).

A critical-path metric plays two roles in Algorithm SLICING:

1. **Path assessment** — the metric value ``R`` of a candidate path
   measures how *critical* (laxity-starved) the path is; each iteration
   picks the path minimizing ``R``.
2. **Deadline distribution** — once a path is chosen, the metric's
   sharing rule splits the path window into per-task relative deadlines
   whose sum equals the window exactly.

The four metrics of the paper:

=============  =====================  =====================================
metric         R over path Φ          relative deadline d_i
=============  =====================  =====================================
NORM (eq.2-3)  (W − Σc̄) / Σc̄          c̄_i (1 + R)
PURE (eq.4-5)  (W − Σc̄) / n_Φ         c̄_i + R
ADAPT-G (eq.6) (W − Σĉ) / n_Φ         ĉ_i + R, ĉ from global parallelism ξ
ADAPT-L (eq.8) (W − Σĉ) / n_Φ         ĉ_i + R, ĉ from parallel sets |Ψ_i|
=============  =====================  =====================================

where ``W`` is the path's end-to-end window, ``c̄_i`` the estimated WCET
and ``ĉ_i`` the *virtual execution time*: tasks whose estimated WCET
reaches the execution-time threshold ``c_thres`` are inflated by a
surplus factor (``k_G ξ / m`` globally, ``k_L |Ψ_i| / m`` locally) so
the distribution hands them extra laxity to survive processor
contention.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import MetricError
from ..graph.algorithms import TransitiveClosure, average_parallelism
from ..graph.taskgraph import TaskGraph
from ..system.platform import Platform
from ..types import Time

__all__ = [
    "AdaptiveParams",
    "MetricState",
    "CriticalPathMetric",
    "PureMetric",
    "NormMetric",
    "AdaptGMetric",
    "AdaptLMetric",
    "get_metric",
    "METRIC_NAMES",
    "virtual_times_global",
    "virtual_times_local",
]


@dataclass(frozen=True)
class AdaptiveParams:
    """Tuning knobs of the adaptive metrics (§4.5, defaults from §6).

    ``c_thres`` is the execution-time threshold.  When ``None`` it is
    computed as ``c_thres_factor × mean(c̄)`` over the task graph, which
    reproduces the paper's ``c_thres = 1.0 · c_mean`` for workloads whose
    estimated WCETs average to the generator's mean execution time.
    """

    k_g: float = 1.5
    k_l: float = 0.2
    c_thres: Time | None = None
    c_thres_factor: float = 1.0

    def threshold(self, estimates: Mapping[str, Time]) -> Time:
        """Resolve the execution-time threshold for a concrete workload."""
        if self.c_thres is not None:
            return self.c_thres
        if not estimates:
            raise MetricError("cannot derive c_thres from an empty task set")
        mean = sum(estimates.values()) / len(estimates)
        return self.c_thres_factor * mean


@dataclass(frozen=True)
class MetricState:
    """Per-workload precomputation of a metric.

    ``weights`` maps task id to the execution-time figure the metric
    uses along paths — the estimated WCET ``c̄_i`` for the non-adaptive
    metrics, the virtual execution time ``ĉ_i`` for the adaptive ones.
    """

    metric_name: str
    weights: Mapping[str, Time]

    def path_weight(self, path: Sequence[str]) -> Time:
        """Accumulated weight ``Σ w_i`` along *path*."""
        w = self.weights
        return sum(w[tid] for tid in path)


def virtual_times_global(
    estimates: Mapping[str, Time],
    *,
    xi: float,
    m: int,
    k_g: float,
    c_thres: Time,
) -> dict[str, Time]:
    """Virtual execution times of ADAPT-G (eq. 6).

    ``ĉ_i = c̄_i`` below the threshold, else ``c̄_i (1 + k_G ξ / m)``.
    """
    if m < 1:
        raise MetricError("m must be at least 1")
    surplus = 1.0 + k_g * xi / m
    return {
        tid: c * surplus if c >= c_thres else c for tid, c in estimates.items()
    }


def virtual_times_local(
    estimates: Mapping[str, Time],
    *,
    parallel_set_sizes: Mapping[str, int],
    m: int,
    k_l: float,
    c_thres: Time,
) -> dict[str, Time]:
    """Virtual execution times of ADAPT-L (eq. 8).

    ``ĉ_i = c̄_i`` below the threshold, else ``c̄_i (1 + k_L |Ψ_i| / m)``.
    """
    if m < 1:
        raise MetricError("m must be at least 1")
    out: dict[str, Time] = {}
    for tid, c in estimates.items():
        if c >= c_thres:
            out[tid] = c * (1.0 + k_l * parallel_set_sizes[tid] / m)
        else:
            out[tid] = c
    return out


class CriticalPathMetric(ABC):
    """Base class for the slicing technique's critical-path metrics."""

    #: Reporting/registry name.
    name: str = "?"

    #: Sharing-rule family the compiled kernel implements for this
    #: metric: ``"equal"`` (``d_i = w_i + R``), ``"norm"``
    #: (``d_i = w_i (1 + R)``), or ``None`` (no kernel fast path; the
    #: reference implementation always runs).  Only consulted after the
    #: kernel's exact-type gate, so subclasses overriding the sharing
    #: rule can never be mis-kernelized.
    kernel_share: str | None = None

    #: Whether :meth:`prepare` consumes a transitive closure.  Callers
    #: that already hold one (e.g. the paired-trial experiment engine)
    #: consult this flag so the closure is built at most once per
    #: workload instead of once per metric preparation.
    uses_closure: bool = False

    @abstractmethod
    def prepare(
        self,
        graph: TaskGraph,
        estimates: Mapping[str, Time],
        platform: Platform,
        *,
        closure: TransitiveClosure | None = None,
    ) -> MetricState:
        """Precompute per-workload state (virtual times etc.).

        ``closure`` optionally injects a prebuilt
        :class:`~repro.graph.algorithms.TransitiveClosure` of *graph* so
        closure-consuming metrics (see :attr:`uses_closure`) skip the
        re-derivation; metrics that do not need reachability ignore it.
        """

    @abstractmethod
    def ratio_from_totals(
        self, window: Time, total_weight: Time, length: int
    ) -> float:
        """Metric value from a path's aggregate weight and length.

        The critical-path search tracks ``Σ ŵ`` and the hop count along
        its DP, so candidates can be scored without materializing the
        path (the hot loop of Algorithm SLICING).
        """

    def ratio(self, window: Time, path: Sequence[str], state: MetricState) -> float:
        """Metric value ``R`` of a path occupying *window* time units."""
        if not path:
            raise MetricError("cannot evaluate a metric on an empty path")
        return self.ratio_from_totals(
            window, state.path_weight(path), len(path)
        )

    @abstractmethod
    def deadlines(
        self, window: Time, path: Sequence[str], state: MetricState
    ) -> dict[str, Time]:
        """Relative deadline ``d_i`` per path task; ``Σ d_i == window``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class _EqualShareMetric(CriticalPathMetric):
    """PURE-family sharing: ``R = (W − Σw)/n`` and ``d_i = w_i + R``."""

    kernel_share = "equal"

    def ratio_from_totals(
        self, window: Time, total_weight: Time, length: int
    ) -> float:
        return (window - total_weight) / length

    def deadlines(
        self, window: Time, path: Sequence[str], state: MetricState
    ) -> dict[str, Time]:
        share = self.ratio(window, path, state)
        return {tid: state.weights[tid] + share for tid in path}


class PureMetric(_EqualShareMetric):
    """PURE — pure laxity ratio (eqs. 4–5): equal laxity share per task."""

    name = "PURE"

    def prepare(
        self,
        graph: TaskGraph,
        estimates: Mapping[str, Time],
        platform: Platform,
        *,
        closure: TransitiveClosure | None = None,
    ) -> MetricState:
        return MetricState(self.name, dict(estimates))


class NormMetric(CriticalPathMetric):
    """NORM — normalized laxity ratio (eqs. 2–3): proportional laxity."""

    name = "NORM"
    kernel_share = "norm"

    def prepare(
        self,
        graph: TaskGraph,
        estimates: Mapping[str, Time],
        platform: Platform,
        *,
        closure: TransitiveClosure | None = None,
    ) -> MetricState:
        return MetricState(self.name, dict(estimates))

    def ratio_from_totals(
        self, window: Time, total_weight: Time, length: int
    ) -> float:
        if total_weight <= 0.0:
            raise MetricError("NORM requires positive execution times")
        return (window - total_weight) / total_weight

    def deadlines(
        self, window: Time, path: Sequence[str], state: MetricState
    ) -> dict[str, Time]:
        r = self.ratio(window, path, state)
        return {tid: state.weights[tid] * (1.0 + r) for tid in path}


class AdaptGMetric(_EqualShareMetric):
    """ADAPT-G — globally adaptive laxity ratio (eqs. 6–7).

    Equal-share distribution over *virtual* execution times inflated by
    the global surplus factor ``k_G ξ / m`` for tasks at or above the
    execution-time threshold.
    """

    name = "ADAPT-G"

    def __init__(self, params: AdaptiveParams | None = None) -> None:
        self.params = params or AdaptiveParams()

    def prepare(
        self,
        graph: TaskGraph,
        estimates: Mapping[str, Time],
        platform: Platform,
        *,
        closure: TransitiveClosure | None = None,
    ) -> MetricState:
        xi = average_parallelism(graph, lambda tid: estimates[tid])
        virtual = virtual_times_global(
            estimates,
            xi=xi,
            m=platform.m,
            k_g=self.params.k_g,
            c_thres=self.params.threshold(estimates),
        )
        return MetricState(self.name, virtual)


class AdaptLMetric(_EqualShareMetric):
    """ADAPT-L — locally adaptive laxity ratio (eq. 8), the paper's contribution.

    Equal-share distribution over virtual execution times inflated by
    the *per-task* surplus factor ``k_L |Ψ_i| / m`` where ``Ψ_i`` is the
    task's parallel set (tasks neither preceding nor succeeding it in
    the transitive closure) — i.e. the actual contention the task can
    experience.
    """

    name = "ADAPT-L"
    uses_closure = True

    def __init__(self, params: AdaptiveParams | None = None) -> None:
        self.params = params or AdaptiveParams()

    def prepare(
        self,
        graph: TaskGraph,
        estimates: Mapping[str, Time],
        platform: Platform,
        *,
        closure: TransitiveClosure | None = None,
    ) -> MetricState:
        if closure is None:
            closure = TransitiveClosure(graph)
        sizes = {
            tid: closure.parallel_set_size(tid) for tid in graph.task_ids()
        }
        virtual = virtual_times_local(
            estimates,
            parallel_set_sizes=sizes,
            m=platform.m,
            k_l=self.params.k_l,
            c_thres=self.params.threshold(estimates),
        )
        return MetricState(self.name, virtual)


#: Canonical metric names in the order the paper's figures plot them.
METRIC_NAMES: tuple[str, ...] = ("PURE", "NORM", "ADAPT-G", "ADAPT-L")


def get_metric(
    name: str | CriticalPathMetric,
    params: AdaptiveParams | None = None,
) -> CriticalPathMetric:
    """Resolve a metric by name; *params* configures the adaptive ones."""
    if isinstance(name, CriticalPathMetric):
        return name
    key = name.upper().replace("_", "-")
    if key == "PURE":
        return PureMetric()
    if key == "NORM":
        return NormMetric()
    if key in ("ADAPT-G", "ADAPTG"):
        return AdaptGMetric(params)
    if key in ("ADAPT-L", "ADAPTL"):
        return AdaptLMetric(params)
    raise MetricError(
        f"unknown critical-path metric {name!r}; choose from {METRIC_NAMES}"
    )
