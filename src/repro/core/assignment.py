"""Deadline-assignment results and their invariants (§4.1–4.2).

A :class:`DeadlineAssignment` maps every task to its execution window
``w_i = [a_i, D_i]`` with ``D_i = a_i + d_i``.  The slicing technique's
defining property is that windows of precedence-related tasks do not
overlap: for every arc ``(i, j)``, ``D_i <= a_j``.  That single local
invariant implies the global path constraint (eq. 1): along any path
between an input–output pair, ``Σ d_i <= D_α``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from ..errors import DistributionError
from ..graph.taskgraph import TaskGraph
from ..types import Time, time_leq

__all__ = ["TaskWindow", "DeadlineAssignment"]


@dataclass(frozen=True)
class TaskWindow:
    """Execution window of one task: arrival, relative and absolute deadline."""

    arrival: Time
    relative_deadline: Time
    absolute_deadline: Time

    @property
    def length(self) -> Time:
        """Window length ``|w_i|`` (equals the relative deadline)."""
        return self.absolute_deadline - self.arrival


@dataclass
class DeadlineAssignment:
    """Result of distributing E-T-E deadlines over a task graph.

    Attributes
    ----------
    windows:
        Per-task execution windows.
    metric_name / estimator_name:
        Provenance of the distribution.
    paths:
        The critical paths in the order the slicing loop selected them
        (useful for tracing/debugging a distribution).
    degenerate:
        ``True`` when some window had to be clamped to zero length
        because a path's window could not cover the estimated execution
        times (negative laxity); such an assignment is almost surely
        unschedulable but remains well-formed.
    """

    windows: dict[str, TaskWindow]
    metric_name: str = "?"
    estimator_name: str = "?"
    paths: list[tuple[str, ...]] = field(default_factory=list)
    degenerate: bool = False

    def __contains__(self, task_id: str) -> bool:
        return task_id in self.windows

    def __len__(self) -> int:
        return len(self.windows)

    def __iter__(self) -> Iterator[str]:
        return iter(self.windows)

    def window(self, task_id: str) -> TaskWindow:
        try:
            return self.windows[task_id]
        except KeyError:
            raise DistributionError(
                f"task {task_id!r} has no assigned window"
            ) from None

    def arrival(self, task_id: str) -> Time:
        """Assigned arrival time ``a_i``."""
        return self.window(task_id).arrival

    def relative_deadline(self, task_id: str) -> Time:
        """Assigned relative deadline ``d_i``."""
        return self.window(task_id).relative_deadline

    def absolute_deadline(self, task_id: str) -> Time:
        """Assigned absolute deadline ``D_i = a_i + d_i``."""
        return self.window(task_id).absolute_deadline

    def laxity(self, task_id: str, estimates: Mapping[str, Time]) -> Time:
        """Pre-scheduling laxity ``X_i = d_i − c̄_i`` (§4.2)."""
        return self.relative_deadline(task_id) - estimates[task_id]

    def min_laxity(self, estimates: Mapping[str, Time]) -> Time:
        """Minimum laxity over all tasks (§4.2 secondary measure)."""
        if not self.windows:
            raise DistributionError("empty assignment has no laxity")
        return min(self.laxity(tid, estimates) for tid in self.windows)

    # ------------------------------------------------------------------
    # Invariant checking
    # ------------------------------------------------------------------
    def violations(self, graph: TaskGraph) -> list[str]:
        """All slicing-invariant violations (empty list == valid).

        Checks, with floating-point tolerance:

        * every graph task has a window and every window is well-formed
          (``d_i >= 0``);
        * non-overlap on every arc: ``D_i <= a_j``;
        * input tasks are not scheduled before their phasing;
        * output tasks respect the E-T-E deadlines covering them.
        Together these imply the path constraint (eq. 1) on every path.
        """
        problems: list[str] = []
        for tid in graph.task_ids():
            if tid not in self.windows:
                problems.append(f"task {tid!r} has no assigned window")
        for tid, w in self.windows.items():
            if w.relative_deadline < 0.0:
                problems.append(
                    f"task {tid!r}: negative relative deadline "
                    f"{w.relative_deadline:g}"
                )
        for src, dst, _ in graph.edges():
            if src in self.windows and dst in self.windows:
                d_src = self.windows[src].absolute_deadline
                a_dst = self.windows[dst].arrival
                if not time_leq(d_src, a_dst):
                    problems.append(
                        f"arc ({src!r}, {dst!r}): windows overlap "
                        f"(D_{src}={d_src:g} > a_{dst}={a_dst:g})"
                    )
        for tid in graph.input_tasks():
            if tid in self.windows:
                phased = graph.task(tid).phasing
                if not time_leq(phased, self.windows[tid].arrival):
                    problems.append(
                        f"input task {tid!r}: arrival "
                        f"{self.windows[tid].arrival:g} precedes phasing "
                        f"{phased:g}"
                    )
        for tid in graph.output_tasks():
            bound = graph.output_deadline(tid)
            if bound is not None and tid in self.windows:
                d = self.windows[tid].absolute_deadline
                if not time_leq(d, bound):
                    problems.append(
                        f"output task {tid!r}: absolute deadline {d:g} "
                        f"exceeds E-T-E bound {bound:g}"
                    )
        return problems

    def verify(self, graph: TaskGraph) -> None:
        """Raise :class:`DistributionError` on any invariant violation."""
        problems = self.violations(graph)
        if problems:
            raise DistributionError(
                f"{len(problems)} invariant violation(s): "
                + "; ".join(problems[:5])
                + ("; ..." if len(problems) > 5 else "")
            )

    def path_constraint_satisfied(self, graph: TaskGraph) -> bool:
        """Whether eq. 1 holds for every E-T-E pair (via the invariants)."""
        return not self.violations(graph)

    # ------------------------------------------------------------------
    # Quantization (§3.1's discrete time units)
    # ------------------------------------------------------------------
    def quantized(self, unit: Time = 1.0) -> "DeadlineAssignment":
        """Snap every window onto the discrete time grid.

        The paper models time as integral units (§3.1); the metric
        arithmetic produces fractional windows.  Quantization floors
        every arrival and absolute deadline to a multiple of *unit*,
        which preserves all slicing invariants, because flooring is
        monotone: ``D_i <= a_j`` implies ``floor(D_i) <= floor(a_j)``,
        windows stay non-negative, and absolute deadlines only move
        earlier (never past an E-T-E bound).  Input-task phasings must
        themselves lie on the grid or the phasing invariant can break
        (checked by the caller via :meth:`violations`).
        """
        if unit <= 0.0:
            raise DistributionError("quantization unit must be positive")

        def snap(t: Time) -> Time:
            # tolerate values a hair under a grid line
            return math.floor(t / unit + 1e-9) * unit

        windows = {}
        for tid, w in self.windows.items():
            a = snap(w.arrival)
            d_abs = snap(w.absolute_deadline)
            windows[tid] = TaskWindow(a, d_abs - a, d_abs)
        return DeadlineAssignment(
            windows=windows,
            metric_name=self.metric_name,
            estimator_name=self.estimator_name,
            paths=list(self.paths),
            degenerate=self.degenerate,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "format": "repro.assignment/1",
            "metric": self.metric_name,
            "estimator": self.estimator_name,
            "degenerate": self.degenerate,
            "paths": [list(p) for p in self.paths],
            "windows": {
                tid: {
                    "arrival": w.arrival,
                    "relative_deadline": w.relative_deadline,
                    "absolute_deadline": w.absolute_deadline,
                }
                for tid, w in self.windows.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeadlineAssignment":
        """Inverse of :meth:`to_dict`."""
        windows = {
            tid: TaskWindow(
                arrival=float(w["arrival"]),
                relative_deadline=float(w["relative_deadline"]),
                absolute_deadline=float(w["absolute_deadline"]),
            )
            for tid, w in data["windows"].items()
        }
        return cls(
            windows=windows,
            metric_name=data.get("metric", "?"),
            estimator_name=data.get("estimator", "?"),
            paths=[tuple(p) for p in data.get("paths", [])],
            degenerate=bool(data.get("degenerate", False)),
        )
