"""Task assignment and scheduling (§3.3, §5.4).

* :class:`EdfListScheduler` / :func:`schedule_edf` — the paper's
  baseline deadline-driven non-preemptive list scheduler.
* :class:`Schedule` — placements + quality measures (§4.2).
* :func:`validate_schedule` — independent constraint checker (oracle).
* :func:`render_gantt` — ASCII visualization.
* :class:`PreemptiveEdfScheduler` — §7.3 future-work extension.
"""

from .annealing import SimulatedAnnealingScheduler, schedule_annealed
from .branchbound import (
    BnbResult,
    BnbStatus,
    BranchAndBoundScheduler,
    schedule_branch_and_bound,
)
from .dispatch import (
    DispatchEntry,
    DispatchTable,
    build_dispatch_tables,
    idle_gaps,
    total_idle,
)
from .edf import EdfListScheduler, schedule_edf
from .gantt import render_gantt
from .listsched import (
    SCHEDULER_NAMES,
    FifoScheduler,
    LaxityScheduler,
    StaticLevelScheduler,
    get_scheduler,
)
from .preemptive import PreemptiveEdfScheduler, schedule_preemptive_edf
from .schedule import Schedule, ScheduledTask
from .trace import TraceEvent, iter_events, load_trace_csv, save_trace_csv
from .validate import assert_valid_schedule, validate_schedule

__all__ = [
    "EdfListScheduler",
    "schedule_edf",
    "StaticLevelScheduler",
    "FifoScheduler",
    "LaxityScheduler",
    "get_scheduler",
    "SCHEDULER_NAMES",
    "PreemptiveEdfScheduler",
    "schedule_preemptive_edf",
    "BranchAndBoundScheduler",
    "schedule_branch_and_bound",
    "BnbResult",
    "BnbStatus",
    "SimulatedAnnealingScheduler",
    "schedule_annealed",
    "Schedule",
    "ScheduledTask",
    "validate_schedule",
    "assert_valid_schedule",
    "render_gantt",
    "save_trace_csv",
    "load_trace_csv",
    "TraceEvent",
    "iter_events",
    "DispatchEntry",
    "DispatchTable",
    "build_dispatch_tables",
    "idle_gaps",
    "total_idle",
]
