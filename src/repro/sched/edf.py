"""Baseline deadline-driven list scheduler (§5.4).

A list-scheduling version of earliest-deadline-first: at each step the
ready task (all predecessors scheduled) with the closest absolute
deadline is selected and placed on the *eligible* processor yielding the
earliest start time, accounting for

* the task's assigned arrival time,
* the processor's previous non-preemptive commitments,
* worst-case interprocessor communication delays from predecessors
  (zero when the predecessor ran on the same processor, §3.1), and
* (extension, §7.3) serialization on shared logical resources.

The schedule is *time-driven and non-preemptive*: once placed, a task
occupies ``[s_i, s_i + c_i]`` on its processor.  A task set succeeds
when every task can be placed with ``f_i <= D_i``; the default behaviour
fails fast on the first miss (what the success-ratio experiments count),
while ``continue_on_miss=True`` completes the schedule to expose the
maximum lateness (the secondary quality measure of §4.2, used by the
evaluation of reference [12]).
"""

from __future__ import annotations

import heapq
from typing import Mapping, Sequence

from ..core.assignment import DeadlineAssignment
from ..errors import SchedulingError
from ..graph.taskgraph import TaskGraph
from ..system.interconnect import CommunicationModel
from ..system.platform import Platform
from ..types import Time
from .schedule import Schedule, ScheduledTask

__all__ = ["EdfListScheduler", "schedule_edf"]


class EdfListScheduler:
    """The paper's baseline task-assignment-and-scheduling algorithm.

    Parameters
    ----------
    continue_on_miss:
        When ``False`` (default, matching the success-ratio experiments)
        scheduling stops at the first deadline miss; when ``True`` the
        scheduler places every task anyway so lateness can be measured.
    """

    name = "EDF-LIST"

    def __init__(self, *, continue_on_miss: bool = False) -> None:
        self.continue_on_miss = continue_on_miss

    def schedule(
        self,
        graph: TaskGraph,
        platform: Platform,
        assignment: DeadlineAssignment,
        *,
        comm: CommunicationModel | None = None,
        predecessors: Mapping[str, Sequence[str]] | None = None,
        successors: Mapping[str, Sequence[str]] | None = None,
        compiled=None,
    ) -> Schedule:
        """Schedule *graph* on *platform* under *assignment* windows.

        ``predecessors``/``successors`` optionally inject the immediate
        adjacency of *graph* (both must cover every task), so callers
        that schedule the same graph repeatedly — e.g. the paired-trial
        experiment engine — derive it once instead of once per schedule.
        ``compiled`` optionally injects the workload's
        :class:`~repro.kernel.compiled.CompiledWorkload`; the stock
        scheduler then runs the integer-indexed kernel loop
        (bit-identical, subject to ``REPRO_KERNEL``).  Subclasses that
        override placement hooks always take the reference loop.
        """
        if compiled is not None and type(self) is EdfListScheduler:
            from ..kernel.trial import kernel_enabled

            if kernel_enabled():
                return self._schedule_kernel(compiled, assignment, comm)

        comm_model = comm if comm is not None else platform.comm
        comm_model.reset()

        for tid in graph.task_ids():
            if tid not in assignment:
                raise SchedulingError(
                    f"task {tid!r} has no window in the deadline assignment"
                )

        proc_free = self._initial_proc_free(platform)
        resource_free: dict[str, Time] = {}
        # The graph is immutable for the duration of one schedule, so pin
        # the adjacency once instead of re-deriving it per placement probe.
        if predecessors is None:
            predecessors = {
                tid: graph.predecessors(tid) for tid in graph.task_ids()
            }
        if successors is None:
            successors = {
                tid: graph.successors(tid) for tid in graph.task_ids()
            }
        remaining_preds: dict[str, int] = {
            tid: len(preds) for tid, preds in predecessors.items()
        }
        processors = list(platform.processors())

        result = Schedule(scheduler_name=self.name)

        # Ready min-heap keyed by (absolute deadline, id) — deterministic.
        ready: list[tuple[Time, str]] = [
            (assignment.absolute_deadline(tid), tid)
            for tid, n in remaining_preds.items()
            if n == 0
        ]
        heapq.heapify(ready)

        while ready:
            _, tid = heapq.heappop(ready)
            task = graph.task(tid)
            window = assignment.window(tid)

            placement = self._best_placement(
                tid, task, graph, platform, result.entries, proc_free,
                resource_free, comm_model, window.arrival,
                predecessors=predecessors[tid], processors=processors,
            )
            if placement is None:
                result.feasible = False
                result.failed_task = tid
                result.failure_reason = (
                    f"task {tid!r} has no eligible processor on this platform"
                )
                return result
            proc_id, start, finish = placement

            # Commit transfers on the chosen processor.  For stateful
            # contention models the actual bus reservations may push the
            # data-ready time (and hence start/finish) past the nominal
            # estimate used for processor selection.
            data_ready = self._commit_transfers(
                tid, graph, platform, result.entries, comm_model, proc_id,
                predecessors=predecessors[tid],
            )
            if data_ready > start:
                resource_floor = max(
                    (resource_free.get(r, 0.0) for r in task.resources),
                    default=0.0,
                )
                start = max(
                    data_ready, proc_free[proc_id], resource_floor,
                    window.arrival,
                )
                finish = start + task.wcet_on(platform.class_of(proc_id))

            if finish > window.absolute_deadline + 1e-9:
                result.feasible = False
                if result.failed_task is None:
                    result.failed_task = tid
                    result.failure_reason = (
                        f"task {tid!r} finishes at {finish:g} past its "
                        f"absolute deadline {window.absolute_deadline:g}"
                    )
                if not self.continue_on_miss:
                    return result

            result.entries[tid] = ScheduledTask(
                task_id=tid,
                processor=proc_id,
                start=start,
                finish=finish,
                arrival=window.arrival,
                absolute_deadline=window.absolute_deadline,
            )
            proc_free[proc_id] = finish
            for res in task.resources:
                resource_free[res] = finish

            for succ in successors[tid]:
                remaining_preds[succ] -= 1
                if remaining_preds[succ] == 0:
                    heapq.heappush(
                        ready, (assignment.absolute_deadline(succ), succ)
                    )

        if len(result.entries) != graph.n_tasks and result.feasible:
            raise SchedulingError(
                "ready queue drained before all tasks were scheduled "
                "(the task graph must be cyclic)"
            )
        return result

    # ------------------------------------------------------------------
    def _schedule_kernel(
        self,
        compiled,
        assignment: DeadlineAssignment,
        comm: CommunicationModel | None,
    ) -> Schedule:
        """Run the compiled-kernel EDF loop and materialize a Schedule."""
        from ..kernel.edf import kernel_schedule_edf

        win_a = [0.0] * compiled.n
        win_d = [0.0] * compiled.n
        for i, tid in enumerate(compiled.ids):
            if tid not in assignment:
                raise SchedulingError(
                    f"task {tid!r} has no window in the deadline assignment"
                )
            w = assignment.window(tid)
            win_a[i] = w.arrival
            win_d[i] = w.absolute_deadline
        ks = kernel_schedule_edf(
            compiled,
            win_a,
            win_d,
            comm=comm,
            continue_on_miss=self.continue_on_miss,
        )
        return ks.to_schedule()

    def _initial_proc_free(self, platform: Platform) -> dict[str, Time]:
        """Per-processor earliest availability (override to warm-start)."""
        return {p.id: 0.0 for p in platform.processors()}

    def _best_placement(
        self,
        tid: str,
        task,
        graph: TaskGraph,
        platform: Platform,
        entries: Mapping[str, ScheduledTask],
        proc_free: Mapping[str, Time],
        resource_free: Mapping[str, Time],
        comm_model: CommunicationModel,
        arrival: Time,
        predecessors: Sequence[str] | None = None,
        processors: Sequence | None = None,
    ) -> tuple[str, Time, Time] | None:
        """Pick the eligible processor with the earliest start time.

        Processor choice uses the *nominal* communication cost even for
        stateful contention models (reservations are committed only for
        the chosen processor); ties break on earlier finish, then on
        processor id, keeping the scheduler deterministic.
        ``predecessors``/``processors`` optionally inject the adjacency
        and processor list (the main loop pins both once per schedule).
        """
        if predecessors is None:
            predecessors = graph.predecessors(tid)
        if processors is None:
            processors = list(platform.processors())
        if task.resources:
            resource_floor = max(
                (resource_free.get(r, 0.0) for r in task.resources),
                default=0.0,
            )
        else:
            resource_floor = 0.0
        # The placed predecessors, their finish times, and the message
        # sizes do not depend on the probed processor: resolve them once
        # instead of once per processor.
        incoming = []
        for pred in predecessors:
            entry = entries.get(pred)
            if entry is None:
                # continue_on_miss keeps going after failures; an
                # unplaced predecessor cannot happen otherwise.
                continue
            incoming.append(
                (entry.processor, entry.finish, graph.message_size(pred, tid))
            )
        cost = comm_model.cost
        wcet = task.wcet
        best: tuple[Time, Time, str] | None = None
        for proc in processors:
            # Ineligible classes are absent from the WCET map, so one
            # lookup answers eligibility and execution time together.
            c = wcet.get(proc.cls)
            if c is None:
                continue
            dst = proc.id
            start = arrival
            for src, pred_finish, size in incoming:
                # cost() is 0 for co-located tasks (CommunicationModel
                # contract), so skip the model call on the same processor.
                ready = (
                    pred_finish if src == dst
                    else pred_finish + cost(src, dst, size)
                )
                if ready > start:
                    start = ready
            free = proc_free[dst]
            if free > start:
                start = free
            if resource_floor > start:
                start = resource_floor
            key = (start, start + c, dst)
            if best is None or key < best:
                best = key
        if best is None:
            return None
        start, finish, proc_id = best
        return proc_id, start, finish

    def _commit_transfers(
        self,
        tid: str,
        graph: TaskGraph,
        platform: Platform,
        entries: Mapping[str, ScheduledTask],
        comm_model: CommunicationModel,
        proc_id: str,
        predecessors: Sequence[str] | None = None,
    ) -> Time:
        """Reserve bus time for the chosen placement; return data-ready time."""
        if predecessors is None:
            predecessors = graph.predecessors(tid)
        data_ready = 0.0
        for pred in predecessors:
            entry = entries.get(pred)
            if entry is None:
                continue
            if entry.processor == proc_id:
                data_ready = max(data_ready, entry.finish)
                continue
            arrived = comm_model.transfer(
                entry.processor,
                proc_id,
                graph.message_size(pred, tid),
                entry.finish,
            )
            data_ready = max(data_ready, arrived)
        return data_ready


def schedule_edf(
    graph: TaskGraph,
    platform: Platform,
    assignment: DeadlineAssignment,
    *,
    continue_on_miss: bool = False,
    comm: CommunicationModel | None = None,
) -> Schedule:
    """Convenience wrapper around :class:`EdfListScheduler`."""
    return EdfListScheduler(continue_on_miss=continue_on_miss).schedule(
        graph, platform, assignment, comm=comm
    )
