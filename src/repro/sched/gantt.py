"""ASCII Gantt-chart rendering of schedules (debugging/examples aid)."""

from __future__ import annotations

from ..system.platform import Platform
from .schedule import Schedule

__all__ = ["render_gantt"]


def render_gantt(
    schedule: Schedule,
    platform: Platform | None = None,
    *,
    width: int = 72,
) -> str:
    """Render *schedule* as a fixed-width ASCII Gantt chart.

    One row per processor; each task is drawn as ``[id....]`` scaled to
    the makespan.  Tasks too narrow for their label degrade to ``#``
    marks.  Purely cosmetic — never used by algorithms or tests of
    algorithmic behaviour.
    """
    if not schedule.entries:
        return "(empty schedule)"
    span = schedule.makespan
    if span <= 0.0:
        return "(zero-length schedule)"
    procs = (
        [p.id for p in platform.processors()]
        if platform is not None
        else sorted({e.processor for e in schedule})
    )
    scale = width / span
    label_w = max(len(p) for p in procs) + 1

    lines: list[str] = []
    header = " " * label_w + "0" + " " * (width - len(f"{span:g}")) + f"{span:g}"
    lines.append(header)
    for proc in procs:
        row = [" "] * (width + 1)
        for entry in schedule.tasks_on(proc):
            lo = int(round(entry.start * scale))
            hi = max(lo + 1, int(round(entry.finish * scale)))
            hi = min(hi, width + 1)
            block = list("#" * (hi - lo))
            label = entry.task_id
            if len(block) >= len(label) + 2:
                block = list("[" + label.ljust(len(block) - 2, ".") + "]")
            for i, ch in enumerate(block):
                if 0 <= lo + i <= width:
                    row[lo + i] = ch
        lines.append(proc.ljust(label_w) + "".join(row).rstrip())
    status = "feasible" if schedule.feasible else (
        f"INFEASIBLE ({schedule.failure_reason})"
        if schedule.failure_reason
        else "INFEASIBLE"
    )
    lines.append(f"makespan={span:g}  {status}")
    return "\n".join(lines)
