"""Schedule trace export/import (CSV) and event streams.

Traces make schedules consumable by external tools (spreadsheets,
plotters, trace viewers): one CSV row per placement, ordered by start
time, plus an event-stream view (start/finish instants) for building
timelines.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

from ..errors import SerializationError
from .schedule import Schedule, ScheduledTask

__all__ = ["save_trace_csv", "load_trace_csv", "TraceEvent", "iter_events"]

_FIELDS = (
    "task_id",
    "processor",
    "start",
    "finish",
    "arrival",
    "absolute_deadline",
    "lateness",
)


def save_trace_csv(schedule: Schedule, path: str | Path) -> None:
    """Write one row per scheduled task, ordered by start time."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_FIELDS)
        for e in sorted(schedule, key=lambda e: (e.start, e.task_id)):
            writer.writerow(
                [
                    e.task_id,
                    e.processor,
                    e.start,
                    e.finish,
                    e.arrival,
                    e.absolute_deadline,
                    e.lateness,
                ]
            )


def load_trace_csv(path: str | Path) -> Schedule:
    """Rebuild a :class:`Schedule` from :func:`save_trace_csv` output.

    The feasibility verdict is recomputed from the loaded lateness
    values (the CSV carries placements, not the scheduler's verdict).
    """
    sched = Schedule(scheduler_name="TRACE")
    try:
        with open(path, newline="") as fh:
            reader = csv.DictReader(fh)
            if reader.fieldnames is None or set(_FIELDS[:-1]) - set(
                reader.fieldnames
            ):
                raise SerializationError(
                    f"trace {path} is missing required columns"
                )
            for row in reader:
                entry = ScheduledTask(
                    task_id=row["task_id"],
                    processor=row["processor"],
                    start=float(row["start"]),
                    finish=float(row["finish"]),
                    arrival=float(row["arrival"]),
                    absolute_deadline=float(row["absolute_deadline"]),
                )
                sched.entries[entry.task_id] = entry
    except (OSError, ValueError) as exc:
        raise SerializationError(f"cannot load trace {path}: {exc}") from exc
    sched.feasible = all(e.meets_deadline for e in sched)
    return sched


@dataclass(frozen=True)
class TraceEvent:
    """One instant in the schedule's event stream."""

    time: float
    kind: str  # "start" | "finish"
    task_id: str
    processor: str


def iter_events(schedule: Schedule) -> list[TraceEvent]:
    """Chronological start/finish events (finish before start on ties,
    so back-to-back executions appear as release-then-acquire)."""
    events: list[TraceEvent] = []
    for e in schedule:
        events.append(TraceEvent(e.start, "start", e.task_id, e.processor))
        events.append(TraceEvent(e.finish, "finish", e.task_id, e.processor))
    events.sort(key=lambda ev: (ev.time, ev.kind == "start", ev.task_id))
    return events
