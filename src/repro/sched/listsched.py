"""Alternative list-scheduling policies (§7.3 future work).

The paper's baseline selects ready tasks by earliest absolute deadline
(EDF).  To explore how the deadline-distribution metrics behave under
other task-assignment-and-scheduling policies, this module provides the
same greedy list-scheduling skeleton with pluggable priority rules:

* :class:`StaticLevelScheduler` — highest static level first (the
  classical HLFET rule): deadline-agnostic, favours the critical path;
* :class:`FifoScheduler` — earliest assigned arrival time first
  (deadline-agnostic, time-driven dispatch order);
* :class:`LaxityScheduler` — least *static* laxity (``d_i − c̄_i``)
  first.  Deliberately cautionary: laxity ordering ignores the
  timeline, so the policy commits far-future tight-window tasks first
  and starves the early windows — a vivid demonstration that the
  slicing windows encode *when*, not just *how urgent*.

All policies share the placement rule of the baseline (§5.4): the
eligible processor yielding the earliest start time, accounting for
communication and arrival constraints, with shared-resource
serialization.  They reuse :class:`~repro.sched.edf.EdfListScheduler`'s
machinery by overriding the ready-queue key.
"""

from __future__ import annotations

from typing import Mapping

from ..core.assignment import DeadlineAssignment
from ..errors import SchedulingError
from ..graph.algorithms import static_levels
from ..graph.taskgraph import TaskGraph
from ..types import Time
from .edf import EdfListScheduler

__all__ = [
    "StaticLevelScheduler",
    "FifoScheduler",
    "LaxityScheduler",
    "get_scheduler",
    "SCHEDULER_NAMES",
]


class _KeyedListScheduler(EdfListScheduler):
    """List scheduler whose ready-queue priority is a pluggable key."""

    def priorities(
        self, graph: TaskGraph, assignment: DeadlineAssignment
    ) -> Mapping[str, Time]:
        """Smaller value == higher priority; must cover every task."""
        raise NotImplementedError

    def schedule(
        self,
        graph,
        platform,
        assignment,
        *,
        comm=None,
        predecessors=None,
        successors=None,
        compiled=None,
    ):
        keys = self.priorities(graph, assignment)
        missing = [t for t in graph.task_ids() if t not in keys]
        if missing:
            raise SchedulingError(
                f"priority rule left tasks unprioritized: {missing[:5]}"
            )
        # The base class consults assignment.absolute_deadline() only to
        # order its ready heap; window lookups (arrival constraints,
        # deadline-miss checks) read the window object directly.  A
        # proxy substitutes the priority key for the heap ordering while
        # delegating windows to the real assignment.
        proxy = _PriorityProxy(assignment, dict(keys))
        # ``compiled`` is accepted for signature compatibility but never
        # forwarded: the kernel heap orders by real deadlines, not by
        # the proxy's substituted priority key.
        return super().schedule(
            graph,
            platform,
            proxy,
            comm=comm,
            predecessors=predecessors,
            successors=successors,
        )


class _PriorityProxy:
    """Assignment proxy whose ``absolute_deadline`` is the priority key.

    The EDF machinery orders its ready heap by ``absolute_deadline``;
    the proxy substitutes an arbitrary priority there while delegating
    window lookups (arrival, deadline-miss checks) to the real
    assignment via :meth:`window`.
    """

    def __init__(
        self, assignment: DeadlineAssignment, keys: Mapping[str, Time]
    ) -> None:
        self._assignment = assignment
        self._keys = keys

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._assignment

    def window(self, task_id: str):
        return self._assignment.window(task_id)

    def arrival(self, task_id: str) -> Time:
        return self._assignment.arrival(task_id)

    def absolute_deadline(self, task_id: str) -> Time:
        return self._keys[task_id]


class StaticLevelScheduler(_KeyedListScheduler):
    """Highest static level first (HLFET): critical-path-driven."""

    name = "SL-LIST"

    def priorities(self, graph, assignment):
        levels = static_levels(graph, lambda t: graph.task(t).mean_wcet())
        # higher level == higher priority == smaller key
        return {tid: -level for tid, level in levels.items()}


class FifoScheduler(_KeyedListScheduler):
    """Earliest assigned arrival first (time-driven dispatch order)."""

    name = "FIFO-LIST"

    def priorities(self, graph, assignment):
        return {tid: assignment.arrival(tid) for tid in graph.task_ids()}


class LaxityScheduler(_KeyedListScheduler):
    """Least static laxity first (LLF on the assignment windows)."""

    name = "LLF-LIST"

    def priorities(self, graph, assignment):
        out: dict[str, Time] = {}
        for tid in graph.task_ids():
            w = assignment.window(tid)
            out[tid] = w.relative_deadline - graph.task(tid).mean_wcet()
        return out


#: Scheduler registry (non-preemptive list-scheduling family).
SCHEDULER_NAMES: tuple[str, ...] = (
    "EDF-LIST",
    "SL-LIST",
    "FIFO-LIST",
    "LLF-LIST",
)


_SCHEDULER_CLASSES: dict[str, type[EdfListScheduler]] = {
    "EDF-LIST": EdfListScheduler,
    "EDF": EdfListScheduler,
    "SL-LIST": StaticLevelScheduler,
    "SL": StaticLevelScheduler,
    "HLFET": StaticLevelScheduler,
    "FIFO-LIST": FifoScheduler,
    "FIFO": FifoScheduler,
    "LLF-LIST": LaxityScheduler,
    "LLF": LaxityScheduler,
}

#: Shared instances keyed by (class, continue_on_miss).  The list
#: schedulers hold no per-run state (``schedule`` builds everything it
#: mutates locally), so the experiment engines can call
#: :func:`get_scheduler` once per trial per series without paying a
#: construction each time.
_SCHEDULER_CACHE: dict[tuple[type, bool], EdfListScheduler] = {}


def get_scheduler(name: str, *, continue_on_miss: bool = False):
    """Resolve a list scheduler by registry name (shared instances)."""
    cls = _SCHEDULER_CLASSES.get(name.upper())
    if cls is None:
        raise SchedulingError(
            f"unknown scheduler {name!r}; choose from {SCHEDULER_NAMES}"
        )
    key = (cls, continue_on_miss)
    scheduler = _SCHEDULER_CACHE.get(key)
    if scheduler is None:
        scheduler = cls(continue_on_miss=continue_on_miss)
        _SCHEDULER_CACHE[key] = scheduler
    return scheduler
