"""Time-driven dispatch tables — the run-time model of §3.3.

The paper assumes a *time-driven, non-preemptive* dispatching strategy:
at run time each processor executes a pre-computed table of (start
instant, task) entries, repeating every planning cycle.  This module
turns a validated :class:`~repro.sched.schedule.Schedule` into that
artifact:

* :class:`DispatchTable` — one processor's cyclic program, with lookup
  (:meth:`running_at`), idle-gap enumeration and utilization;
* :func:`build_dispatch_tables` — tables for a whole platform, checked
  against the cycle length (entries must fit inside one cycle, since a
  table repeats verbatim);
* :func:`idle_gaps` / :func:`total_idle` — the residual capacity
  profile, the quantity an admission controller trades in.

Tables serialize to a plain dict (`to_dict`) so they can be shipped to
a target system or diffed between builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import SchedulingError
from ..system.platform import Platform
from ..types import Time
from .schedule import Schedule

__all__ = [
    "DispatchEntry",
    "DispatchTable",
    "build_dispatch_tables",
    "idle_gaps",
    "total_idle",
]


@dataclass(frozen=True)
class DispatchEntry:
    """One table row: run *task_id* over ``[start, finish)``."""

    start: Time
    finish: Time
    task_id: str

    @property
    def duration(self) -> Time:
        return self.finish - self.start


@dataclass
class DispatchTable:
    """A processor's cyclic time-driven program."""

    processor: str
    cycle_length: Time
    entries: list[DispatchEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.cycle_length <= 0.0:
            raise SchedulingError("cycle length must be positive")
        self.entries.sort(key=lambda e: e.start)
        prev_finish = 0.0
        for e in self.entries:
            if e.start < -1e-9 or e.finish > self.cycle_length + 1e-9:
                raise SchedulingError(
                    f"entry {e.task_id!r} [{e.start:g}, {e.finish:g}] "
                    f"does not fit in the cycle [0, {self.cycle_length:g})"
                )
            if e.start < prev_finish - 1e-9:
                raise SchedulingError(
                    f"entry {e.task_id!r} overlaps its predecessor on "
                    f"processor {self.processor!r}"
                )
            prev_finish = e.finish

    # ------------------------------------------------------------------
    def running_at(self, t: Time) -> str | None:
        """Task executing at cyclic instant *t* (``None`` when idle)."""
        phase = t % self.cycle_length
        for e in self.entries:
            if e.start - 1e-9 <= phase < e.finish - 1e-9:
                return e.task_id
        return None

    def busy_time(self) -> Time:
        """Total execution time per cycle."""
        return sum(e.duration for e in self.entries)

    def utilization(self) -> float:
        """Busy fraction of the cycle."""
        return self.busy_time() / self.cycle_length

    def gaps(self) -> list[tuple[Time, Time]]:
        """Idle intervals within one cycle, in order."""
        out: list[tuple[Time, Time]] = []
        cursor = 0.0
        for e in self.entries:
            if e.start > cursor + 1e-9:
                out.append((cursor, e.start))
            cursor = max(cursor, e.finish)
        if cursor < self.cycle_length - 1e-9:
            out.append((cursor, self.cycle_length))
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "processor": self.processor,
            "cycle_length": self.cycle_length,
            "entries": [
                {"start": e.start, "finish": e.finish, "task": e.task_id}
                for e in self.entries
            ],
        }


def build_dispatch_tables(
    schedule: Schedule,
    platform: Platform,
    *,
    cycle_length: Time | None = None,
) -> dict[str, DispatchTable]:
    """Dispatch tables for every platform processor.

    *cycle_length* defaults to the schedule's makespan rounded up to the
    next integer time unit (§3.1).  Raises when some placement does not
    fit inside the cycle — a table repeats verbatim each cycle, so an
    overhanging entry would collide with the next cycle's start.
    """
    if cycle_length is None:
        import math

        cycle_length = float(max(1, math.ceil(schedule.makespan - 1e-9)))
    tables: dict[str, DispatchTable] = {}
    for proc in platform.processors():
        entries = [
            DispatchEntry(e.start, e.finish, e.task_id)
            for e in schedule.tasks_on(proc.id)
        ]
        tables[proc.id] = DispatchTable(
            processor=proc.id,
            cycle_length=cycle_length,
            entries=entries,
        )
    return tables


def idle_gaps(
    tables: dict[str, DispatchTable]
) -> dict[str, list[tuple[Time, Time]]]:
    """Idle intervals per processor."""
    return {proc: table.gaps() for proc, table in tables.items()}


def total_idle(tables: dict[str, DispatchTable]) -> Time:
    """Aggregate idle time per cycle across all processors."""
    return sum(
        table.cycle_length - table.busy_time() for table in tables.values()
    )
