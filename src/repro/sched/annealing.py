"""Simulated-annealing schedule improvement (cf. [15], §7.3).

Di Natale & Stankovic [15] applied simulated annealing to real-time
scheduling and jitter control; the paper lists exploring the metrics
under such alternative policies as future work.  This module provides
a deterministic (seeded) annealer over *dispatch priority orders*:

* a state is a priority map over tasks; the schedule it induces is
  produced by the same greedy list-scheduling placement as the EDF
  baseline (so every visited schedule is structurally valid);
* the energy of a state is the induced schedule's total tardiness
  (sum of positive lateness), with the miss count as a tie-breaker;
* neighbours swap the priorities of two random tasks;
* cooling is geometric; the best state ever visited wins.

Starting from the EDF priorities, the annealer can repair deadline
misses the one-shot greedy commitment causes, at polynomially bounded
extra cost (`iterations` full list-scheduling passes).
"""

from __future__ import annotations

import math

from ..core.assignment import DeadlineAssignment
from ..errors import SchedulingError
from ..graph.taskgraph import TaskGraph
from ..rng import make_rng
from ..system.interconnect import CommunicationModel
from ..system.platform import Platform
from .edf import EdfListScheduler
from .listsched import _PriorityProxy
from .schedule import Schedule

__all__ = ["SimulatedAnnealingScheduler", "schedule_annealed"]


def _energy(schedule: Schedule) -> tuple[float, int]:
    """(total tardiness, miss count) — lexicographically minimized."""
    tardiness = 0.0
    misses = 0
    for entry in schedule:
        late = entry.lateness
        if late > 1e-9:
            tardiness += late
            misses += 1
    return tardiness, misses


class SimulatedAnnealingScheduler:
    """Anneal the dispatch order of the non-preemptive list scheduler.

    Parameters
    ----------
    iterations:
        Neighbour evaluations (each is one full list-scheduling pass).
    seed:
        RNG seed; results are deterministic given the seed.
    initial_temperature / cooling:
        Geometric cooling schedule for the Metropolis criterion, in
        units of tardiness.
    """

    name = "SA-LIST"

    def __init__(
        self,
        iterations: int = 400,
        seed: int = 0,
        initial_temperature: float = 50.0,
        cooling: float = 0.99,
    ) -> None:
        if iterations < 0:
            raise SchedulingError("iterations must be non-negative")
        if not (0.0 < cooling <= 1.0):
            raise SchedulingError("cooling factor must be in (0, 1]")
        if initial_temperature <= 0.0:
            raise SchedulingError("initial temperature must be positive")
        self.iterations = iterations
        self.seed = seed
        self.initial_temperature = initial_temperature
        self.cooling = cooling

    def schedule(
        self,
        graph: TaskGraph,
        platform: Platform,
        assignment: DeadlineAssignment,
        *,
        comm: CommunicationModel | None = None,
    ) -> Schedule:
        """Return the best schedule found (feasible iff tardiness 0)."""
        rng = make_rng(self.seed)
        lister = EdfListScheduler(continue_on_miss=True)
        task_ids = graph.task_ids()
        if not task_ids:
            raise SchedulingError("cannot schedule an empty task graph")

        def evaluate(priorities: dict[str, float]) -> Schedule:
            proxy = _PriorityProxy(assignment, priorities)
            sched = lister.schedule(graph, platform, proxy, comm=comm)
            sched.scheduler_name = self.name
            return sched

        # Start from the EDF baseline order.
        current_prio = {
            tid: assignment.absolute_deadline(tid) for tid in task_ids
        }
        current = evaluate(current_prio)
        current_e = _energy(current)
        best, best_e = current, current_e

        temperature = self.initial_temperature
        n = len(task_ids)
        for _ in range(self.iterations):
            if best_e[0] <= 0.0:
                break  # already feasible: nothing to repair
            i, j = rng.integers(0, n, size=2)
            if i == j:
                continue
            a, b = task_ids[int(i)], task_ids[int(j)]
            cand_prio = dict(current_prio)
            cand_prio[a], cand_prio[b] = cand_prio[b], cand_prio[a]
            cand = evaluate(cand_prio)
            cand_e = _energy(cand)

            delta = cand_e[0] - current_e[0]
            accept = delta <= 0.0 or (
                temperature > 1e-12
                and rng.random() < math.exp(-delta / temperature)
            )
            if accept:
                current_prio, current, current_e = cand_prio, cand, cand_e
                if cand_e < best_e:
                    best, best_e = cand, cand_e
            temperature *= self.cooling

        # Normalize the verdict: the proxy evaluation ran with
        # continue_on_miss, so recompute feasibility from lateness.
        best.feasible = best_e[0] <= 0.0
        if not best.feasible and best.failed_task is None:
            missed = best.missed_tasks()
            best.failed_task = missed[0] if missed else None
            best.failure_reason = (
                f"{len(missed)} task(s) remain tardy after annealing"
            )
        return best


def schedule_annealed(
    graph: TaskGraph,
    platform: Platform,
    assignment: DeadlineAssignment,
    *,
    iterations: int = 400,
    seed: int = 0,
    comm: CommunicationModel | None = None,
) -> Schedule:
    """Convenience wrapper around :class:`SimulatedAnnealingScheduler`."""
    return SimulatedAnnealingScheduler(
        iterations=iterations, seed=seed
    ).schedule(graph, platform, assignment, comm=comm)
