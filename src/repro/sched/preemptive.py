"""Global preemptive EDF dispatching — a §7.3 future-work extension.

The paper evaluates the slicing technique under a *non-preemptive*
time-driven dispatcher but stresses (implications I1/I2) that the
technique itself is not tied to that run-time model.  This module
provides a global preemptive EDF simulator so the metrics can be
compared under an alternative dispatching policy.

Scope: the simulator supports **identical** processors only (a single
processor class).  Migrating a partially-executed job between
heterogeneous classes has no well-defined remaining-time semantics in
the WCET-vector model, and the paper's heterogeneity results all use the
non-preemptive baseline.

Communication: when a job migrates or follows a predecessor placed on a
different processor, the worst-case message delay is charged from the
predecessor's finish time, exactly as in the non-preemptive model.
Because jobs migrate freely, the conservative choice — charging the
delay regardless of final placement whenever a message has nonzero size
— is used for release computation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..core.assignment import DeadlineAssignment
from ..errors import SchedulingError
from ..graph.taskgraph import TaskGraph
from ..system.platform import Platform
from ..types import Time
from .schedule import Schedule, ScheduledTask

__all__ = ["PreemptiveEdfScheduler", "schedule_preemptive_edf"]


@dataclass
class _Job:
    tid: str
    deadline: Time
    remaining: Time
    released: bool = False


class PreemptiveEdfScheduler:
    """Global preemptive EDF on identical processors.

    The simulation advances between release/completion events; at every
    event instant the ``m`` earliest-deadline released-and-unfinished
    jobs execute.  The reported per-task ``start``/``finish`` are the
    first dispatch and the completion instants (a preempted task is a
    single logical entry; the preemption pattern is internal).
    """

    name = "EDF-PREEMPTIVE"

    def schedule(
        self,
        graph: TaskGraph,
        platform: Platform,
        assignment: DeadlineAssignment,
    ) -> Schedule:
        classes = set(platform.used_class_ids())
        if len(classes) != 1:
            raise SchedulingError(
                "the preemptive EDF extension supports identical "
                f"processors only (platform uses classes {sorted(classes)})"
            )
        cls = next(iter(classes))
        m = platform.m

        jobs: dict[str, _Job] = {}
        for tid in graph.task_ids():
            task = graph.task(tid)
            if not task.is_eligible(cls):
                sched = Schedule(scheduler_name=self.name, feasible=False)
                sched.failed_task = tid
                sched.failure_reason = (
                    f"task {tid!r} is ineligible on class {cls!r}"
                )
                return sched
            jobs[tid] = _Job(
                tid=tid,
                deadline=assignment.absolute_deadline(tid),
                remaining=task.wcet_on(cls),
            )

        remaining_preds = {tid: graph.in_degree(tid) for tid in graph.task_ids()}
        release_time: dict[str, Time] = {
            tid: assignment.arrival(tid)
            for tid, n in remaining_preds.items()
            if n == 0
        }
        finish_time: dict[str, Time] = {}
        first_dispatch: dict[str, Time] = {}

        # Event-driven simulation over release instants.
        pending_releases: list[tuple[Time, str]] = [
            (t, tid) for tid, t in release_time.items()
        ]
        heapq.heapify(pending_releases)
        running: list[str] = []  # released, unfinished
        now = 0.0

        result = Schedule(scheduler_name=self.name)
        n_done = 0
        guard = 0
        max_events = 8 * graph.n_tasks * graph.n_tasks + 64

        while n_done < graph.n_tasks:
            guard += 1
            if guard > max_events:
                raise SchedulingError(
                    "preemptive EDF simulation exceeded its event budget"
                )
            # Admit all releases at or before `now`.
            while pending_releases and pending_releases[0][0] <= now + 1e-12:
                _, tid = heapq.heappop(pending_releases)
                jobs[tid].released = True
                running.append(tid)
            if not running:
                if not pending_releases:
                    raise SchedulingError(
                        "simulation stalled with unfinished tasks "
                        "(cyclic task graph?)"
                    )
                now = pending_releases[0][0]
                continue

            # Pick the m earliest-deadline jobs to execute.
            running.sort(key=lambda t: (jobs[t].deadline, t))
            active = running[:m]
            for tid in active:
                first_dispatch.setdefault(tid, now)

            # Advance to the next completion or release.
            dt_complete = min(jobs[t].remaining for t in active)
            horizon = now + dt_complete
            if pending_releases and pending_releases[0][0] < horizon:
                horizon = pending_releases[0][0]
            dt = horizon - now
            for tid in active:
                jobs[tid].remaining -= dt
            now = horizon

            completed = [t for t in active if jobs[t].remaining <= 1e-12]
            for tid in completed:
                running.remove(tid)
                finish_time[tid] = now
                n_done += 1
                # Successor releases include the worst-case message
                # delay between two distinct (identical) processors.
                for succ in graph.successors(tid):
                    remaining_preds[succ] -= 1
                    size = graph.message_size(tid, succ)
                    procs = platform.processor_ids()
                    delay = (
                        platform.communication_cost(procs[0], procs[-1], size)
                        if len(procs) > 1
                        else 0.0
                    )
                    bound = max(assignment.arrival(succ), now + delay)
                    prev = release_time.get(succ)
                    release_time[succ] = max(prev, bound) if prev else bound
                    if remaining_preds[succ] == 0:
                        heapq.heappush(
                            pending_releases, (release_time[succ], succ)
                        )

        # Assemble the logical schedule (processor identity is synthetic
        # under global EDF; tasks are attributed round-robin for display).
        procs = platform.processor_ids()
        feasible = True
        for i, tid in enumerate(sorted(finish_time, key=lambda t: first_dispatch[t])):
            entry = ScheduledTask(
                task_id=tid,
                processor=procs[i % len(procs)],
                start=first_dispatch[tid],
                finish=finish_time[tid],
                arrival=assignment.arrival(tid),
                absolute_deadline=assignment.absolute_deadline(tid),
            )
            result.entries[tid] = entry
            if not entry.meets_deadline:
                feasible = False
                if result.failed_task is None:
                    result.failed_task = tid
                    result.failure_reason = (
                        f"task {tid!r} completes at {entry.finish:g} past "
                        f"its deadline {entry.absolute_deadline:g}"
                    )
        result.feasible = feasible
        return result


def schedule_preemptive_edf(
    graph: TaskGraph,
    platform: Platform,
    assignment: DeadlineAssignment,
) -> Schedule:
    """Convenience wrapper around :class:`PreemptiveEdfScheduler`."""
    return PreemptiveEdfScheduler().schedule(graph, platform, assignment)
