"""Branch-and-bound task assignment and scheduling (§1 [3,4], §7.2).

The paper contrasts its polynomial heuristic baseline with
branch-and-bound assignment strategies and argues (§7.2) that ADAPT-L's
O(n³) preparation is negligible next to a branch-and-bound scheduler.
This module provides that scheduler: an exhaustive search over
(task order × processor assignment) for a time-driven non-preemptive
schedule meeting every window of a deadline assignment.

Search organization
-------------------
* Nodes expand the precedence-ready task with the earliest absolute
  deadline first and try eligible processors ordered by earliest start
  (so the first leaf reached is exactly the EDF-list schedule and any
  feasible EDF solution is found without backtracking).
* Unlike the list scheduler, other ready tasks are also branched on,
  so deadline-driven commitment mistakes can be undone.
* Pruning: a partial schedule is abandoned when any unscheduled task
  provably misses its deadline — using an optimistic completion bound
  (data-ready time from scheduled predecessors, zero communication for
  unscheduled ones, minimum per-class WCET, earliest processor
  availability) that never overestimates, so pruning is exact.
* A node budget keeps worst-case exponential instances bounded; the
  result distinguishes *proved infeasible* from *budget exhausted*.

The search is exact for the decision problem "does a feasible
time-driven non-preemptive schedule exist for these windows on this
platform" (given enough budget) under the same model as the baseline:
per-window arrival/deadline, nominal communication delays, and
shared-resource serialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..core.assignment import DeadlineAssignment
from ..errors import SchedulingError
from ..graph.taskgraph import TaskGraph
from ..system.interconnect import CommunicationModel
from ..system.platform import Platform
from ..types import Time
from .schedule import Schedule, ScheduledTask

__all__ = ["BnbStatus", "BnbResult", "BranchAndBoundScheduler", "schedule_branch_and_bound"]


class BnbStatus(Enum):
    """Outcome of a branch-and-bound search."""

    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNKNOWN = "unknown"  # node budget exhausted before a proof


@dataclass
class BnbResult:
    """Search outcome: status, schedule (when feasible), and statistics."""

    status: BnbStatus
    schedule: Schedule | None
    nodes_explored: int
    node_budget: int

    @property
    def feasible(self) -> bool:
        return self.status is BnbStatus.FEASIBLE

    @property
    def proved(self) -> bool:
        """Whether the answer is exact (not a budget timeout)."""
        return self.status is not BnbStatus.UNKNOWN


class BranchAndBoundScheduler:
    """Exact (budgeted) feasibility search over assignments and orders.

    Parameters
    ----------
    node_budget:
        Maximum number of search nodes to expand before giving up with
        :attr:`BnbStatus.UNKNOWN`.  The default comfortably covers the
        paper-sized workloads that the heuristic also solves, while
        bounding pathological instances.
    branch_width:
        How many of the ready tasks to branch on per node (ordered by
        absolute deadline).  ``None`` branches on all ready tasks
        (complete search); small values give a beam-search flavour that
        is no longer complete but much faster.
    """

    name = "BNB"

    def __init__(
        self,
        node_budget: int = 200_000,
        branch_width: int | None = None,
    ) -> None:
        if node_budget < 1:
            raise SchedulingError("node budget must be positive")
        if branch_width is not None and branch_width < 1:
            raise SchedulingError("branch width must be positive")
        self.node_budget = node_budget
        self.branch_width = branch_width

    # ------------------------------------------------------------------
    def solve(
        self,
        graph: TaskGraph,
        platform: Platform,
        assignment: DeadlineAssignment,
        *,
        comm: CommunicationModel | None = None,
    ) -> BnbResult:
        """Search for a feasible schedule under *assignment* windows."""
        comm_model = comm if comm is not None else platform.comm
        for tid in graph.task_ids():
            if tid not in assignment:
                raise SchedulingError(
                    f"task {tid!r} has no window in the deadline assignment"
                )

        self._graph = graph
        self._platform = platform
        self._assignment = assignment
        self._comm = comm_model
        self._procs = list(platform.processors())
        self._min_wcet = {
            t.id: min(
                (t.wcet[p.cls] for p in self._procs if t.is_eligible(p.cls)),
                default=None,
            )
            for t in graph.tasks()
        }
        for tid, mw in self._min_wcet.items():
            if mw is None:
                return BnbResult(BnbStatus.INFEASIBLE, None, 0, self.node_budget)

        self._nodes = 0
        self._exhausted = False

        entries: dict[str, ScheduledTask] = {}
        proc_free = {p.id: 0.0 for p in self._procs}
        resource_free: dict[str, Time] = {}
        remaining = {tid: graph.in_degree(tid) for tid in graph.task_ids()}
        ready = {tid for tid, n in remaining.items() if n == 0}

        found = self._search(entries, proc_free, resource_free, remaining, ready)

        if found is not None:
            sched = Schedule(scheduler_name=self.name)
            sched.entries = found
            sched.feasible = True
            return BnbResult(
                BnbStatus.FEASIBLE, sched, self._nodes, self.node_budget
            )
        status = BnbStatus.UNKNOWN if self._exhausted else BnbStatus.INFEASIBLE
        if self.branch_width is not None and status is BnbStatus.INFEASIBLE:
            # A truncated branching cannot prove absence of solutions.
            status = BnbStatus.UNKNOWN
        return BnbResult(status, None, self._nodes, self.node_budget)

    # ------------------------------------------------------------------
    def _search(
        self,
        entries: dict[str, ScheduledTask],
        proc_free: dict[str, Time],
        resource_free: dict[str, Time],
        remaining: dict[str, int],
        ready: set[str],
    ) -> dict[str, ScheduledTask] | None:
        if not ready:
            if len(entries) == self._graph.n_tasks:
                return dict(entries)
            raise SchedulingError("search stalled: cyclic task graph?")
        if self._nodes >= self.node_budget:
            self._exhausted = True
            return None
        self._nodes += 1

        if not self._bound_ok(entries, proc_free, remaining):
            return None

        graph, assignment = self._graph, self._assignment
        candidates = sorted(
            ready, key=lambda t: (assignment.absolute_deadline(t), t)
        )
        if self.branch_width is not None:
            candidates = candidates[: self.branch_width]

        for tid in candidates:
            task = graph.task(tid)
            window = assignment.window(tid)
            resource_floor = max(
                (resource_free.get(r, 0.0) for r in task.resources),
                default=0.0,
            )
            placements = []
            for proc in self._procs:
                if not task.is_eligible(proc.cls):
                    continue
                data_ready = window.arrival
                for pred in graph.predecessors(tid):
                    e = entries[pred]
                    delay = self._comm.cost(
                        e.processor, proc.id, graph.message_size(pred, tid)
                    )
                    data_ready = max(data_ready, e.finish + delay)
                start = max(data_ready, proc_free[proc.id], resource_floor)
                finish = start + task.wcet_on(proc.cls)
                if finish <= window.absolute_deadline + 1e-9:
                    placements.append((start, finish, proc.id))
            placements.sort()

            for start, finish, proc_id in placements:
                entries[tid] = ScheduledTask(
                    task_id=tid,
                    processor=proc_id,
                    start=start,
                    finish=finish,
                    arrival=window.arrival,
                    absolute_deadline=window.absolute_deadline,
                )
                saved_free = proc_free[proc_id]
                proc_free[proc_id] = finish
                saved_res = {
                    r: resource_free.get(r) for r in task.resources
                }
                for r in task.resources:
                    resource_free[r] = finish
                newly = []
                for succ in graph.successors(tid):
                    remaining[succ] -= 1
                    if remaining[succ] == 0:
                        newly.append(succ)
                        ready.add(succ)
                ready.discard(tid)

                result = self._search(
                    entries, proc_free, resource_free, remaining, ready
                )
                if result is not None:
                    return result

                # Undo.
                ready.add(tid)
                for succ in graph.successors(tid):
                    remaining[succ] += 1
                for succ in newly:
                    ready.discard(succ)
                for r, v in saved_res.items():
                    if v is None:
                        resource_free.pop(r, None)
                    else:
                        resource_free[r] = v
                proc_free[proc_id] = saved_free
                del entries[tid]

                if self._exhausted:
                    return None
        return None

    def _bound_ok(
        self,
        entries: dict[str, ScheduledTask],
        proc_free: dict[str, Time],
        remaining: dict[str, int],
    ) -> bool:
        """Optimistic feasibility bound for every unscheduled task.

        Lower-bounds each unscheduled task's completion by its window
        arrival, the finish times of already-scheduled predecessors
        (zero communication — it may land on the same processor), the
        earliest any processor becomes free, and its minimum WCET.
        Sound: never exceeds any achievable completion time.
        """
        assignment = self._assignment
        graph = self._graph
        earliest_free = min(proc_free.values())
        for tid in graph.task_ids():
            if tid in entries:
                continue
            lb = assignment.arrival(tid)
            for pred in graph.predecessors(tid):
                e = entries.get(pred)
                if e is not None and e.finish > lb:
                    lb = e.finish
            lb = max(lb, earliest_free if remaining[tid] == 0 else lb)
            if lb + self._min_wcet[tid] > assignment.absolute_deadline(tid) + 1e-9:
                return False
        return True


def schedule_branch_and_bound(
    graph: TaskGraph,
    platform: Platform,
    assignment: DeadlineAssignment,
    *,
    node_budget: int = 200_000,
    comm: CommunicationModel | None = None,
) -> BnbResult:
    """Convenience wrapper around :class:`BranchAndBoundScheduler`."""
    return BranchAndBoundScheduler(node_budget=node_budget).solve(
        graph, platform, assignment, comm=comm
    )
