"""Independent schedule validator.

This module re-derives every constraint a valid time-driven
non-preemptive multiprocessor schedule must satisfy (§3.3) directly from
the models — it shares no logic with the schedulers, so the test suite
can use it as an oracle:

* **completeness** — a feasible schedule places every task exactly once;
* **eligibility** — each task runs on a processor of an eligible class;
* **duration** — ``f_i − s_i`` equals the task's WCET on that class;
* **window** — ``a_i <= s_i`` and, for feasible schedules, ``f_i <= D_i``;
* **exclusivity** — executions on one processor never overlap;
* **precedence** — ``s_j >= f_i`` plus the worst-case communication
  delay when the tasks sit on different processors;
* **resources** (extension §7.3) — tasks sharing a logical resource
  never overlap in time, on any pair of processors.
"""

from __future__ import annotations

from ..core.assignment import DeadlineAssignment
from ..graph.taskgraph import TaskGraph
from ..system.interconnect import CommunicationModel
from ..system.platform import Platform
from ..types import time_geq, time_leq
from .schedule import Schedule

__all__ = ["validate_schedule", "assert_valid_schedule"]


def validate_schedule(
    schedule: Schedule,
    graph: TaskGraph,
    platform: Platform,
    assignment: DeadlineAssignment | None = None,
    *,
    comm: CommunicationModel | None = None,
    check_deadlines: bool | None = None,
) -> list[str]:
    """Return all constraint violations of *schedule* (empty == valid).

    *check_deadlines* defaults to ``schedule.feasible`` — an explicitly
    infeasible schedule (produced with ``continue_on_miss=True``) is
    still checked for structural validity, just not for deadline misses.

    Note: for stateful contention communication models the precedence
    check uses the *nominal* (contention-free) delay, which is a lower
    bound on the actual transfer time, so the check stays sound.
    """
    comm_model = comm if comm is not None else platform.comm
    if check_deadlines is None:
        check_deadlines = schedule.feasible
    problems: list[str] = []

    if schedule.feasible:
        for tid in graph.task_ids():
            if tid not in schedule:
                problems.append(
                    f"feasible schedule is missing task {tid!r}"
                )

    for entry in schedule:
        tid = entry.task_id
        if tid not in graph:
            problems.append(f"scheduled task {tid!r} is not in the graph")
            continue
        task = graph.task(tid)
        try:
            cls = platform.class_of(entry.processor)
        except Exception:
            problems.append(
                f"task {tid!r} placed on unknown processor "
                f"{entry.processor!r}"
            )
            continue
        if not task.is_eligible(cls):
            problems.append(
                f"task {tid!r} placed on ineligible processor "
                f"{entry.processor!r} (class {cls!r})"
            )
            continue
        expected = task.wcet_on(cls)
        actual = entry.finish - entry.start
        if abs(actual - expected) > 1e-6 * max(1.0, expected):
            problems.append(
                f"task {tid!r}: duration {actual:g} != WCET {expected:g} "
                f"on class {cls!r}"
            )
        if assignment is not None and tid in assignment:
            w = assignment.window(tid)
            if not time_geq(entry.start, w.arrival):
                problems.append(
                    f"task {tid!r} starts at {entry.start:g} before its "
                    f"arrival time {w.arrival:g}"
                )
            if check_deadlines and not time_leq(
                entry.finish, w.absolute_deadline
            ):
                problems.append(
                    f"task {tid!r} finishes at {entry.finish:g} past its "
                    f"absolute deadline {w.absolute_deadline:g}"
                )

    # Processor exclusivity.
    for proc in platform.processors():
        rows = schedule.tasks_on(proc.id)
        for a, b in zip(rows, rows[1:]):
            if not time_leq(a.finish, b.start):
                problems.append(
                    f"processor {proc.id!r}: {a.task_id!r} [{a.start:g},"
                    f"{a.finish:g}] overlaps {b.task_id!r} [{b.start:g},"
                    f"{b.finish:g}]"
                )

    # Precedence + communication.
    for src, dst, size in graph.edges():
        if src not in schedule or dst not in schedule:
            continue
        e_src = schedule.entry(src)
        e_dst = schedule.entry(dst)
        delay = comm_model.cost(e_src.processor, e_dst.processor, size)
        earliest = e_src.finish + delay
        if not time_geq(e_dst.start, earliest):
            problems.append(
                f"arc ({src!r}, {dst!r}): successor starts at "
                f"{e_dst.start:g} before data-ready time {earliest:g}"
            )

    # Shared-resource serialization (extension §7.3).
    by_resource: dict[str, list] = {}
    for entry in schedule:
        if entry.task_id not in graph:
            continue
        for res in graph.task(entry.task_id).resources:
            by_resource.setdefault(res, []).append(entry)
    for res, entries in by_resource.items():
        entries.sort(key=lambda e: (e.start, e.task_id))
        for a, b in zip(entries, entries[1:]):
            if not time_leq(a.finish, b.start):
                problems.append(
                    f"resource {res!r}: {a.task_id!r} and {b.task_id!r} "
                    f"hold it concurrently"
                )
    return problems


def assert_valid_schedule(
    schedule: Schedule,
    graph: TaskGraph,
    platform: Platform,
    assignment: DeadlineAssignment | None = None,
    **kwargs,
) -> None:
    """Raise ``AssertionError`` listing violations, if any."""
    problems = validate_schedule(
        schedule, graph, platform, assignment, **kwargs
    )
    assert not problems, "invalid schedule:\n  " + "\n  ".join(problems)
