"""Multiprocessor schedule representation and quality measures (§3.3, §4.2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from ..errors import SchedulingError
from ..types import Time

__all__ = ["ScheduledTask", "Schedule"]


@dataclass(frozen=True)
class ScheduledTask:
    """One task's placement: processor, start and finish times.

    ``arrival`` and ``absolute_deadline`` are copied from the deadline
    assignment that drove the scheduler, so lateness/laxity reporting
    needs no cross-referencing.
    """

    task_id: str
    processor: str
    start: Time
    finish: Time
    arrival: Time
    absolute_deadline: Time

    @property
    def execution_time(self) -> Time:
        """Actual (worst-case) execution time on the chosen processor."""
        return self.finish - self.start

    @property
    def lateness(self) -> Time:
        """``L_i = f_i − D_i`` — non-positive iff the deadline is met."""
        return self.finish - self.absolute_deadline

    @property
    def meets_deadline(self) -> bool:
        return self.finish <= self.absolute_deadline + 1e-9


@dataclass
class Schedule:
    """A (possibly partial) non-preemptive multiprocessor schedule.

    ``feasible`` is ``True`` when every task was placed and every task
    meets its absolute deadline — the event counted by the paper's
    *success ratio*.  When the scheduler fails fast, ``failed_task``
    and ``failure_reason`` describe the first miss.
    """

    entries: dict[str, ScheduledTask] = field(default_factory=dict)
    feasible: bool = True
    failed_task: str | None = None
    failure_reason: str = ""
    scheduler_name: str = "?"

    def __contains__(self, task_id: str) -> bool:
        return task_id in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[ScheduledTask]:
        return iter(self.entries.values())

    def entry(self, task_id: str) -> ScheduledTask:
        try:
            return self.entries[task_id]
        except KeyError:
            raise SchedulingError(f"task {task_id!r} is not scheduled") from None

    def processor_of(self, task_id: str) -> str:
        """Processor assignment ``p(tau_i)``."""
        return self.entry(task_id).processor

    def start_time(self, task_id: str) -> Time:
        return self.entry(task_id).start

    def finish_time(self, task_id: str) -> Time:
        return self.entry(task_id).finish

    # ------------------------------------------------------------------
    # Quality measures (§4.2)
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> Time:
        """Latest finish time over all scheduled tasks (0 when empty)."""
        return max((e.finish for e in self.entries.values()), default=0.0)

    def max_lateness(self) -> Time:
        """``max_i L_i`` — "how far from infeasibility" the schedule is."""
        if not self.entries:
            raise SchedulingError("empty schedule has no lateness")
        return max(e.lateness for e in self.entries.values())

    def missed_tasks(self) -> list[str]:
        """Tasks whose finish time exceeds their absolute deadline."""
        return sorted(
            tid for tid, e in self.entries.items() if not e.meets_deadline
        )

    def tasks_on(self, processor: str) -> list[ScheduledTask]:
        """Entries placed on *processor*, ordered by start time."""
        rows = [e for e in self.entries.values() if e.processor == processor]
        rows.sort(key=lambda e: (e.start, e.task_id))
        return rows

    def processor_load(self) -> dict[str, Time]:
        """Total busy time per processor (only processors that ran work)."""
        load: dict[str, Time] = {}
        for e in self.entries.values():
            load[e.processor] = load.get(e.processor, 0.0) + e.execution_time
        return load

    def utilization(self, m: int | None = None) -> float:
        """Average busy fraction of the makespan across processors.

        *m* supplies the platform size; defaults to the number of
        processors that appear in the schedule.
        """
        if not self.entries:
            return 0.0
        span = self.makespan
        if span <= 0.0:
            return 0.0
        load = self.processor_load()
        count = m if m is not None else len(load)
        if count < 1:
            raise SchedulingError("utilization needs at least one processor")
        return sum(load.values()) / (span * count)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "format": "repro.schedule/1",
            "scheduler": self.scheduler_name,
            "feasible": self.feasible,
            "failed_task": self.failed_task,
            "failure_reason": self.failure_reason,
            "entries": [
                {
                    "task_id": e.task_id,
                    "processor": e.processor,
                    "start": e.start,
                    "finish": e.finish,
                    "arrival": e.arrival,
                    "absolute_deadline": e.absolute_deadline,
                }
                for e in sorted(
                    self.entries.values(), key=lambda e: (e.start, e.task_id)
                )
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Schedule":
        """Inverse of :meth:`to_dict`."""
        sched = cls(
            feasible=bool(data.get("feasible", True)),
            failed_task=data.get("failed_task"),
            failure_reason=data.get("failure_reason", ""),
            scheduler_name=data.get("scheduler", "?"),
        )
        for e in data["entries"]:
            sched.entries[e["task_id"]] = ScheduledTask(
                task_id=e["task_id"],
                processor=e["processor"],
                start=float(e["start"]),
                finish=float(e["finish"]),
                arrival=float(e["arrival"]),
                absolute_deadline=float(e["absolute_deadline"]),
            )
        return sched
