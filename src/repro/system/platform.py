"""The multiprocessor platform ``P`` (§3.1): processors + interconnect."""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from ..errors import EligibilityError, PlatformError, SerializationError
from ..graph.task import Task
from ..types import ProcessorClassId, ProcessorId, Time
from .interconnect import CommunicationModel, SharedBus
from .processor import Processor, ProcessorClass

__all__ = ["Platform", "identical_platform", "platform_to_dict", "platform_from_dict"]


class Platform:
    """A heterogeneous multiprocessor with a communication model.

    Parameters
    ----------
    processors:
        The schedulable processors ``p_1 .. p_m`` (ids must be unique).
    classes:
        The processor classes ``E``; every processor's class must appear
        here.
    comm:
        Worst-case communication-cost model (default: the paper's shared
        bus at one time unit per data item).
    """

    def __init__(
        self,
        processors: Sequence[Processor],
        classes: Sequence[ProcessorClass],
        comm: CommunicationModel | None = None,
    ) -> None:
        if not processors:
            raise PlatformError("a platform needs at least one processor")
        if not classes:
            raise PlatformError("a platform needs at least one processor class")
        self._classes: dict[ProcessorClassId, ProcessorClass] = {}
        for cls in classes:
            if cls.id in self._classes:
                raise PlatformError(f"duplicate processor class id {cls.id!r}")
            self._classes[cls.id] = cls
        self._procs: dict[ProcessorId, Processor] = {}
        for proc in processors:
            if proc.id in self._procs:
                raise PlatformError(f"duplicate processor id {proc.id!r}")
            if proc.cls not in self._classes:
                raise PlatformError(
                    f"processor {proc.id!r} references unknown class {proc.cls!r}"
                )
            self._procs[proc.id] = proc
        self.comm: CommunicationModel = comm if comm is not None else SharedBus()

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of processors (the paper's ``m``)."""
        return len(self._procs)

    @property
    def m_e(self) -> int:
        """Number of processor classes (the paper's ``m_e = |E|``)."""
        return len(self._classes)

    def processors(self) -> Iterator[Processor]:
        return iter(self._procs.values())

    def processor_ids(self) -> list[ProcessorId]:
        return list(self._procs)

    def processor(self, proc_id: str) -> Processor:
        try:
            return self._procs[ProcessorId(proc_id)]
        except KeyError:
            raise PlatformError(f"unknown processor id {proc_id!r}") from None

    def classes(self) -> Iterator[ProcessorClass]:
        return iter(self._classes.values())

    def class_ids(self) -> list[ProcessorClassId]:
        return list(self._classes)

    def processor_class(self, cls_id: str) -> ProcessorClass:
        try:
            return self._classes[ProcessorClassId(cls_id)]
        except KeyError:
            raise PlatformError(f"unknown processor class id {cls_id!r}") from None

    def class_of(self, proc_id: str) -> ProcessorClassId:
        """Class ``e(p_q)`` of a processor."""
        return self.processor(proc_id).cls

    def used_class_ids(self) -> list[ProcessorClassId]:
        """Classes that at least one processor actually instantiates."""
        seen: dict[ProcessorClassId, None] = {}
        for proc in self._procs.values():
            seen.setdefault(proc.cls, None)
        return list(seen)

    # ------------------------------------------------------------------
    # Task/processor eligibility (§5.2's 5% ineligibility mechanism)
    # ------------------------------------------------------------------
    def eligible_processors(self, task: Task) -> list[Processor]:
        """Processors whose class appears in the task's WCET vector."""
        return [p for p in self._procs.values() if task.is_eligible(p.cls)]

    def require_eligible(self, task: Task) -> list[Processor]:
        """Like :meth:`eligible_processors` but raises when empty."""
        procs = self.eligible_processors(task)
        if not procs:
            raise EligibilityError(
                f"task {task.id!r} is eligible on classes "
                f"{sorted(task.eligible_classes())}, none of which are "
                f"instantiated by this platform"
            )
        return procs

    def wcet_of(self, task: Task, proc_id: str) -> Time:
        """WCET of *task* on a concrete processor."""
        cls = self.class_of(proc_id)
        if not task.is_eligible(cls):
            raise EligibilityError(
                f"task {task.id!r} is not eligible on processor {proc_id!r} "
                f"(class {cls!r})"
            )
        return task.wcet_on(cls)

    def communication_cost(
        self, src_proc: str, dst_proc: str, message_size: float
    ) -> Time:
        """Nominal worst-case message delay between two processors."""
        return self.comm.cost(
            ProcessorId(src_proc), ProcessorId(dst_proc), message_size
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Platform(m={self.m}, m_e={self.m_e}, comm={self.comm!r})"


def identical_platform(
    m: int,
    *,
    cls_id: str = "default",
    comm: CommunicationModel | None = None,
) -> Platform:
    """An ``m``-processor identical-machines platform with one class."""
    if m < 1:
        raise PlatformError("m must be at least 1")
    cls = ProcessorClass(ProcessorClassId(cls_id))
    procs = [
        Processor(ProcessorId(f"p{q}"), ProcessorClassId(cls_id))
        for q in range(1, m + 1)
    ]
    return Platform(procs, [cls], comm=comm)


def platform_to_dict(platform: Platform) -> dict[str, Any]:
    """JSON-serializable description (communication model by name)."""
    comm = platform.comm
    if isinstance(comm, SharedBus):
        comm_doc: dict[str, Any] = {
            "kind": "shared_bus",
            "per_item_delay": comm.per_item_delay,
        }
    else:
        comm_doc = {"kind": type(comm).__name__}
    return {
        "format": "repro.platform/1",
        "classes": [
            {
                "id": str(c.id),
                "speed_factor": c.speed_factor,
                "description": c.description,
            }
            for c in platform.classes()
        ],
        "processors": [
            {"id": str(p.id), "cls": str(p.cls)} for p in platform.processors()
        ],
        "comm": comm_doc,
    }


def platform_from_dict(data: dict[str, Any]) -> Platform:
    """Inverse of :func:`platform_to_dict` (shared-bus comm only)."""
    if data.get("format") != "repro.platform/1":
        raise SerializationError(
            f"unsupported platform format {data.get('format')!r}"
        )
    try:
        classes = [
            ProcessorClass(
                ProcessorClassId(c["id"]),
                speed_factor=float(c.get("speed_factor", 1.0)),
                description=c.get("description", ""),
            )
            for c in data["classes"]
        ]
        procs = [
            Processor(ProcessorId(p["id"]), ProcessorClassId(p["cls"]))
            for p in data["processors"]
        ]
        comm_doc = data.get("comm", {"kind": "shared_bus", "per_item_delay": 1.0})
        if comm_doc.get("kind") != "shared_bus":
            raise SerializationError(
                f"cannot deserialize communication model {comm_doc.get('kind')!r}"
            )
        comm = SharedBus(float(comm_doc.get("per_item_delay", 1.0)))
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed platform document: {exc}") from exc
    return Platform(procs, classes, comm=comm)
