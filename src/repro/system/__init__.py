"""Heterogeneous multiprocessor architecture model (§3.1).

* :class:`ProcessorClass` / :class:`Processor` — hardware configurations
  and schedulable processors.
* :class:`Platform` — the machine ``P`` plus a communication model.
* Communication models: :class:`SharedBus` (the paper's), plus
  :class:`ZeroCost`, :class:`LinkTopology` and the stateful
  :class:`ContentionBus` extension.
"""

from .interconnect import (
    CommunicationModel,
    ContentionBus,
    LinkTopology,
    SharedBus,
    ZeroCost,
)
from .platform import (
    Platform,
    identical_platform,
    platform_from_dict,
    platform_to_dict,
)
from .processor import Processor, ProcessorClass

__all__ = [
    "Processor",
    "ProcessorClass",
    "Platform",
    "identical_platform",
    "platform_to_dict",
    "platform_from_dict",
    "CommunicationModel",
    "ZeroCost",
    "SharedBus",
    "LinkTopology",
    "ContentionBus",
]
