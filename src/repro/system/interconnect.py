"""Interconnection-network communication-cost models (§3.1).

The paper assumes asynchronous communication (overlapping computation)
whose worst-case cost is a *nominal*, upper-bounded, predictable delay:
``cost = message_size × per-item delay`` between distinct processors and
zero within a processor (shared memory).  :class:`SharedBus` implements
exactly that model and is the default everywhere.

Two richer models are provided as extensions:

* :class:`LinkTopology` — an arbitrary network of dedicated links where
  the nominal delay is accumulated over the cheapest route;
* :class:`ContentionBus` — a stateful time-multiplexed bus that
  serializes transfers, exposing how much the contention-free nominal
  assumption flatters the schedule (ablation `abl-ccr` in DESIGN.md).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import Iterable

from ..errors import PlatformError
from ..types import ProcessorId, Time

__all__ = [
    "CommunicationModel",
    "ZeroCost",
    "SharedBus",
    "LinkTopology",
    "ContentionBus",
]


class CommunicationModel(ABC):
    """Worst-case cost of shipping a message between two processors."""

    @abstractmethod
    def cost(self, src: ProcessorId, dst: ProcessorId, message_size: float) -> Time:
        """Nominal delay for *message_size* items from *src* to *dst*.

        Must return ``0`` when ``src == dst`` (intra-processor
        communication goes through shared memory, §3.1).
        """

    def reset(self) -> None:
        """Clear any per-schedule state (no-op for stateless models)."""

    def transfer(
        self, src: ProcessorId, dst: ProcessorId, message_size: float, ready: Time
    ) -> Time:
        """Completion time of a transfer whose data is ready at *ready*.

        Stateless models simply add the nominal cost; contention-aware
        models may additionally queue behind earlier transfers.
        """
        return ready + self.cost(src, dst, message_size)


class ZeroCost(CommunicationModel):
    """Communication is free (homogeneous shared-memory idealization)."""

    def cost(self, src: ProcessorId, dst: ProcessorId, message_size: float) -> Time:
        return 0.0


class SharedBus(CommunicationModel):
    """Time-multiplexed shared bus with a fixed per-item nominal delay.

    This is the model of the paper's experimental platform (§5.1): "the
    communication cost between two processors is one time unit per
    transmitted data item".
    """

    def __init__(self, per_item_delay: Time = 1.0) -> None:
        if per_item_delay < 0.0:
            raise PlatformError("per-item delay must be non-negative")
        self.per_item_delay = float(per_item_delay)

    def cost(self, src: ProcessorId, dst: ProcessorId, message_size: float) -> Time:
        if src == dst:
            return 0.0
        return message_size * self.per_item_delay

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedBus(per_item_delay={self.per_item_delay:g})"


class LinkTopology(CommunicationModel):
    """Arbitrary topology of dedicated links with per-item delays.

    The nominal cost between two processors is the message size times
    the cheapest accumulated per-item delay over any route (Dijkstra,
    cached per source).  Disconnected processor pairs cannot exchange
    messages and raise :class:`PlatformError`.
    """

    def __init__(self, links: Iterable[tuple[str, str, Time]]) -> None:
        self._adj: dict[str, dict[str, float]] = {}
        for a, b, delay in links:
            if delay < 0.0:
                raise PlatformError("link delay must be non-negative")
            if a == b:
                raise PlatformError("self-links are not allowed")
            self._adj.setdefault(a, {})
            self._adj.setdefault(b, {})
            # Keep the cheapest delay for duplicate link declarations.
            cur = self._adj[a].get(b)
            if cur is None or delay < cur:
                self._adj[a][b] = float(delay)
                self._adj[b][a] = float(delay)
        self._dist_cache: dict[str, dict[str, float]] = {}

    def _distances_from(self, src: str) -> dict[str, float]:
        cached = self._dist_cache.get(src)
        if cached is not None:
            return cached
        dist = {src: 0.0}
        heap: list[tuple[float, str]] = [(0.0, src)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, float("inf")):
                continue
            for nbr, w in self._adj.get(node, {}).items():
                nd = d + w
                if nd < dist.get(nbr, float("inf")):
                    dist[nbr] = nd
                    heapq.heappush(heap, (nd, nbr))
        self._dist_cache[src] = dist
        return dist

    def per_item_delay(self, src: str, dst: str) -> Time:
        """Cheapest accumulated per-item delay between two processors."""
        if src == dst:
            return 0.0
        dist = self._distances_from(src)
        if dst not in dist:
            raise PlatformError(
                f"processors {src!r} and {dst!r} are not connected"
            )
        return dist[dst]

    def cost(self, src: ProcessorId, dst: ProcessorId, message_size: float) -> Time:
        if src == dst:
            return 0.0
        return message_size * self.per_item_delay(src, dst)


class ContentionBus(CommunicationModel):
    """Shared bus that *serializes* transfers (stateful extension).

    Unlike :class:`SharedBus`, concurrent transfers queue: a transfer
    ready at time *t* starts at ``max(t, bus_free)`` and occupies the
    bus for ``size × per_item_delay``.  :meth:`reset` must be called
    between schedules.  The model is deliberately simple — FCFS in
    reservation order — because its purpose is the ablation comparing
    the paper's contention-free nominal delay against a pessimistic
    serialized bus.
    """

    def __init__(self, per_item_delay: Time = 1.0) -> None:
        if per_item_delay < 0.0:
            raise PlatformError("per-item delay must be non-negative")
        self.per_item_delay = float(per_item_delay)
        self._busy_until: Time = 0.0

    def cost(self, src: ProcessorId, dst: ProcessorId, message_size: float) -> Time:
        if src == dst:
            return 0.0
        return message_size * self.per_item_delay

    def reset(self) -> None:
        self._busy_until = 0.0

    @property
    def busy_until(self) -> Time:
        """Time at which the bus next becomes idle."""
        return self._busy_until

    def transfer(
        self, src: ProcessorId, dst: ProcessorId, message_size: float, ready: Time
    ) -> Time:
        if src == dst or message_size <= 0.0:
            return ready
        start = max(ready, self._busy_until)
        finish = start + self.cost(src, dst, message_size)
        self._busy_until = finish
        return finish
