"""Processor and processor-class models (§3.1).

Processors are *heterogeneous*: each belongs to a processor class
``e(p_q)`` that determines its hardware configuration, so a task's WCET
is a vector indexed by class.  The classical machine models fall out as
special cases (Graham et al. [16]):

* **identical** — a single class;
* **uniform** — per-class WCET equals a base time scaled by the class's
  speed factor;
* **unrelated** — arbitrary per-class WCET vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError
from ..types import ProcessorClassId, ProcessorId

__all__ = ["ProcessorClass", "Processor"]


@dataclass(frozen=True)
class ProcessorClass:
    """A hardware configuration (speed, pipeline, memory hierarchy).

    ``speed_factor`` is a convenience for the *uniform* machine model: a
    task with base execution time ``c`` runs in ``c / speed_factor`` on
    this class.  For the *unrelated* model the factor is informational
    only — WCETs are stored per class on each task.
    """

    id: ProcessorClassId
    speed_factor: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.id:
            raise ValidationError("processor class id must be non-empty")
        if not (self.speed_factor > 0.0):
            raise ValidationError(
                f"processor class {self.id!r}: speed factor must be positive"
            )

    def scaled_time(self, base_time: float) -> float:
        """Execution time of a ``base_time`` workload on this class."""
        return base_time / self.speed_factor


@dataclass(frozen=True)
class Processor:
    """A schedulable processor ``p_q`` with its class ``e(p_q)``."""

    id: ProcessorId
    cls: ProcessorClassId

    def __post_init__(self) -> None:
        if not self.id:
            raise ValidationError("processor id must be non-empty")
        if not self.cls:
            raise ValidationError(
                f"processor {self.id!r}: class id must be non-empty"
            )
