"""Micro-batching queue: coalesce concurrent requests into worker batches.

Mirrors the coarse-grained fan-out of :mod:`repro.experiments.runner`
at request granularity: the unit handed to the worker pool is a *batch*
of items processed by a simple serial inner loop, so pool bookkeeping
is amortized over the batch and the per-item code path stays trivial.

A collector thread drains the submission queue.  The first item opens a
batch; the batch closes when it reaches ``max_batch`` items or when
``max_wait`` seconds have passed since it opened, whichever comes
first.  Under light load a batch is a single item dispatched after at
most ``max_wait``; under a burst, batches fill instantly and the added
latency is zero.  Each closed batch becomes one task on a
:class:`~concurrent.futures.ThreadPoolExecutor`, and every submitted
item resolves through its own :class:`~concurrent.futures.Future` —
failures are per item, never per batch.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Generic, TypeVar

from ..errors import ValidationError

__all__ = ["MicroBatcher"]

T = TypeVar("T")
R = TypeVar("R")


class _Stop:
    """Queue sentinel that shuts the collector down."""


class MicroBatcher(Generic[T, R]):
    """Coalesce submitted items into batches executed on a thread pool.

    Parameters
    ----------
    handler:
        Per-item callable; a batch is processed by calling it once per
        item in submission order (the coarse-grained unit's serial
        inner loop).  An exception fails only that item's future.
    max_batch:
        Largest batch handed to the pool at once.
    max_wait:
        Seconds a batch may wait for more items before dispatching.
    workers:
        Pool threads executing closed batches (default 1 keeps strict
        submission order; raise it to overlap batches).
    on_batch:
        Optional observer called with each batch's size just before it
        is dispatched — the metrics hook.
    """

    def __init__(
        self,
        handler: Callable[[T], R],
        *,
        max_batch: int = 8,
        max_wait: float = 0.002,
        workers: int = 1,
        on_batch: Callable[[int], None] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValidationError(
                f"max_batch must be at least 1, got {max_batch}"
            )
        if max_wait < 0.0:
            raise ValidationError(
                f"max_wait must be non-negative, got {max_wait:g}"
            )
        if workers < 1:
            raise ValidationError(f"workers must be at least 1, got {workers}")
        self._handler = handler
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._on_batch = on_batch
        self._queue: queue.Queue = queue.Queue()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-batch"
        )
        self._closed = False
        self._collector = threading.Thread(
            target=self._collect, name="repro-batch-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    def submit(self, item: T) -> "Future[R]":
        """Enqueue *item*; the returned future resolves to its result."""
        if self._closed:
            raise RuntimeError("cannot submit to a closed MicroBatcher")
        future: Future[R] = Future()
        self._queue.put((item, future))
        return future

    def close(self) -> None:
        """Drain outstanding work, then stop the collector and pool.

        Idempotent; afterwards :meth:`submit` raises ``RuntimeError``.
        """
        if self._closed:
            return
        self._closed = True
        self._queue.put(_Stop)
        self._collector.join()
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "MicroBatcher[T, R]":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _collect(self) -> None:
        while True:
            head = self._queue.get()
            if head is _Stop:
                return
            batch = [head]
            deadline = time.monotonic() + self.max_wait
            stop = False
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _Stop:
                    stop = True
                    break
                batch.append(item)
            if self._on_batch is not None:
                try:
                    self._on_batch(len(batch))
                except Exception:  # observers must never kill the loop
                    pass
            self._pool.submit(self._run_batch, batch)
            if stop:
                return

    def _run_batch(
        self, batch: "list[tuple[T, Future[R]]]"
    ) -> None:
        for item, future in batch:
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(self._handler(item))
            except BaseException as exc:  # noqa: BLE001 - routed to caller
                future.set_exception(exc)
