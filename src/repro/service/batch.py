"""Micro-batching queue: coalesce concurrent requests into worker batches.

Mirrors the coarse-grained fan-out of :mod:`repro.experiments.runner`
at request granularity: the unit handed to the worker pool is a *batch*
of items processed by a simple serial inner loop, so pool bookkeeping
is amortized over the batch and the per-item code path stays trivial.

A collector thread drains the submission queue.  The first item opens a
batch; the batch closes when it reaches ``max_batch`` items or when
``max_wait`` seconds have passed since it opened, whichever comes
first.  Under light load a batch is a single item dispatched after at
most ``max_wait``; under a burst, batches fill instantly and the added
latency is zero.  Each closed batch becomes one task on a
:class:`~concurrent.futures.ThreadPoolExecutor`, and every submitted
item resolves through its own :class:`~concurrent.futures.Future` —
failures are per item, never per batch.

Concurrency contract:

* :meth:`MicroBatcher.submit` and :meth:`MicroBatcher.close` serialize
  on one lock, so an accepted item is always enqueued *before* the stop
  sentinel — no submission can be stranded behind it with a future
  that never resolves.
* ``max_queue`` bounds the number of accepted-but-unresolved items;
  overflow raises :class:`~repro.errors.ServiceOverloadError`
  (backpressure) instead of growing an unbounded backlog.
* ``close(timeout=...)`` is the graceful drain: it waits up to
  *timeout* seconds for outstanding futures, then fails the stragglers
  instead of hanging the caller.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor, wait
from typing import Callable, Generic, TypeVar

from ..errors import ServiceOverloadError, ValidationError

__all__ = ["MicroBatcher"]

T = TypeVar("T")
R = TypeVar("R")


class _Stop:
    """Queue sentinel that shuts the collector down."""


def _resolve(future: Future, *, result=None, error: BaseException | None = None) -> None:
    """Resolve *future*, tolerating a racing resolution.

    During a timed drain the closer may fail a future the pool is still
    working on; whichever side loses the race hits ``InvalidStateError``
    and must treat it as "already settled", not crash a worker thread.
    """
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass


class MicroBatcher(Generic[T, R]):
    """Coalesce submitted items into batches executed on a thread pool.

    Parameters
    ----------
    handler:
        Per-item callable; a batch is processed by calling it once per
        item in submission order (the coarse-grained unit's serial
        inner loop).  An exception fails only that item's future.
    max_batch:
        Largest batch handed to the pool at once.
    max_wait:
        Seconds a batch may wait for more items before dispatching.
    workers:
        Pool threads executing closed batches (default 1 keeps strict
        submission order; raise it to overlap batches).
    max_queue:
        Bound on accepted-but-unresolved items; ``None`` (default)
        means unbounded.  When the bound is reached :meth:`submit`
        raises :class:`~repro.errors.ServiceOverloadError`.
    on_batch:
        Optional observer called with each batch's size just before it
        is dispatched — the metrics hook.
    flush_handler / flush_min:
        Optional whole-flush fast path: a closed batch of at least
        ``flush_min`` items is handed to ``flush_handler`` as one list
        and must come back as one result-or-exception per item, in
        order (an exception entry fails only that item's future).
        Smaller batches — and every batch when no flush handler is set
        — run the per-item ``handler`` loop, so single-request paths
        and per-item instrumentation are untouched.  The service uses
        this to route large flushes of distinct workloads through the
        vectorized batch tier.
    """

    def __init__(
        self,
        handler: Callable[[T], R],
        *,
        max_batch: int = 8,
        max_wait: float = 0.002,
        workers: int = 1,
        max_queue: int | None = None,
        on_batch: Callable[[int], None] | None = None,
        flush_handler: "Callable[[list[T]], list] | None" = None,
        flush_min: int = 8,
    ) -> None:
        if max_batch < 1:
            raise ValidationError(
                f"max_batch must be at least 1, got {max_batch}"
            )
        if max_wait < 0.0:
            raise ValidationError(
                f"max_wait must be non-negative, got {max_wait:g}"
            )
        if workers < 1:
            raise ValidationError(f"workers must be at least 1, got {workers}")
        if max_queue is not None and max_queue < 1:
            raise ValidationError(
                f"max_queue must be at least 1 (or None), got {max_queue}"
            )
        if flush_min < 2:
            raise ValidationError(
                f"flush_min must be at least 2, got {flush_min}"
            )
        self._handler = handler
        self._flush_handler = flush_handler
        self.flush_min = flush_min
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.max_queue = max_queue
        self._on_batch = on_batch
        self._queue: queue.Queue = queue.Queue()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-batch"
        )
        # One lock orders submit() against close(): the closed flag, the
        # outstanding set and the queue puts all mutate under it, so an
        # accepted item is enqueued strictly before the _Stop sentinel.
        self._lock = threading.Lock()
        self._closed = False
        self._outstanding: "set[Future[R]]" = set()
        self._collector = threading.Thread(
            target=self._collect, name="repro-batch-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Accepted items not yet resolved (the backpressure measure)."""
        with self._lock:
            return len(self._outstanding)

    def submit(self, item: T) -> "Future[R]":
        """Enqueue *item*; the returned future resolves to its result.

        Raises ``RuntimeError`` after :meth:`close` and
        :class:`~repro.errors.ServiceOverloadError` when ``max_queue``
        items are already in flight.
        """
        future: Future[R] = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed MicroBatcher")
            if (
                self.max_queue is not None
                and len(self._outstanding) >= self.max_queue
            ):
                raise ServiceOverloadError(
                    f"micro-batcher queue is full "
                    f"({self.max_queue} items in flight)"
                )
            self._outstanding.add(future)
            self._queue.put((item, future))
        future.add_done_callback(self._forget)
        return future

    def _forget(self, future: "Future[R]") -> None:
        with self._lock:
            self._outstanding.discard(future)

    def close(self, timeout: float | None = None) -> None:
        """Stop accepting work and drain; idempotent.

        With ``timeout=None`` (the default) the drain is unconditional:
        every outstanding item is processed before this returns.  With a
        timeout, outstanding futures get up to *timeout* seconds to
        resolve; whatever is still pending afterwards is cancelled or
        failed with ``RuntimeError`` — callers blocked on ``.result()``
        are released, never left hanging.
        """
        with self._lock:
            first = not self._closed
            self._closed = True
            if first:
                # Both puts happen under the lock, so the sentinel is
                # strictly after every accepted submission.
                self._queue.put(_Stop)
            outstanding = list(self._outstanding)
        if timeout is None:
            self._collector.join()
            self._pool.shutdown(wait=True)
            return
        deadline = time.monotonic() + timeout
        self._collector.join(timeout)
        wait(outstanding, timeout=max(0.0, deadline - time.monotonic()))
        self._pool.shutdown(wait=False)
        for future in outstanding:
            if future.cancel() or future.done():
                continue
            _resolve(
                future,
                error=RuntimeError(
                    "MicroBatcher drain timed out; item abandoned"
                ),
            )

    def __enter__(self) -> "MicroBatcher[T, R]":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _collect(self) -> None:
        while True:
            head = self._queue.get()
            if head is _Stop:
                return
            batch = [head]
            deadline = time.monotonic() + self.max_wait
            stop = False
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _Stop:
                    stop = True
                    break
                batch.append(item)
            if self._on_batch is not None:
                try:
                    self._on_batch(len(batch))
                except Exception:  # observers must never kill the loop
                    pass
            try:
                self._pool.submit(self._run_batch, batch)
            except RuntimeError as exc:
                # A timed drain shut the pool down mid-collection; fail
                # the batch here rather than stranding its futures.
                for _, future in batch:
                    if not future.cancel():
                        _resolve(future, error=exc)
                return
            if stop:
                return

    def _run_batch(
        self, batch: "list[tuple[T, Future[R]]]"
    ) -> None:
        if (
            self._flush_handler is not None
            and len(batch) >= self.flush_min
        ):
            self._run_flush(batch)
            return
        for item, future in batch:
            try:
                if not future.set_running_or_notify_cancel():
                    continue
            except InvalidStateError:
                continue  # a timed drain already failed this future
            try:
                _resolve(future, result=self._handler(item))
            except BaseException as exc:  # noqa: BLE001 - routed to caller
                _resolve(future, error=exc)

    def _run_flush(self, batch: "list[tuple[T, Future[R]]]") -> None:
        """Hand one whole closed batch to the flush handler.

        Items whose future was already cancelled or failed (a timed
        drain) are dropped before the call; the handler sees only live
        items and must answer each one positionally — a result resolves
        the future, an exception entry fails it.  A handler-level
        exception (or a wrong-length answer) fails every live item, so
        no future can be stranded by a buggy batch path.
        """
        live: "list[tuple[T, Future[R]]]" = []
        for item, future in batch:
            try:
                if future.set_running_or_notify_cancel():
                    live.append((item, future))
            except InvalidStateError:
                pass  # a timed drain already failed this future
        if not live:
            return
        try:
            results = self._flush_handler([item for item, _ in live])
            if len(results) != len(live):
                raise RuntimeError(
                    f"flush handler answered {len(results)} of "
                    f"{len(live)} items"
                )
        except BaseException as exc:  # noqa: BLE001 - routed to callers
            for _, future in live:
                _resolve(future, error=exc)
            return
        for (_, future), result in zip(live, results):
            if isinstance(result, BaseException):
                _resolve(future, error=result)
            else:
                _resolve(future, result=result)
