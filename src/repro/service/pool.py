"""Pre-forked assignment worker pool behind the asyncio front end.

One :class:`WorkerPool` owns N worker *processes*, each running a full
:class:`~repro.service.server.DeadlineAssignmentService` (compiled/vec
kernel, micro-batcher, LRU + optional persistent spill tier).  The pool
is how ``repro serve --workers N`` escapes the single-interpreter GIL
ceiling: the front end parses and coalesces HTTP, workers burn CPU.

Topology and wire protocol
--------------------------

Each worker gets one duplex :func:`multiprocessing.Pipe`.  Messages are
plain picklable tuples, request/reply matched by a monotonically
increasing request id:

* ``("assign", rid, doc)`` → ``("ok", rid, response_doc)`` or
  ``("err", rid, category, kind, message)`` with ``category`` one of
  ``overload`` / ``repro`` / ``internal`` — exactly the three branches
  the single-process HTTP layer maps to 429 / 400 / 500, so the front
  end can produce byte-identical error bodies.
* ``("metrics", rid)`` → ``("ok", rid, snapshot_doc)`` — the worker's
  :meth:`~repro.service.metrics.ServiceMetrics.snapshot`, merged into
  one exposition by :mod:`repro.service.agg`.
* ``("ping", rid)`` → ``("ok", rid, {"pid": ...})`` — the readiness
  probe :meth:`WorkerPool.start` blocks on.
* ``("stop", timeout)`` — bounded drain, then the worker exits.

Workers are started with the ``spawn`` context (same choice as the
sweep fabric): no inherited locks mid-acquire, no shared mutable
interpreter state, and the child imports :mod:`repro` cleanly.

Sharing and backpressure
------------------------

When ``cache_dir`` is set every worker opens the *same*
:class:`~repro.store.TrialStore` directory.  Store appends are
``fcntl``-locked with torn-tail healing and reads refresh the shard
tail from disk, so an assignment computed (and spilled) by worker A is
a cache *hit* for worker B — the cluster-wide cache tier the front
end's digest routing does not need to know about.

``max_queue`` bounds the per-worker number of dispatched-but-unanswered
requests.  :meth:`WorkerPool.submit` always picks the least-loaded live
worker; when even that worker is at the bound the pool raises
:class:`~repro.errors.ServiceOverloadError` *synchronously*, which the
front end maps to the standard 429 + ``Retry-After`` shed path without
ever queueing the request.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import Future, wait
from pathlib import Path
from typing import Any

from ..errors import ReproError, ServiceOverloadError

__all__ = ["RemoteAssignError", "WorkerPool", "default_workers"]


def default_workers() -> int:
    """The ``--workers`` default: ``min(cpu_count, 4)``.

    On a single-CPU host this is 1, which selects the in-process
    single-server path — pre-forking cannot beat one core.
    """
    return min(os.cpu_count() or 1, 4)


class RemoteAssignError(Exception):
    """An assignment failed inside a worker process.

    Carries the worker's error classification so the front end can
    reproduce the single-process HTTP mapping exactly:
    ``overload`` → 429, ``repro`` → 400 ``{"error", "kind"}``,
    ``internal`` → 500.
    """

    def __init__(self, category: str, kind: str, message: str) -> None:
        super().__init__(message)
        self.category = category
        self.kind = kind
        self.message = message


def _pool_worker_main(conn, config: dict) -> None:
    """Worker process entry point: serve pipe requests until ``stop``.

    Runs one :class:`DeadlineAssignmentService` and a small thread pool
    so concurrent ``assign`` dispatches can coalesce in the service's
    micro-batcher / single-flight layers exactly as they would in the
    single-process server.  Replies are serialized by a send lock (the
    pipe is the only shared output).  Exits via ``os._exit`` after the
    bounded drain so a straggler compute thread can never wedge
    shutdown.
    """
    from concurrent.futures import ThreadPoolExecutor

    from .server import DeadlineAssignmentService

    service = DeadlineAssignmentService(
        cache_size=config.get("cache_size", 1024),
        batch_size=config.get("batch_size", 8),
        batch_wait=config.get("batch_wait", 0.002),
        workers=config.get("threads", 4),
        max_queue=config.get("max_queue"),
        cache_dir=config.get("cache_dir"),
    )
    compute_delay = float(config.get("compute_delay", 0.0) or 0.0)
    send_lock = threading.Lock()
    pool = ThreadPoolExecutor(
        max_workers=max(4, config.get("threads", 4)),
        thread_name_prefix="repro-pool-worker",
    )

    def send(reply: tuple) -> None:
        with send_lock:
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                pass  # parent is gone; nothing left to answer to

    def do_assign(rid: int, doc: Any) -> None:
        try:
            if compute_delay > 0.0:
                time.sleep(compute_delay)
            send(("ok", rid, service.assign_dict(doc)))
        except ServiceOverloadError as exc:
            send(("err", rid, "overload", "ServiceOverloadError", str(exc)))
        except ReproError as exc:
            send(("err", rid, "repro", type(exc).__name__, str(exc)))
        except BaseException as exc:  # noqa: BLE001 - worker must survive
            send(("err", rid, "internal", type(exc).__name__, str(exc)))

    drain_timeout: float | None = None
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # parent died; drain and exit
            op = msg[0]
            if op == "assign":
                pool.submit(do_assign, msg[1], msg[2])
            elif op == "metrics":
                send(("ok", msg[1], service.metrics.snapshot()))
            elif op == "ping":
                send(("ok", msg[1], {"pid": os.getpid()}))
            elif op == "stop":
                drain_timeout = msg[1] if len(msg) > 1 else None
                break
    finally:
        pool.shutdown(wait=False)
        try:
            service.close(timeout=drain_timeout)
        except Exception:  # noqa: BLE001 - exiting anyway
            pass
        try:
            conn.close()
        except OSError:
            pass
        # A compute thread stuck past the bounded drain must not block
        # interpreter teardown; the parent already failed its future.
        os._exit(0)


class _WorkerHandle:
    """Parent-side state for one worker process."""

    def __init__(self, index: int, proc, conn) -> None:
        self.index = index
        self.proc = proc
        self.conn = conn
        self.send_lock = threading.Lock()
        self.lock = threading.Lock()  # guards pending + alive
        self.pending: dict[int, Future] = {}
        self.alive = True
        self.reader: threading.Thread | None = None

    @property
    def inflight(self) -> int:
        with self.lock:
            return len(self.pending)

    def send(self, message: tuple) -> None:
        with self.send_lock:
            self.conn.send(message)

    def register(self, rid: int) -> Future:
        future: Future = Future()
        with self.lock:
            if not self.alive:
                raise RuntimeError(f"worker {self.index} is not running")
            self.pending[rid] = future
        return future

    def read_loop(self) -> None:
        """Resolve pending futures from worker replies until EOF.

        On EOF (worker exited or crashed) every still-pending future is
        failed — a dead worker must never strand a waiting request.
        """
        while True:
            try:
                msg = self.conn.recv()
            except (EOFError, OSError):
                break
            future = None
            with self.lock:
                future = self.pending.pop(msg[1], None)
            if future is None:
                continue  # drained/abandoned request; reply is stale
            try:
                if msg[0] == "ok":
                    future.set_result(msg[2])
                else:
                    _, _, category, kind, message = msg
                    future.set_exception(
                        RemoteAssignError(category, kind, message)
                    )
            except Exception:  # noqa: BLE001 - a timed drain beat us
                pass
        with self.lock:
            self.alive = False
            stranded = list(self.pending.values())
            self.pending.clear()
        for future in stranded:
            if future.cancel() or future.done():
                continue
            try:
                future.set_exception(
                    RuntimeError(
                        f"assignment worker {self.index} exited "
                        "with requests in flight"
                    )
                )
            except Exception:  # noqa: BLE001 - racing resolution
                pass


class WorkerPool:
    """N pre-forked assignment workers with least-loaded dispatch.

    Parameters mirror :class:`DeadlineAssignmentService` where they
    configure the per-worker service; pool-level knobs:

    workers:
        Number of worker processes (≥ 1).
    max_queue:
        Per-worker bound on dispatched-but-unanswered requests;
        ``None`` means unbounded.  Overflow raises
        :class:`~repro.errors.ServiceOverloadError` from
        :meth:`submit`.
    compute_delay:
        Test hook: seconds each worker sleeps before computing — makes
        saturation and drain behaviour deterministic in tests.
    """

    def __init__(
        self,
        workers: int,
        *,
        cache_size: int = 1024,
        batch_size: int = 8,
        batch_wait: float = 0.002,
        threads: int = 4,
        max_queue: int | None = None,
        cache_dir: str | Path | None = None,
        compute_delay: float = 0.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        self.max_queue = max_queue
        self._config = {
            "cache_size": cache_size,
            "batch_size": batch_size,
            "batch_wait": batch_wait,
            "threads": threads,
            # Worker-internal queues stay unbounded: the pool enforces
            # the bound at dispatch, before a request crosses the pipe,
            # so a shed request costs no worker work at all.
            "max_queue": None,
            "cache_dir": None if cache_dir is None else str(cache_dir),
            "compute_delay": compute_delay,
        }
        self._workers_requested = workers
        self._handles: list[_WorkerHandle] = []
        self._rid = 0
        self._rid_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def start(self, timeout: float = 60.0) -> None:
        """Spawn the workers and block until each answers a ping.

        The readiness gate matters on slow hosts: ``spawn`` re-imports
        :mod:`repro` in every child, and the front end must not accept
        traffic that would race worker startup.
        """
        ctx = multiprocessing.get_context("spawn")
        for index in range(self._workers_requested):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_pool_worker_main,
                args=(child_conn, self._config),
                name=f"repro-assign-worker-{index}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            handle = _WorkerHandle(index, proc, parent_conn)
            handle.reader = threading.Thread(
                target=handle.read_loop,
                name=f"repro-pool-reader-{index}",
                daemon=True,
            )
            handle.reader.start()
            self._handles.append(handle)
        deadline = time.monotonic() + timeout
        pings = [
            self._request(handle, ("ping",)) for handle in self._handles
        ]
        for index, future in enumerate(pings):
            remaining = deadline - time.monotonic()
            try:
                future.result(timeout=max(0.0, remaining))
            except Exception as exc:
                self.close(timeout=1.0)
                raise RuntimeError(
                    f"assignment worker {index} failed to start: {exc}"
                ) from exc

    @property
    def workers(self) -> int:
        """Live worker count."""
        return sum(1 for handle in self._handles if handle.alive)

    def _next_rid(self) -> int:
        with self._rid_lock:
            self._rid += 1
            return self._rid

    def _request(self, handle: _WorkerHandle, op: tuple) -> Future:
        rid = self._next_rid()
        future = handle.register(rid)
        try:
            handle.send(op[:1] + (rid,) + op[1:])
        except (BrokenPipeError, OSError) as exc:
            with handle.lock:
                handle.pending.pop(rid, None)
                handle.alive = False
            raise RuntimeError(
                f"worker {handle.index} is not reachable: {exc}"
            ) from exc
        return future

    # ------------------------------------------------------------------
    def submit(self, doc: Any) -> Future:
        """Dispatch one parsed ``/assign`` body; returns its future.

        Picks the least-loaded live worker.  Raises
        :class:`~repro.errors.ServiceOverloadError` when every live
        worker already has ``max_queue`` requests in flight, and
        ``RuntimeError`` when no worker is alive at all.
        """
        if self._closed:
            raise RuntimeError("cannot submit to a closed WorkerPool")
        live = [handle for handle in self._handles if handle.alive]
        if not live:
            raise RuntimeError("no assignment workers are running")
        handle = min(live, key=lambda h: h.inflight)
        if (
            self.max_queue is not None
            and handle.inflight >= self.max_queue
        ):
            raise ServiceOverloadError(
                f"worker pool is full ({self.max_queue} requests in "
                f"flight on each of {len(live)} workers)"
            )
        return self._request(handle, ("assign", doc))

    def metrics_snapshots(self, timeout: float = 5.0) -> list[dict]:
        """One metrics snapshot per live worker (dead workers skipped).

        A worker that fails to answer within *timeout* is skipped too:
        a scrape must degrade, not hang the front end.
        """
        futures = []
        for handle in self._handles:
            if not handle.alive:
                continue
            try:
                futures.append(self._request(handle, ("metrics",)))
            except RuntimeError:
                continue
        wait(futures, timeout=timeout)
        snapshots = []
        for future in futures:
            if future.done() and future.exception() is None:
                snapshots.append(future.result())
        return snapshots

    # ------------------------------------------------------------------
    def close(self, timeout: float | None = None) -> None:
        """Stop every worker; bounded when *timeout* is given.

        Sends ``stop`` (workers drain their in-flight work, bounded by
        the same timeout), fails whatever futures remain after the
        wait, then joins — escalating to ``terminate``/``kill`` so the
        call returns even if a worker wedged.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        for handle in self._handles:
            try:
                handle.send(("stop", timeout))
            except (BrokenPipeError, OSError):
                pass
        outstanding = []
        for handle in self._handles:
            with handle.lock:
                outstanding.extend(handle.pending.values())
        if outstanding:
            budget = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            wait(outstanding, timeout=budget)
            for future in outstanding:
                if future.cancel() or future.done():
                    continue
                try:
                    future.set_exception(
                        RuntimeError(
                            "worker pool drain timed out; "
                            "request abandoned"
                        )
                    )
                except Exception:  # noqa: BLE001 - racing resolution
                    pass
        for handle in self._handles:
            join_budget = (
                5.0
                if deadline is None
                else max(0.1, deadline - time.monotonic())
            )
            handle.proc.join(join_budget)
            if handle.proc.is_alive():
                handle.proc.terminate()
                handle.proc.join(1.0)
            if handle.proc.is_alive():  # pragma: no cover - last resort
                handle.proc.kill()
                handle.proc.join(1.0)
            try:
                handle.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(timeout=5.0)
