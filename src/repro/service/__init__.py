"""Online deadline-assignment service (the serving layer).

Turns the library into a request/response system: clients POST a task
graph + platform + metric choice and receive the per-task
arrival/deadline slices that :func:`repro.core.slicing.distribute_deadlines`
would compute offline, optionally together with a stateful admission
verdict from :class:`repro.online.AdmissionController`.

Composition of one request:

``request_from_dict`` (strict validation) → ``request_digest``
(canonical SHA-256 content address) → :class:`AssignmentCache` (LRU;
repeated workloads skip the slicing hot path) → single-flight
coalescing (concurrent identical misses share one computation) →
:class:`MicroBatcher` (distinct misses coalesce into worker-pool
batches, bounded by ``max_queue`` — overflow is shed as
:class:`~repro.errors.ServiceOverloadError` / HTTP 429) →
``response_to_dict``.  :class:`ServiceMetrics` counts every step and
renders Prometheus text for ``GET /metrics``.

Run it with ``python -m repro serve`` or embed
:class:`DeadlineAssignmentService` directly.

Two serving topologies share that engine: ``--workers 1`` runs it
in-process behind the stdlib :class:`ServiceHTTPServer` (today's exact
path), while ``--workers N`` pre-forks N worker processes behind an
asyncio front end (:class:`PooledFrontend` → :class:`WorkerPool`) that
owns parsing, body-digest single-flight, 429 backpressure and the
merged ``/metrics`` exposition (:func:`aggregate_metrics`) — the
horizontal-scale path for multi-core hosts.
"""

from .api import (
    AssignRequest,
    AssignResponse,
    TaskSlice,
    request_digest,
    request_from_dict,
    response_from_assignment,
    response_to_dict,
)
from ..errors import ServiceOverloadError
from .batch import MicroBatcher
from .cache import AssignmentCache, CacheStats, StoreSpill
from .agg import aggregate_metrics
from .frontend import PooledFrontend
from .metrics import Counter, LatencySummary, ServiceMetrics, render_prometheus
from .pool import RemoteAssignError, WorkerPool, default_workers
from .server import DeadlineAssignmentService, ServiceHTTPServer, create_server

__all__ = [
    "AssignRequest",
    "AssignResponse",
    "TaskSlice",
    "request_from_dict",
    "request_digest",
    "response_from_assignment",
    "response_to_dict",
    "AssignmentCache",
    "CacheStats",
    "StoreSpill",
    "MicroBatcher",
    "ServiceOverloadError",
    "Counter",
    "LatencySummary",
    "ServiceMetrics",
    "render_prometheus",
    "DeadlineAssignmentService",
    "ServiceHTTPServer",
    "create_server",
    "WorkerPool",
    "PooledFrontend",
    "RemoteAssignError",
    "aggregate_metrics",
    "default_workers",
]
