"""Online deadline-assignment service (the serving layer).

Turns the library into a request/response system: clients POST a task
graph + platform + metric choice and receive the per-task
arrival/deadline slices that :func:`repro.core.slicing.distribute_deadlines`
would compute offline, optionally together with a stateful admission
verdict from :class:`repro.online.AdmissionController`.

Composition of one request:

``request_from_dict`` (strict validation) → ``request_digest``
(canonical SHA-256 content address) → :class:`AssignmentCache` (LRU;
repeated workloads skip the slicing hot path) → single-flight
coalescing (concurrent identical misses share one computation) →
:class:`MicroBatcher` (distinct misses coalesce into worker-pool
batches, bounded by ``max_queue`` — overflow is shed as
:class:`~repro.errors.ServiceOverloadError` / HTTP 429) →
``response_to_dict``.  :class:`ServiceMetrics` counts every step and
renders Prometheus text for ``GET /metrics``.

Run it with ``python -m repro serve`` or embed
:class:`DeadlineAssignmentService` directly.
"""

from .api import (
    AssignRequest,
    AssignResponse,
    TaskSlice,
    request_digest,
    request_from_dict,
    response_from_assignment,
    response_to_dict,
)
from ..errors import ServiceOverloadError
from .batch import MicroBatcher
from .cache import AssignmentCache, CacheStats, StoreSpill
from .metrics import Counter, LatencySummary, ServiceMetrics, render_prometheus
from .server import DeadlineAssignmentService, ServiceHTTPServer, create_server

__all__ = [
    "AssignRequest",
    "AssignResponse",
    "TaskSlice",
    "request_from_dict",
    "request_digest",
    "response_from_assignment",
    "response_to_dict",
    "AssignmentCache",
    "CacheStats",
    "StoreSpill",
    "MicroBatcher",
    "ServiceOverloadError",
    "Counter",
    "LatencySummary",
    "ServiceMetrics",
    "render_prometheus",
    "DeadlineAssignmentService",
    "ServiceHTTPServer",
    "create_server",
]
