"""In-process service metrics rendered in Prometheus text format.

Stdlib-only instrumentation for the deadline-assignment service:
monotone counters (optionally labelled), and a sliding-window latency
summary that reports p50/p95/p99 quantiles plus the cumulative
count/sum pair Prometheus expects of a summary.  Quantiles are computed
over the most recent ``window`` observations — a bounded-memory
approximation that tracks current behaviour instead of averaging over
the whole process lifetime.

Everything is lock-guarded and cheap: one counter bump is a dict
update, one latency observation appends to a ring buffer; the O(w log w)
sort happens only when ``/metrics`` is scraped.
"""

from __future__ import annotations

import math
from collections import deque
from threading import Lock
from typing import Iterable

__all__ = ["Counter", "LatencySummary", "ServiceMetrics", "render_prometheus"]

_QUANTILES = (0.5, 0.95, 0.99)


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Counter:
    """Monotone counter with optional label sets.

    ``inc()`` bumps the unlabelled series; ``inc(endpoint="assign")``
    bumps one labelled child.  Rendering emits every child it has seen.
    """

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help_text = help_text
        self._lock = Lock()
        self._children: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        # NaN/inf must be rejected too: one poisoned add would corrupt
        # the cumulative series for the rest of the process lifetime.
        if not math.isfinite(amount) or amount < 0.0:
            raise ValueError(
                f"counters can only increase by finite non-negative "
                f"amounts, got {amount!r}"
            )
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def snapshot(self) -> list:
        """JSON-serializable ``[label_pairs, value]`` rows of every child.

        The wire form worker processes export over the control pipe:
        label pairs are lists (JSON has no tuples) and round-trip
        through :meth:`merge_snapshot` losslessly.
        """
        with self._lock:
            return [
                [[list(pair) for pair in labels], value]
                for labels, value in sorted(self._children.items())
            ]

    def merge_snapshot(self, snapshot: list) -> None:
        """Add another process's :meth:`snapshot` into this counter."""
        for labels, value in snapshot:
            key = tuple(sorted((str(k), str(v)) for k, v in labels))
            with self._lock:
                self._children[key] = self._children.get(key, 0.0) + float(
                    value
                )

    def value(self, **labels: str) -> float:
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            return self._children.get(key, 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return sum(self._children.values())

    def render(self) -> list[str]:
        with self._lock:
            children = sorted(self._children.items())
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} counter",
        ]
        if not children:
            children = [((), 0.0)]
        for labels, value in children:
            lines.append(
                f"{self.name}{_format_labels(labels)} {_format_value(value)}"
            )
        return lines


class LatencySummary:
    """Sliding-window latency summary (seconds) with fixed quantiles."""

    def __init__(self, name: str, help_text: str, window: int = 2048) -> None:
        if window < 1:
            raise ValueError(f"window must be at least 1, got {window}")
        self.name = name
        self.help_text = help_text
        self._lock = Lock()
        self._recent: deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._recent.append(seconds)
            self._count += 1
            self._sum += seconds

    def snapshot(self) -> dict:
        """JSON-serializable state for cross-process aggregation."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "recent": list(self._recent),
            }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another process's :meth:`snapshot` into this summary.

        Cumulative count/sum add exactly; the quantile windows
        concatenate (bounded by this summary's own window), so merged
        quantiles are an approximation over the union of the most
        recent observations — good enough for a scrape, and the only
        thing possible without per-observation timestamps.
        """
        with self._lock:
            self._count += int(snapshot["count"])
            self._sum += float(snapshot["sum"])
            self._recent.extend(float(v) for v in snapshot["recent"])

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float:
        """Window quantile by linear interpolation; NaN when empty."""
        with self._lock:
            data = sorted(self._recent)
        return self._quantile_of(data, q)

    @staticmethod
    def _quantile_of(data: list[float], q: float) -> float:
        """Quantile of an already-sorted snapshot; NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q:g}")
        if not data:
            return float("nan")
        pos = q * (len(data) - 1)
        lo = math.floor(pos)
        hi = math.ceil(pos)
        if lo == hi:
            return data[lo]
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def render(self, quantiles: Iterable[float] = _QUANTILES) -> list[str]:
        # One snapshot under one lock acquisition: quantiles, count, and
        # sum must describe the same instant, or a scrape racing with
        # observe() reports quantiles and totals from different windows.
        with self._lock:
            data = sorted(self._recent)
            count, total = self._count, self._sum
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} summary",
        ]
        for q in quantiles:
            lines.append(
                f'{self.name}{{quantile="{q:g}"}} '
                f"{_format_value(self._quantile_of(data, q))}"
            )
        lines.append(f"{self.name}_count {count}")
        lines.append(f"{self.name}_sum {_format_value(total)}")
        return lines


class ServiceMetrics:
    """The service's metric family, ready to render as one exposition."""

    def __init__(self, latency_window: int = 2048) -> None:
        self.requests = Counter(
            "repro_requests_total",
            "HTTP requests served, by endpoint and status code.",
        )
        self.assignments = Counter(
            "repro_assignments_total",
            "Deadline assignments served, by source (computed|cache).",
        )
        self.cache_hits = Counter(
            "repro_cache_hits_total", "Assignment cache hits."
        )
        self.cache_misses = Counter(
            "repro_cache_misses_total", "Assignment cache misses."
        )
        self.admissions = Counter(
            "repro_admissions_total",
            "Admission verdicts issued, by outcome (admitted|rejected).",
        )
        self.batches = Counter(
            "repro_batches_total", "Micro-batches dispatched to the pool."
        )
        self.batched_items = Counter(
            "repro_batched_items_total", "Requests carried inside batches."
        )
        self.errors = Counter(
            "repro_request_errors_total",
            "Requests rejected or failed, by kind.",
        )
        self.singleflight_waits = Counter(
            "repro_singleflight_waits_total",
            "Requests that coalesced onto an identical in-flight "
            "computation instead of recomputing.",
        )
        self.overloads = Counter(
            "repro_overload_rejections_total",
            "Requests shed with 429 because the work queue was full.",
        )
        self.fabric_leases = Counter(
            "repro_fabric_leases_total",
            "Sweep-fabric work-unit leases issued, by worker.",
        )
        self.fabric_completions = Counter(
            "repro_fabric_completions_total",
            "Sweep-fabric work units completed (first completion only).",
        )
        self.fabric_records = Counter(
            "repro_fabric_records_total",
            "Result records committed to the store through the fabric "
            "endpoint.",
        )
        self.assign_latency = LatencySummary(
            "repro_assign_latency_seconds",
            "End-to-end POST /assign service latency.",
            window=latency_window,
        )
        # Persistent-store instrumentation: a snapshot provider (set by
        # the service when it runs with --cache-dir) is polled at scrape
        # time, so the repro_store_* series always reflect the store's
        # own exact counters instead of a shadow count.
        self._store_stats_provider = None
        self._fabric_status_provider = None

    #: Counter attributes, in exposition order — one registry shared by
    #: render(), snapshot() and merge_snapshot() so a new counter can
    #: never silently drop out of the cross-process aggregation.
    _COUNTER_ATTRS = (
        "requests",
        "assignments",
        "cache_hits",
        "cache_misses",
        "admissions",
        "batches",
        "batched_items",
        "errors",
        "singleflight_waits",
        "overloads",
        "fabric_leases",
        "fabric_completions",
        "fabric_records",
    )

    def snapshot(self) -> dict:
        """One JSON-serializable document of every counter and summary.

        The export format worker processes send over the control pipe;
        :meth:`merge_snapshot` on an aggregator instance folds any
        number of them into one exposition (see
        :mod:`repro.service.agg`).  Store counters (when a provider is
        attached) ride along as plain numbers.
        """
        doc: dict = {
            "counters": {
                name: getattr(self, name).snapshot()
                for name in self._COUNTER_ATTRS
            },
            "assign_latency": self.assign_latency.snapshot(),
        }
        provider = self._store_stats_provider
        if provider is not None:
            stats = provider()
            doc["store"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "appends": stats.appends,
                "evictions": stats.evictions,
                "records": stats.records,
                "bytes": stats.bytes,
            }
        return doc

    def merge_snapshot(self, doc: dict) -> None:
        """Add one :meth:`snapshot` document into this instance.

        Unknown counter names are ignored (an older worker talking to a
        newer aggregator must not kill the scrape); the store section is
        left to the caller, which owns cross-worker gauge semantics.
        """
        for name, snapshot in doc.get("counters", {}).items():
            counter = getattr(self, name, None)
            if isinstance(counter, Counter):
                counter.merge_snapshot(snapshot)
        latency = doc.get("assign_latency")
        if latency is not None:
            self.assign_latency.merge_snapshot(latency)

    def set_fabric_status_provider(self, provider) -> None:
        """Register a zero-arg callable returning a ``QueueSnapshot``.

        Rendered as ``repro_fabric_units{state=...}`` gauges plus
        re-issue/worker-liveness series on every ``/metrics`` scrape
        (set by the sweep coordinator's HTTP endpoint); pass ``None``
        to detach.
        """
        self._fabric_status_provider = provider

    def _render_fabric(self) -> list[str]:
        provider = self._fabric_status_provider
        if provider is None:
            return []
        snapshot = provider()
        lines = [
            "# HELP repro_fabric_units Sweep work units by state.",
            "# TYPE repro_fabric_units gauge",
        ]
        for state, value in (
            ("pending", snapshot.pending),
            ("leased", snapshot.leased),
            ("done", snapshot.done),
        ):
            lines.append(
                f'repro_fabric_units{{state="{state}"}} '
                f"{_format_value(value)}"
            )
        lines.extend(
            [
                "# HELP repro_fabric_reissues_total Expired leases "
                "re-issued to other workers (work stealing).",
                "# TYPE repro_fabric_reissues_total counter",
                f"repro_fabric_reissues_total "
                f"{_format_value(snapshot.reissues)}",
                "# HELP repro_fabric_workers Workers that have ever "
                "contacted this sweep's queue.",
                "# TYPE repro_fabric_workers gauge",
                f"repro_fabric_workers {_format_value(len(snapshot.workers))}",
                "# HELP repro_fabric_finished Whether every unit of the "
                "sweep is done (0/1).",
                "# TYPE repro_fabric_finished gauge",
                f"repro_fabric_finished {int(snapshot.finished)}",
            ]
        )
        return lines

    def set_store_stats_provider(self, provider) -> None:
        """Register a zero-arg callable returning a ``StoreStats``.

        Rendered as ``repro_store_{hits,misses,appends,evictions}_total``
        counters plus ``repro_store_{records,bytes}`` gauges on every
        ``/metrics`` scrape; pass ``None`` to detach.
        """
        self._store_stats_provider = provider

    def _render_store(self) -> list[str]:
        provider = self._store_stats_provider
        if provider is None:
            return []
        stats = provider()
        lines: list[str] = []
        for name, help_text, value in (
            ("repro_store_hits_total", "Persistent-store hits.", stats.hits),
            (
                "repro_store_misses_total",
                "Persistent-store misses.",
                stats.misses,
            ),
            (
                "repro_store_appends_total",
                "Records appended to the persistent store.",
                stats.appends,
            ),
            (
                "repro_store_evictions_total",
                "Records evicted from the persistent store.",
                stats.evictions,
            ),
        ):
            lines.extend(
                [
                    f"# HELP {name} {help_text}",
                    f"# TYPE {name} counter",
                    f"{name} {_format_value(value)}",
                ]
            )
        for name, help_text, value in (
            (
                "repro_store_records",
                "Records currently in the persistent store.",
                stats.records,
            ),
            (
                "repro_store_bytes",
                "On-disk size of the persistent store's segments.",
                stats.bytes,
            ),
        ):
            lines.extend(
                [
                    f"# HELP {name} {help_text}",
                    f"# TYPE {name} gauge",
                    f"{name} {_format_value(value)}",
                ]
            )
        return lines

    def observe_batch(self, size: int) -> None:
        """Micro-batcher dispatch hook."""
        self.batches.inc()
        self.batched_items.inc(size)

    def cache_hit_rate(self) -> float:
        hits = self.cache_hits.total()
        total = hits + self.cache_misses.total()
        return hits / total if total else 0.0

    def render(self) -> str:
        lines: list[str] = []
        for name in self._COUNTER_ATTRS:
            lines.extend(getattr(self, name).render())
        lines.extend(
            [
                "# HELP repro_cache_hit_rate Assignment cache hit rate "
                "(hits / lookups).",
                "# TYPE repro_cache_hit_rate gauge",
                f"repro_cache_hit_rate {_format_value(self.cache_hit_rate())}",
            ]
        )
        lines.extend(self._render_store())
        lines.extend(self._render_fabric())
        lines.extend(self.assign_latency.render())
        return "\n".join(lines) + "\n"


def render_prometheus(metrics: ServiceMetrics) -> str:
    """Render *metrics* as a Prometheus text-format exposition."""
    return metrics.render()
