"""Cross-process metrics aggregation for the pooled service.

The pooled topology splits the single-process service's counters over
N worker processes plus the front end (which owns the HTTP
request/error counters and the follower side of single-flight).  A
``GET /metrics`` scrape must still read like one service, so the front
end collects one :meth:`~repro.service.metrics.ServiceMetrics.snapshot`
document per worker over the control pipe and folds them — together
with its own live counters — into a fresh
:class:`~repro.service.metrics.ServiceMetrics` that renders the usual
exposition.

Merge semantics:

* **Counters** add per label set.  ``computed`` assignments come from
  workers, ``coalesced`` from the front end, ``cache`` from whichever
  worker's LRU/spill answered — the totals obey the same
  ``assignments == cache_hits + cache_misses`` invariant dashboards
  rely on in the single-process exposition.
* **Latency** count/sum add exactly; quantile windows concatenate, so
  merged quantiles approximate the union of each process's most recent
  observations.
* **Store** counters (hits/misses/appends/evictions) add — each worker
  counts its own traffic against the shared spill directory — while
  ``records``/``bytes`` describe the one shared directory, so the
  merge takes the *max* across workers instead of summing copies of
  the same on-disk state.
"""

from __future__ import annotations

from typing import Iterable

from ..store.trialstore import StoreStats
from .metrics import ServiceMetrics

__all__ = ["aggregate_metrics", "merge_store_sections"]


def merge_store_sections(snapshots: Iterable[dict]) -> StoreStats | None:
    """Fold the ``store`` sections of worker snapshots into one view.

    Returns ``None`` when no snapshot carries a store section (the
    pool runs without ``--cache-dir``).
    """
    sections = [doc["store"] for doc in snapshots if "store" in doc]
    if not sections:
        return None
    return StoreStats(
        hits=sum(int(s.get("hits", 0)) for s in sections),
        misses=sum(int(s.get("misses", 0)) for s in sections),
        appends=sum(int(s.get("appends", 0)) for s in sections),
        evictions=sum(int(s.get("evictions", 0)) for s in sections),
        records=max(int(s.get("records", 0)) for s in sections),
        bytes=max(int(s.get("bytes", 0)) for s in sections),
    )


def aggregate_metrics(
    snapshots: Iterable[dict],
    *,
    base: ServiceMetrics | None = None,
) -> ServiceMetrics:
    """Merge worker *snapshots* (and the front end's *base*) into one.

    Returns a fresh :class:`ServiceMetrics` ready to ``render()``; the
    inputs are not mutated.  *base* is the front end's live metrics —
    HTTP request/error/overload counters plus coalesced-follower
    accounting — folded in as one more snapshot.
    """
    snapshots = list(snapshots)
    merged = ServiceMetrics()
    if base is not None:
        merged.merge_snapshot(base.snapshot())
    for doc in snapshots:
        merged.merge_snapshot(doc)
    store = merge_store_sections(snapshots)
    if store is not None:
        merged.set_store_stats_provider(lambda: store)
    return merged
