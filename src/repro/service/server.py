"""The online deadline-assignment service and its stdlib HTTP front end.

Two layers:

* :class:`DeadlineAssignmentService` — the embeddable engine: canonical
  digest → LRU cache → single-flight coalescing → micro-batched
  slicing, plus an optional stateful admission path that reuses
  :class:`repro.online.AdmissionController` (one controller per
  distinct platform, keyed by platform digest, so successive admitted
  applications accumulate residual-capacity commitments exactly as in
  the offline §7.2 experiments).

  Concurrency model: deadline distribution is deterministic in its
  canonical inputs, so N concurrent misses on the same digest share
  *one* computation (a digest-keyed in-flight future map — the waiters
  show up as ``repro_singleflight_waits_total``); admission is
  serialized per platform digest only, so distinct platforms admit
  concurrently while each controller's state stays single-writer; and
  the micro-batcher's ``max_queue`` bound sheds overload as
  :class:`~repro.errors.ServiceOverloadError`, which the HTTP layer
  maps to ``429`` with a ``Retry-After`` header.
* :func:`create_server` — a :class:`ThreadingHTTPServer` exposing

  - ``POST /assign``  — JSON request in, per-task slices (+ verdict) out,
  - ``GET /healthz``  — liveness probe,
  - ``GET /metrics``  — Prometheus text exposition.

Every :class:`~repro.errors.ReproError` maps to HTTP 400 with a JSON
``{"error": ..., "kind": ...}`` body; anything else is a 500.  The
response's ``cached`` flag and the cache-hit counters make the caching
behaviour observable end to end.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from concurrent.futures import Future
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from ..core.assignment import DeadlineAssignment
from ..core.estimation import get_estimator
from ..core.metrics import get_metric
from ..core.slicing import distribute_deadlines
from ..errors import ReproError, ServiceOverloadError
from ..online.admission import AdmissionController, AdmissionDecision
from ..store import TrialStore
from ..system.platform import Platform
from .api import (
    AssignRequest,
    AssignResponse,
    _canonical_platform_doc,
    request_digest,
    request_from_dict,
    response_from_assignment,
    response_to_dict,
)
from .batch import MicroBatcher
from .cache import AssignmentCache, StoreSpill
from .metrics import ServiceMetrics

__all__ = [
    "DeadlineAssignmentService",
    "ServiceHTTPServer",
    "create_server",
    "VEC_FLUSH_MIN",
]

#: Micro-batcher flush size at which distinct-workload batches route
#: through the vectorized estimate/weight stages (:mod:`repro.kernel.vec`)
#: instead of per-request kernel calls.  Single-flight guarantees the
#: items of one flush carry distinct digests, so a flush this large is
#: by construction a batch of ≥ VEC_FLUSH_MIN distinct workloads.
VEC_FLUSH_MIN = 8


class DeadlineAssignmentService:
    """Cache-fronted, micro-batched deadline-assignment engine.

    Parameters
    ----------
    cache_size:
        LRU entry budget for computed assignments.
    batch_size / batch_wait / workers:
        Micro-batcher knobs (largest batch, max coalescing wait in
        seconds, pool threads).
    max_queue:
        Bound on in-flight micro-batcher items; overflow raises
        :class:`~repro.errors.ServiceOverloadError` (the backpressure
        path).  ``None`` (default) keeps the queue unbounded.
    cache_dir:
        Optional directory for a persistent :class:`~repro.store.TrialStore`
        backing the LRU as a durable spill tier: computed assignments
        are written through to disk, LRU evictions only drop the memory
        copy, and a restarted service pointed at the same directory
        serves previously computed requests from the store (``cached``
        true on the very first request after restart).  The store's own
        counters appear as ``repro_store_*`` on ``GET /metrics``.
    """

    def __init__(
        self,
        *,
        cache_size: int = 1024,
        batch_size: int = 8,
        batch_wait: float = 0.002,
        workers: int = 4,
        max_queue: int | None = None,
        cache_dir: str | Path | None = None,
    ) -> None:
        self.metrics = ServiceMetrics()
        self.store: TrialStore | None = None
        spill: StoreSpill[DeadlineAssignment] | None = None
        if cache_dir is not None:
            self.store = TrialStore(cache_dir)
            spill = StoreSpill(
                self.store,
                encode=DeadlineAssignment.to_dict,
                decode=DeadlineAssignment.from_dict,
            )
            self.metrics.set_store_stats_provider(self.store.stats)
        self.cache: AssignmentCache[DeadlineAssignment] = AssignmentCache(
            cache_size, spill=spill
        )
        self.batcher: MicroBatcher[AssignRequest, DeadlineAssignment] = (
            MicroBatcher(
                self._compute,
                max_batch=batch_size,
                max_wait=batch_wait,
                workers=workers,
                max_queue=max_queue,
                on_batch=self.metrics.observe_batch,
                flush_handler=self._compute_flush,
                flush_min=VEC_FLUSH_MIN,
            )
        )
        # Single-flight: digest -> future of the in-flight computation.
        self._inflight: dict[str, Future[DeadlineAssignment]] = {}
        self._inflight_lock = threading.Lock()
        # Admission sharding: the registry lock only guards the two
        # dicts; each platform's controller serializes on its own lock.
        self._controllers: dict[str, AdmissionController] = {}
        self._admission_locks: dict[str, threading.Lock] = {}
        self._registry_lock = threading.Lock()
        self._app_seq = 0
        self._app_seq_lock = threading.Lock()

    # ------------------------------------------------------------------
    def assign(self, request: AssignRequest) -> AssignResponse:
        """Serve one request: cache lookup, else single-flight computation.

        Latency is observed on *every* path, including failures, and a
        failed computation still lands an ``assignments`` bump (as
        ``source="failed"``) so ``repro_assignments_total`` always equals
        ``cache_hits + cache_misses`` — the invariant dashboards divide
        by.  A miss that finds an identical computation already in
        flight waits for it instead of recomputing (``source=
        "coalesced"``, counted in ``repro_singleflight_waits_total``).
        """
        start = time.perf_counter()
        try:
            digest = request_digest(request)
            assignment = self.cache.get(digest)
            cached = assignment is not None
            if cached:
                self.metrics.cache_hits.inc()
                self.metrics.assignments.inc(source="cache")
            else:
                self.metrics.cache_misses.inc()
                assignment = self._compute_single_flight(digest, request)
            admission = self._admit(request) if request.admit else None
        finally:
            self.metrics.assign_latency.observe(time.perf_counter() - start)
        return response_from_assignment(
            assignment, digest, cached=cached, admission=admission
        )

    def _compute_single_flight(
        self, digest: str, request: AssignRequest
    ) -> DeadlineAssignment:
        """Compute *request*, coalescing concurrent identical misses.

        Sound because the computation is a pure function of the digest
        (the cache's own soundness argument): whoever installs the
        in-flight future first becomes the leader and computes; every
        later arrival with the same digest blocks on that future and
        shares the result — success and failure alike.  The leader
        publishes to the cache *before* retiring the future, so a miss
        that finds neither a cache entry nor an in-flight future can
        only recompute something the cache has since evicted.
        """
        flight: Future[DeadlineAssignment] = Future()
        with self._inflight_lock:
            leader = self._inflight.get(digest)
            if leader is None:
                self._inflight[digest] = flight
        if leader is not None:
            self.metrics.singleflight_waits.inc()
            try:
                assignment = leader.result()
            except BaseException:
                self.metrics.assignments.inc(source="failed")
                raise
            self.metrics.assignments.inc(source="coalesced")
            return assignment
        try:
            assignment = self.batcher.submit(request).result()
        except BaseException as exc:
            self.metrics.assignments.inc(source="failed")
            with self._inflight_lock:
                self._inflight.pop(digest, None)
            flight.set_exception(exc)
            raise
        self.cache.put(digest, assignment)
        self.metrics.assignments.inc(source="computed")
        with self._inflight_lock:
            self._inflight.pop(digest, None)
        flight.set_result(assignment)
        return assignment

    def assign_dict(self, data: Any) -> dict[str, Any]:
        """Dict-in/dict-out convenience wrapper (the HTTP body path)."""
        return response_to_dict(self.assign(request_from_dict(data)))

    def close(self, timeout: float | None = None) -> None:
        """Stop the batcher; in-flight requests complete first.

        With a *timeout* the drain is bounded: outstanding computations
        get up to that many seconds, then their futures are failed so
        no caller is left hanging (see :meth:`MicroBatcher.close`).
        The persistent store (if any) closes after the drain, so every
        completed computation's write-through lands before its lock is
        released.
        """
        self.batcher.close(timeout=timeout)
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "DeadlineAssignmentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _compute(self, request: AssignRequest) -> DeadlineAssignment:
        return distribute_deadlines(
            request.graph,
            request.platform,
            request.metric,
            estimator=request.estimator,
            params=request.params,
        )

    def _compute_flush(
        self, requests: "list[AssignRequest]"
    ) -> list:
        """Compute one micro-batcher flush, batch-first.

        Lanes inside the vectorized envelope — compiled-kernel metric,
        batchable WCET-* estimator, NumPy importable, ``REPRO_KERNEL``
        not disabled — share one :func:`vec_estimates_batch` +
        :func:`vec_weights_batch` array pass per (metric, estimator)
        group before running the per-lane slicing DP, exactly the
        stages :func:`distribute_deadlines`'s kernel path runs
        per-request.  Everything else — and every lane when fewer than
        :data:`VEC_FLUSH_MIN` are eligible — falls back to the scalar
        :meth:`_compute`, so unsupported metrics, validation errors and
        NumPy-less deployments behave verbatim like the per-request
        path.  Returns one result-or-exception per request, in order
        (the :class:`MicroBatcher` flush contract).
        """
        results: list = [None] * len(requests)
        plan: list = [None] * len(requests)
        groups: dict[tuple, list[int]] = {}
        for i, request in enumerate(requests):
            gate = self._vec_flush_gate(request)
            if gate is None:
                continue
            plan[i] = gate
            metric_obj, est_obj = gate
            params = request.params
            key = (
                request.metric,
                est_obj.name,
                None
                if params is None
                else (
                    params.k_g,
                    params.k_l,
                    params.c_thres,
                    params.c_thres_factor,
                ),
            )
            groups.setdefault(key, []).append(i)
        batched: set[int] = set()
        if sum(len(lanes) for lanes in groups.values()) >= VEC_FLUSH_MIN:
            for lanes in groups.values():
                batched |= self._vec_flush_group(
                    requests, lanes, plan, results
                )
        for i, request in enumerate(requests):
            if i in batched:
                continue
            try:
                results[i] = self._compute(request)
            except BaseException as exc:  # noqa: BLE001 - routed per lane
                results[i] = exc
        return results

    def _vec_flush_gate(self, request: AssignRequest):
        """``(metric_obj, est_obj)`` when *request* may take the batch
        tier, else ``None`` (the scalar path decides everything)."""
        from ..kernel import KERNEL_METRIC_TYPES
        from ..kernel.trial import kernel_enabled
        from ..kernel.vec import estimator_batch_supported, vec_available

        if not (kernel_enabled() and vec_available()):
            return None
        try:
            metric_obj = get_metric(request.metric, request.params)
            est_obj = get_estimator(request.estimator)
        except Exception:  # noqa: BLE001 - scalar path raises verbatim
            return None
        if type(metric_obj) not in KERNEL_METRIC_TYPES:
            return None
        if not estimator_batch_supported(est_obj.name):
            return None
        return metric_obj, est_obj

    def _vec_flush_group(
        self,
        requests: "list[AssignRequest]",
        lanes: "list[int]",
        plan: list,
        results: list,
    ) -> set[int]:
        """Run one (metric, estimator) lane group through the vec tier.

        Returns the lane indices it fully answered (result *or*
        exception installed in *results*); the rest — invalid graphs,
        error lanes the array stages flag as ``None`` — retry through
        the scalar path so reference exceptions surface verbatim.
        """
        from ..graph.validation import validate_graph
        from ..kernel import compile_workload, kernel_slice
        from ..kernel.vec import vec_estimates_batch, vec_weights_batch

        metric_obj, est_obj = plan[lanes[0]]
        cws = []
        ok_lanes: list[int] = []
        for i in lanes:
            request = requests[i]
            try:
                validate_graph(request.graph).raise_if_invalid()
                cws.append(
                    compile_workload(request.graph, request.platform)
                )
            except Exception:  # noqa: BLE001 - scalar retry re-raises
                continue
            ok_lanes.append(i)
        if not ok_lanes:
            return set()
        try:
            ests = vec_estimates_batch(cws, est_obj.name)
            weights = vec_weights_batch(
                cws, metric_obj, ests, est_obj.name
            )
        except Exception:  # noqa: BLE001 - batch stage bailed; go scalar
            return set()
        done: set[int] = set()
        for b, i in enumerate(ok_lanes):
            if ests[b] is None or weights[b] is None:
                continue  # error lane: scalar retry raises verbatim
            try:
                ka = kernel_slice(cws[b], metric_obj, weights[b])
                results[i] = ka.to_assignment(cws[b], est_obj.name)
            except BaseException as exc:  # noqa: BLE001 - same as scalar
                results[i] = exc
            done.add(i)
        return done

    def _platform_key(self, platform: Platform) -> str:
        text = json.dumps(
            _canonical_platform_doc(platform),
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(text.encode()).hexdigest()

    def _admission_shard(
        self, request: AssignRequest
    ) -> tuple[threading.Lock, AdmissionController]:
        """The (lock, controller) pair serving *request*'s platform.

        Creation is idempotent under the registry lock; afterwards the
        registry is never needed again for this platform — submissions
        serialize only on the per-platform lock, so admissions to
        distinct platforms proceed concurrently.
        """
        key = self._platform_key(request.platform)
        with self._registry_lock:
            lock = self._admission_locks.setdefault(key, threading.Lock())
            controller = self._controllers.get(key)
            if controller is None:
                controller = AdmissionController(
                    request.platform,
                    metric=request.metric,
                    estimator=request.estimator,
                    params=request.params,
                )
                self._controllers[key] = controller
        return lock, controller

    def _generate_app_id(self, controller: AdmissionController) -> str:
        """A fresh ``app-N`` id that cannot shadow a committed one.

        The sequence advances only when the service actually generates
        an id (caller-supplied names never consume numbers), and any
        value a caller already committed under — e.g. a client that
        named its app ``app-2`` — is skipped, so generated ids never
        collide with admitted applications.
        """
        committed = set(controller.admitted_ids())
        while True:
            with self._app_seq_lock:
                self._app_seq += 1
                candidate = f"app-{self._app_seq}"
            if candidate not in committed:
                return candidate

    def _admit(self, request: AssignRequest) -> AdmissionDecision:
        """Run the stateful admission path for *request*.

        The controller for the request's platform is created on first
        use and keeps its commitments across requests; its per-platform
        lock serializes submissions because controller state is not
        thread-safe and arrivals must be monotone — but only within the
        platform, so unrelated platforms never queue on each other.
        """
        lock, controller = self._admission_shard(request)
        with lock:
            app_id = request.app_id or self._generate_app_id(controller)
            arrival = (
                request.arrival
                if request.arrival is not None
                else controller.clock
            )
            decision = controller.submit(
                app_id,
                request.graph,
                arrival=arrival,
                relative_deadline=request.relative_deadline,
            )
        outcome = "admitted" if decision.admitted else "rejected"
        self.metrics.admissions.inc(outcome=outcome)
        return decision

    def admission_controller(
        self, platform: Platform
    ) -> AdmissionController | None:
        """The controller serving *platform*'s admissions, if any yet."""
        with self._registry_lock:
            return self._controllers.get(self._platform_key(platform))


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one service instance."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: DeadlineAssignmentService,
        *,
        retry_after: int = 1,
        fabric: Any = None,
    ) -> None:
        super().__init__(address, _ServiceRequestHandler)
        self.service = service
        self.retry_after = retry_after
        #: Optional sweep-fabric endpoint (see :mod:`repro.fabric`):
        #: when set, ``/fabric/*`` requests are dispatched to its
        #: ``handle(method, path, doc)``; when ``None`` they 404.
        self.fabric = fabric


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"
    # Small JSON responses after sub-ms cache hits sit exactly in the
    # Nagle + delayed-ACK stall window; send segments immediately.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok"}, endpoint="healthz")
        elif self.path.startswith("/fabric/"):
            self._handle_fabric("GET", None)
        elif self.path == "/metrics":
            body = self.server.service.metrics.render().encode()
            self.server.service.metrics.requests.inc(
                endpoint="metrics", status="200"
            )
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_json(
                404,
                {"error": f"unknown path {self.path!r}"},
                endpoint="unknown",
            )

    # Bodies larger than this are not drained for keep-alive reuse on
    # error paths; the connection is closed instead.
    _MAX_DRAIN = 1 << 20

    def _drain_request_body(self) -> None:
        """Consume an unread request body so keep-alive stays in sync.

        HTTP/1.1 replies on a persistent connection must not leave the
        request's body bytes in the stream — the peer's next request
        would be parsed starting inside them.  Reads and discards
        ``Content-Length`` bytes; anything unbounded (chunked encoding,
        oversized or unparsable lengths) flips ``close_connection``
        instead, which tells the base handler to drop the connection
        after the reply.
        """
        if "chunked" in self.headers.get("Transfer-Encoding", "").lower():
            self.close_connection = True
            return
        try:
            length = int(self.headers.get("Content-Length", "0") or "0")
        except ValueError:
            self.close_connection = True
            return
        if length <= 0:
            return
        if length > self._MAX_DRAIN:
            self.close_connection = True
            return
        while length > 0:
            chunk = self.rfile.read(min(length, 65536))
            if not chunk:
                self.close_connection = True
                return
            length -= len(chunk)

    def _handle_fabric(self, method: str, doc: Any) -> None:
        """Dispatch one ``/fabric/*`` request to the mounted endpoint.

        The endpoint object is duck-typed (``handle(method, path, doc)
        -> (status, body)``) so the service layer does not import
        :mod:`repro.fabric`; errors map exactly like ``/assign``'s:
        :class:`ReproError` → 400, anything else → 500.
        """
        service = self.server.service
        fabric = self.server.fabric
        if fabric is None:
            self._send_json(
                404,
                {"error": "no sweep fabric mounted on this server"},
                endpoint="fabric",
            )
            return
        try:
            status, reply = fabric.handle(method, self.path, doc)
        except ReproError as exc:
            service.metrics.errors.inc(kind=type(exc).__name__)
            self._send_json(
                400,
                {"error": str(exc), "kind": type(exc).__name__},
                endpoint="fabric",
            )
            return
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            service.metrics.errors.inc(kind="internal")
            self._send_json(
                500, {"error": f"internal error: {exc}"}, endpoint="fabric"
            )
            return
        self._send_json(status, reply, endpoint="fabric")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path.startswith("/fabric/"):
            service = self.server.service
            try:
                length = int(self.headers.get("Content-Length", "0"))
                body = self.rfile.read(length)
                data = json.loads(body.decode() or "null")
            except (ValueError, UnicodeDecodeError) as exc:
                service.metrics.errors.inc(kind="bad_json")
                self._send_json(
                    400,
                    {"error": f"request body is not valid JSON: {exc}"},
                    endpoint="fabric",
                )
                return
            self._handle_fabric("POST", data)
            return
        if self.path != "/assign":
            # Read the body we are not going to use *before* replying,
            # or its bytes desync the next request on this connection.
            self._drain_request_body()
            self._send_json(
                404,
                {"error": f"unknown path {self.path!r}"},
                endpoint="unknown",
            )
            return
        service = self.server.service
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = self.rfile.read(length)
            data = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            service.metrics.errors.inc(kind="bad_json")
            self._send_json(
                400,
                {"error": f"request body is not valid JSON: {exc}"},
                endpoint="assign",
            )
            return
        try:
            doc = service.assign_dict(data)
        except ServiceOverloadError as exc:
            # Backpressure: bounded queue full.  Shed the request with
            # the standard retry contract instead of queueing it.
            service.metrics.errors.inc(kind="ServiceOverloadError")
            service.metrics.overloads.inc()
            self._send_json(
                429,
                {"error": str(exc), "kind": "ServiceOverloadError"},
                endpoint="assign",
                extra_headers={
                    "Retry-After": str(self.server.retry_after)
                },
            )
            return
        except ReproError as exc:
            service.metrics.errors.inc(kind=type(exc).__name__)
            self._send_json(
                400,
                {"error": str(exc), "kind": type(exc).__name__},
                endpoint="assign",
            )
            return
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            service.metrics.errors.inc(kind="internal")
            self._send_json(
                500,
                {"error": f"internal error: {exc}"},
                endpoint="assign",
            )
            return
        self._send_json(200, doc, endpoint="assign")

    # ------------------------------------------------------------------
    def _send_json(
        self,
        status: int,
        doc: dict[str, Any],
        *,
        endpoint: str,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        # Serialize before touching the wire or the request counter: a
        # non-finite float in *doc* must degrade to a 500 JSON reply (and
        # be counted as such), not kill the connection after metrics
        # already claimed a success.
        try:
            body = json.dumps(doc, allow_nan=False).encode()
        except ValueError:
            status = 500
            self.server.service.metrics.errors.inc(kind="non_finite_json")
            body = json.dumps(
                {"error": "internal error: response contained non-finite numbers"}
            ).encode()
        self.server.service.metrics.requests.inc(
            endpoint=endpoint, status=str(status)
        )
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging is the metrics endpoint's job


def create_server(
    host: str = "127.0.0.1",
    port: int = 8077,
    service: DeadlineAssignmentService | None = None,
    *,
    retry_after: int = 1,
    fabric: Any = None,
) -> ServiceHTTPServer:
    """Bind a :class:`ServiceHTTPServer`; ``port=0`` picks a free port.

    ``retry_after`` is the ``Retry-After`` hint (seconds) attached to
    429 responses when the service sheds load.  ``fabric`` mounts a
    sweep-fabric endpoint (``/fabric/*`` lease/complete/heartbeat/
    status routes for remote sweep workers — see :mod:`repro.fabric`).
    The caller owns the lifecycle: ``serve_forever()`` to run,
    ``shutdown()``/``server_close()`` to stop, and
    ``server.service.close()`` to drain the batcher (pass a timeout
    for a bounded drain).
    """
    if service is None:
        service = DeadlineAssignmentService()
    return ServiceHTTPServer(
        (host, port), service, retry_after=retry_after, fabric=fabric
    )
