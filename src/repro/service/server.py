"""The online deadline-assignment service and its stdlib HTTP front end.

Two layers:

* :class:`DeadlineAssignmentService` — the embeddable engine: canonical
  digest → LRU cache → micro-batched slicing, plus an optional stateful
  admission path that reuses :class:`repro.online.AdmissionController`
  (one controller per distinct platform, keyed by platform digest, so
  successive admitted applications accumulate residual-capacity
  commitments exactly as in the offline §7.2 experiments).
* :func:`create_server` — a :class:`ThreadingHTTPServer` exposing

  - ``POST /assign``  — JSON request in, per-task slices (+ verdict) out,
  - ``GET /healthz``  — liveness probe,
  - ``GET /metrics``  — Prometheus text exposition.

Every :class:`~repro.errors.ReproError` maps to HTTP 400 with a JSON
``{"error": ..., "kind": ...}`` body; anything else is a 500.  The
response's ``cached`` flag and the cache-hit counters make the caching
behaviour observable end to end.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..core.assignment import DeadlineAssignment
from ..core.slicing import distribute_deadlines
from ..errors import ReproError
from ..online.admission import AdmissionController, AdmissionDecision
from ..system.platform import Platform
from .api import (
    AssignRequest,
    AssignResponse,
    _canonical_platform_doc,
    request_digest,
    request_from_dict,
    response_from_assignment,
    response_to_dict,
)
from .batch import MicroBatcher
from .cache import AssignmentCache
from .metrics import ServiceMetrics

__all__ = ["DeadlineAssignmentService", "ServiceHTTPServer", "create_server"]


class DeadlineAssignmentService:
    """Cache-fronted, micro-batched deadline-assignment engine.

    Parameters
    ----------
    cache_size:
        LRU entry budget for computed assignments.
    batch_size / batch_wait / workers:
        Micro-batcher knobs (largest batch, max coalescing wait in
        seconds, pool threads).
    """

    def __init__(
        self,
        *,
        cache_size: int = 1024,
        batch_size: int = 8,
        batch_wait: float = 0.002,
        workers: int = 4,
    ) -> None:
        self.metrics = ServiceMetrics()
        self.cache: AssignmentCache[DeadlineAssignment] = AssignmentCache(
            cache_size
        )
        self.batcher: MicroBatcher[AssignRequest, DeadlineAssignment] = (
            MicroBatcher(
                self._compute,
                max_batch=batch_size,
                max_wait=batch_wait,
                workers=workers,
                on_batch=self.metrics.observe_batch,
            )
        )
        self._controllers: dict[str, AdmissionController] = {}
        self._admission_lock = threading.Lock()
        self._app_seq = 0

    # ------------------------------------------------------------------
    def assign(self, request: AssignRequest) -> AssignResponse:
        """Serve one request: cache lookup, else batched computation.

        Latency is observed on *every* path, including failures, and a
        failed computation still lands an ``assignments`` bump (as
        ``source="failed"``) so ``repro_assignments_total`` always equals
        ``cache_hits + cache_misses`` — the invariant dashboards divide
        by.
        """
        start = time.perf_counter()
        try:
            digest = request_digest(request)
            assignment = self.cache.get(digest)
            cached = assignment is not None
            if cached:
                self.metrics.cache_hits.inc()
                self.metrics.assignments.inc(source="cache")
            else:
                self.metrics.cache_misses.inc()
                try:
                    assignment = self.batcher.submit(request).result()
                except BaseException:
                    self.metrics.assignments.inc(source="failed")
                    raise
                self.cache.put(digest, assignment)
                self.metrics.assignments.inc(source="computed")
            admission = self._admit(request) if request.admit else None
        finally:
            self.metrics.assign_latency.observe(time.perf_counter() - start)
        return response_from_assignment(
            assignment, digest, cached=cached, admission=admission
        )

    def assign_dict(self, data: Any) -> dict[str, Any]:
        """Dict-in/dict-out convenience wrapper (the HTTP body path)."""
        return response_to_dict(self.assign(request_from_dict(data)))

    def close(self) -> None:
        """Stop the batcher; in-flight requests complete first."""
        self.batcher.close()

    def __enter__(self) -> "DeadlineAssignmentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _compute(self, request: AssignRequest) -> DeadlineAssignment:
        return distribute_deadlines(
            request.graph,
            request.platform,
            request.metric,
            estimator=request.estimator,
            params=request.params,
        )

    def _platform_key(self, platform: Platform) -> str:
        text = json.dumps(
            _canonical_platform_doc(platform),
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(text.encode()).hexdigest()

    def _admit(self, request: AssignRequest) -> AdmissionDecision:
        """Run the stateful admission path for *request*.

        The controller for the request's platform is created on first
        use and keeps its commitments across requests; the lock
        serializes submissions because controller state is not
        thread-safe and arrivals must be monotone.
        """
        key = self._platform_key(request.platform)
        with self._admission_lock:
            controller = self._controllers.get(key)
            if controller is None:
                controller = AdmissionController(
                    request.platform,
                    metric=request.metric,
                    estimator=request.estimator,
                    params=request.params,
                )
                self._controllers[key] = controller
            self._app_seq += 1
            app_id = request.app_id or f"app-{self._app_seq}"
            arrival = (
                request.arrival
                if request.arrival is not None
                else controller.clock
            )
            decision = controller.submit(
                app_id,
                request.graph,
                arrival=arrival,
                relative_deadline=request.relative_deadline,
            )
        outcome = "admitted" if decision.admitted else "rejected"
        self.metrics.admissions.inc(outcome=outcome)
        return decision

    def admission_controller(
        self, platform: Platform
    ) -> AdmissionController | None:
        """The controller serving *platform*'s admissions, if any yet."""
        with self._admission_lock:
            return self._controllers.get(self._platform_key(platform))


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one service instance."""

    daemon_threads = True

    def __init__(
        self, address: tuple[str, int], service: DeadlineAssignmentService
    ) -> None:
        super().__init__(address, _ServiceRequestHandler)
        self.service = service


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"
    # Small JSON responses after sub-ms cache hits sit exactly in the
    # Nagle + delayed-ACK stall window; send segments immediately.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok"}, endpoint="healthz")
        elif self.path == "/metrics":
            body = self.server.service.metrics.render().encode()
            self.server.service.metrics.requests.inc(
                endpoint="metrics", status="200"
            )
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_json(
                404,
                {"error": f"unknown path {self.path!r}"},
                endpoint="unknown",
            )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/assign":
            self._send_json(
                404,
                {"error": f"unknown path {self.path!r}"},
                endpoint="unknown",
            )
            return
        service = self.server.service
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = self.rfile.read(length)
            data = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            service.metrics.errors.inc(kind="bad_json")
            self._send_json(
                400,
                {"error": f"request body is not valid JSON: {exc}"},
                endpoint="assign",
            )
            return
        try:
            doc = service.assign_dict(data)
        except ReproError as exc:
            service.metrics.errors.inc(kind=type(exc).__name__)
            self._send_json(
                400,
                {"error": str(exc), "kind": type(exc).__name__},
                endpoint="assign",
            )
            return
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            service.metrics.errors.inc(kind="internal")
            self._send_json(
                500,
                {"error": f"internal error: {exc}"},
                endpoint="assign",
            )
            return
        self._send_json(200, doc, endpoint="assign")

    # ------------------------------------------------------------------
    def _send_json(
        self, status: int, doc: dict[str, Any], *, endpoint: str
    ) -> None:
        # Serialize before touching the wire or the request counter: a
        # non-finite float in *doc* must degrade to a 500 JSON reply (and
        # be counted as such), not kill the connection after metrics
        # already claimed a success.
        try:
            body = json.dumps(doc, allow_nan=False).encode()
        except ValueError:
            status = 500
            self.server.service.metrics.errors.inc(kind="non_finite_json")
            body = json.dumps(
                {"error": "internal error: response contained non-finite numbers"}
            ).encode()
        self.server.service.metrics.requests.inc(
            endpoint=endpoint, status=str(status)
        )
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging is the metrics endpoint's job


def create_server(
    host: str = "127.0.0.1",
    port: int = 8077,
    service: DeadlineAssignmentService | None = None,
) -> ServiceHTTPServer:
    """Bind a :class:`ServiceHTTPServer`; ``port=0`` picks a free port.

    The caller owns the lifecycle: ``serve_forever()`` to run,
    ``shutdown()``/``server_close()`` to stop, and
    ``server.service.close()`` to drain the batcher.
    """
    if service is None:
        service = DeadlineAssignmentService()
    return ServiceHTTPServer((host, port), service)
