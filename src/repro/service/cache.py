"""Content-addressed LRU cache for deadline assignments.

The service keys entries by :func:`repro.service.api.request_digest` —
a SHA-256 over the canonical JSON of the assignment-determining inputs
— so two clients submitting the same workload in different key order,
task order or metric spelling share one entry.  Deadline distribution
is deterministic in those inputs, which is what makes caching sound.

The cache is a plain lock-guarded ordered dict: the slicing hot path it
shortcuts is O(n³) in the worst case, so the few hundred nanoseconds of
locking are noise, and a single lock keeps the hit/miss/eviction
counters exact under the threading server.

An optional *spill* backend (:class:`StoreSpill` over a
:class:`repro.store.TrialStore`) turns the LRU into the hot tier of a
two-tier cache: every insert is also persisted, and a memory miss
consults the durable tier before giving up — so evicted entries come
back without recomputation and a restarted service
(``repro serve --cache-dir``) starts warm.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock
from typing import Any, Callable, Generic, TypeVar

from ..errors import ValidationError
from ..store import TrialStore, store_key

__all__ = ["AssignmentCache", "CacheStats", "StoreSpill"]

V = TypeVar("V")


class StoreSpill(Generic[V]):
    """Durable second tier for :class:`AssignmentCache`.

    Adapts a :class:`~repro.store.TrialStore` to the cache's spill
    protocol: values are encoded to JSON documents on save and decoded
    on load.  The store key wraps the cache key (a request digest) with
    the record *kind* and *salt*, so assignment records never collide
    with trial records sharing the same store directory, and bumping
    the salt invalidates persisted assignments when their semantics
    change.
    """

    def __init__(
        self,
        store: TrialStore,
        *,
        encode: Callable[[V], Any],
        decode: Callable[[Any], V],
        kind: str = "assignment",
        salt: str = "assignment/1",
    ) -> None:
        self.store = store
        self._encode = encode
        self._decode = decode
        self._kind = kind
        self._salt = salt

    def _key(self, key: str) -> str:
        return store_key(self._kind, {"digest": key}, salt=self._salt)

    def load(self, key: str) -> V | None:
        doc = self.store.get(self._key(key))
        return None if doc is None else self._decode(doc)

    def save(self, key: str, value: V) -> None:
        self.store.put(self._key(key), self._encode(value))


class CacheStats:
    """Immutable snapshot of one cache's counters."""

    __slots__ = ("hits", "misses", "evictions", "size", "maxsize")

    def __init__(
        self, hits: int, misses: int, evictions: int, size: int, maxsize: int
    ) -> None:
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.size = size
        self.maxsize = maxsize

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, size={self.size}/{self.maxsize})"
        )


class AssignmentCache(Generic[V]):
    """Thread-safe LRU cache from content digest to computed value.

    Parameters
    ----------
    maxsize:
        Entry budget; the least-recently-used entry is evicted when a
        new key would exceed it.  Must be at least 1.
    spill:
        Optional durable tier (:class:`StoreSpill`).  Inserts write
        through to it; memory misses consult it before reporting a
        miss, restoring found entries into the LRU.  A spill hit counts
        as a cache hit — callers see one two-tier cache.
    """

    def __init__(
        self, maxsize: int = 1024, *, spill: "StoreSpill[V] | None" = None
    ) -> None:
        if maxsize < 1:
            raise ValidationError(
                f"cache maxsize must be at least 1, got {maxsize}"
            )
        self.maxsize = maxsize
        self.spill = spill
        self._entries: OrderedDict[str, V] = OrderedDict()
        self._lock = Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> V | None:
        """Look up *key*, refreshing its recency; ``None`` on miss.

        With a spill tier, a memory miss falls through to the durable
        store; a record found there is decoded, promoted back into the
        LRU, and counted as a hit (the restore path that makes
        ``repro serve --cache-dir`` start warm after a restart).
        """
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                pass
            else:
                self._entries.move_to_end(key)
                self._hits += 1
                return value
            if self.spill is not None:
                value = self.spill.load(key)
                if value is not None:
                    self._insert(key, value)
                    self._hits += 1
                    return value
            self._misses += 1
            return None

    def _insert(self, key: str, value: V) -> None:
        """Insert under the held lock, evicting LRU entries as needed."""
        while len(self._entries) >= self.maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1
        self._entries[key] = value

    def put(self, key: str, value: V) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry if full.

        Writes through to the spill tier (if any): eviction from the
        LRU then only drops the memory copy, and a later miss restores
        the entry from disk instead of recomputing it.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
            else:
                self._insert(key, value)
            if self.spill is not None:
                self.spill.save(key, value)

    def clear(self) -> None:
        """Drop every entry (counters keep their history)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                maxsize=self.maxsize,
            )

    def keys(self) -> list[str]:
        """Current keys, least- to most-recently used (for diagnostics)."""
        with self._lock:
            return list(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AssignmentCache({self.stats()!r})"
