"""Content-addressed LRU cache for deadline assignments.

The service keys entries by :func:`repro.service.api.request_digest` —
a SHA-256 over the canonical JSON of the assignment-determining inputs
— so two clients submitting the same workload in different key order,
task order or metric spelling share one entry.  Deadline distribution
is deterministic in those inputs, which is what makes caching sound.

The cache is a plain lock-guarded ordered dict: the slicing hot path it
shortcuts is O(n³) in the worst case, so the few hundred nanoseconds of
locking are noise, and a single lock keeps the hit/miss/eviction
counters exact under the threading server.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock
from typing import Generic, TypeVar

from ..errors import ValidationError

__all__ = ["AssignmentCache", "CacheStats"]

V = TypeVar("V")


class CacheStats:
    """Immutable snapshot of one cache's counters."""

    __slots__ = ("hits", "misses", "evictions", "size", "maxsize")

    def __init__(
        self, hits: int, misses: int, evictions: int, size: int, maxsize: int
    ) -> None:
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.size = size
        self.maxsize = maxsize

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, size={self.size}/{self.maxsize})"
        )


class AssignmentCache(Generic[V]):
    """Thread-safe LRU cache from content digest to computed value.

    Parameters
    ----------
    maxsize:
        Entry budget; the least-recently-used entry is evicted when a
        new key would exceed it.  Must be at least 1.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValidationError(
                f"cache maxsize must be at least 1, got {maxsize}"
            )
        self.maxsize = maxsize
        self._entries: OrderedDict[str, V] = OrderedDict()
        self._lock = Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> V | None:
        """Look up *key*, refreshing its recency; ``None`` on miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: str, value: V) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            while len(self._entries) >= self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = value

    def clear(self) -> None:
        """Drop every entry (counters keep their history)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                maxsize=self.maxsize,
            )

    def keys(self) -> list[str]:
        """Current keys, least- to most-recently used (for diagnostics)."""
        with self._lock:
            return list(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AssignmentCache({self.stats()!r})"
