"""Asyncio HTTP front end for the pre-forked assignment worker pool.

The pooled topology (``repro serve --workers N``, N ≥ 2)::

    clients ──keep-alive HTTP──▶ PooledFrontend (1 asyncio thread)
                                   │  parse · single-flight · 429 shed
                                   ├──pipe──▶ assign worker 0 ─┐
                                   ├──pipe──▶ assign worker 1 ─┤ shared
                                   └──pipe──▶ ...              ─┘ spill dir

The front end owns everything cheap and I/O-bound — accept, a
hand-rolled HTTP/1.1 keep-alive parser (stdlib only), backpressure and
the graceful drain — and forwards parsed ``/assign`` bodies to the
least-loaded worker process, where the existing
:class:`~repro.service.server.DeadlineAssignmentService` does the
actual cache/batch/kernel work.

Single-flight moves *up* here: requests are coalesced by the SHA-256 of
their raw body bytes, so a duplicate burst costs one pipe crossing and
one worker computation no matter how many clients sent it.  Bodies
containing an ``"admit"`` key never coalesce — admission is stateful
(each submission advances a controller), so every admission request
must reach a worker individually.  Body-hash coalescing is strictly
weaker than the worker's canonical-digest single-flight, which still
catches textually different but canonically equal requests that land
on the same worker; requests split across workers are instead caught by
the shared spill tier as cross-process cache hits.

Metric accounting is split to keep the aggregated ``/metrics`` totals
identical to the single-process exposition: workers count everything
about requests they actually receive (cache hits/misses, computed and
failed assignments, latency); the front end counts the HTTP layer
(requests, errors, overload sheds) plus the requests that never reach
a worker — coalesced followers and queue-full sheds — mirroring the
bumps the single-process service would have made for them.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
import time
from typing import Any

from ..errors import ServiceOverloadError
from .agg import aggregate_metrics
from .metrics import ServiceMetrics
from .pool import RemoteAssignError, WorkerPool

__all__ = ["PooledFrontend"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Content Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
}

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_BYTES = 65536
_MAX_BODY_BYTES = 64 << 20


class PooledFrontend:
    """Async HTTP server bridging clients to a :class:`WorkerPool`.

    Runs its event loop on a private daemon thread so the CLI, tests
    and smoke scripts can drive it synchronously: :meth:`start` blocks
    until the socket is bound and every worker answered a readiness
    ping; :meth:`close` is the graceful drain.

    Parameters
    ----------
    pool:
        The worker pool; the front end owns its lifecycle from
        :meth:`start` through :meth:`close`.
    host / port:
        Bind address (``port=0`` picks a free port; see ``address``).
    retry_after:
        ``Retry-After`` seconds advertised on 429 responses.
    """

    def __init__(
        self,
        pool: WorkerPool,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        retry_after: int = 1,
    ) -> None:
        self.pool = pool
        self.host = host
        self.port = port
        self.retry_after = retry_after
        self.metrics = ServiceMetrics()
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._boot_error: BaseException | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False
        self._closed = False

    # ------------------------------------------------------------------
    def start(self, timeout: float = 60.0) -> None:
        """Spawn workers, bind the socket, and serve in the background.

        Raises whatever the bind raised (``OSError`` for a taken port)
        or ``RuntimeError`` when a worker fails its readiness ping; on
        failure the pool is closed, so the caller holds no half-started
        topology.
        """
        try:
            self.pool.start(timeout=timeout)
        except BaseException:
            self.pool.close(timeout=1.0)
            raise
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop,
            args=(ready,),
            name="repro-frontend",
            daemon=True,
        )
        self._thread.start()
        ready.wait(timeout)
        if self._boot_error is not None:
            self._thread.join(5.0)
            self.pool.close(timeout=1.0)
            raise self._boot_error
        if self.address is None:
            self.close(timeout=1.0)
            raise RuntimeError("front end failed to bind within the timeout")

    def _run_loop(self, ready: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def boot() -> None:
            self._server = await asyncio.start_server(
                self._handle_client, self.host, self.port
            )
            sock = self._server.sockets[0]
            self.address = sock.getsockname()[:2]

        try:
            loop.run_until_complete(boot())
        except BaseException as exc:  # noqa: BLE001 - re-raised in start()
            self._boot_error = exc
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    def close(self, timeout: float | None = None) -> None:
        """Graceful drain: stop accepting, finish in-flight, stop pool.

        Bounded by *timeout* when given — in-flight computations get up
        to that many seconds (the pool fails stragglers' futures, so no
        blocked client connection can hang the drain).  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        loop = self._loop
        if loop is None or not loop.is_running():
            self.pool.close(timeout=timeout)
            return
        done = asyncio.run_coroutine_threadsafe(
            self._shutdown(timeout), loop
        )
        try:
            done.result(timeout=None if timeout is None else timeout + 15.0)
        except Exception:  # noqa: BLE001 - drain must not raise upward
            pass
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(10.0)

    async def _shutdown(self, timeout: float | None) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Pool close blocks (pipe joins), so it runs off-loop; it fails
        # any pending dispatch futures, which wakes the connection
        # tasks awaiting them — they answer 500 and finish below.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, lambda: self.pool.close(timeout))
        if self._conn_tasks:
            _, pending = await asyncio.wait(
                list(self._conn_tasks), timeout=2.0
            )
            for task in pending:
                task.cancel()

    def __enter__(self) -> "PooledFrontend":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(timeout=5.0)

    # ------------------------------------------------------------------
    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-request; nothing to answer
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            request_line = await reader.readline()
            if not request_line:
                return
            if len(request_line) > _MAX_REQUEST_LINE:
                await self._reply_and_close(
                    writer, 400, {"error": "request line too long"}
                )
                return
            parts = request_line.decode("latin-1").strip().split()
            if len(parts) != 3:
                await self._reply_and_close(
                    writer, 400, {"error": "malformed request line"}
                )
                return
            method, path, version = parts
            headers: dict[str, str] = {}
            header_bytes = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                header_bytes += len(line)
                if header_bytes > _MAX_HEADER_BYTES:
                    await self._reply_and_close(
                        writer, 431, {"error": "request headers too large"}
                    )
                    return
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            if "chunked" in headers.get("transfer-encoding", "").lower():
                await self._reply_and_close(
                    writer,
                    400,
                    {"error": "chunked transfer encoding is not supported"},
                )
                return
            try:
                length = int(headers.get("content-length", "0") or "0")
            except ValueError:
                await self._reply_and_close(
                    writer, 400, {"error": "invalid Content-Length"}
                )
                return
            if length < 0 or length > _MAX_BODY_BYTES:
                await self._reply_and_close(
                    writer, 413, {"error": "request body too large"}
                )
                return
            body = await reader.readexactly(length) if length else b""
            keep_alive = (
                version == "HTTP/1.1"
                and headers.get("connection", "").lower() != "close"
                and not self._draining
            )
            status, payload, content_type, extra = await self._dispatch(
                method, path, body
            )
            self._write_response(
                writer, status, payload, content_type, extra, keep=keep_alive
            )
            await writer.drain()
            if not keep_alive:
                return

    async def _reply_and_close(
        self, writer: asyncio.StreamWriter, status: int, doc: dict
    ) -> None:
        """Answer a protocol error and drop the connection.

        Parse-level failures leave the stream position unknown, so
        keep-alive is never safe afterwards — same policy as the
        single-process handler's ``close_connection`` flips.
        """
        status, body, content_type, extra = self._json_response(
            status, doc, endpoint="unknown"
        )
        self._write_response(
            writer, status, body, content_type, extra, keep=False
        )
        await writer.drain()

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        extra: dict[str, str],
        *,
        keep: bool,
    ) -> None:
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        for name, value in extra.items():
            head.append(f"{name}: {value}")
        if not keep:
            head.append("Connection: close")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )

    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, bytes, str, dict[str, str]]:
        if method == "GET" and path == "/healthz":
            return self._json_response(
                200, {"status": "ok"}, endpoint="healthz"
            )
        if method == "GET" and path == "/metrics":
            return await self._metrics_route()
        if path.startswith("/fabric/"):
            # The pooled topology serves assignments only; run the
            # single-process server to mount a sweep-fabric endpoint.
            return self._json_response(
                404,
                {"error": "no sweep fabric mounted on this server"},
                endpoint="fabric",
            )
        if method == "POST" and path == "/assign":
            return await self._assign_route(body)
        if method not in ("GET", "POST", "HEAD"):
            return self._json_response(
                501,
                {"error": f"unsupported method {method!r}"},
                endpoint="unknown",
            )
        return self._json_response(
            404, {"error": f"unknown path {path!r}"}, endpoint="unknown"
        )

    async def _metrics_route(self) -> tuple[int, bytes, str, dict[str, str]]:
        loop = asyncio.get_running_loop()
        snapshots = await loop.run_in_executor(
            None, self.pool.metrics_snapshots
        )
        merged = aggregate_metrics(snapshots, base=self.metrics)
        payload = merged.render().encode()
        self.metrics.requests.inc(endpoint="metrics", status="200")
        return 200, payload, "text/plain; version=0.0.4", {}

    async def _assign_route(
        self, body: bytes
    ) -> tuple[int, bytes, str, dict[str, str]]:
        try:
            data = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            self.metrics.errors.inc(kind="bad_json")
            return self._json_response(
                400,
                {"error": f"request body is not valid JSON: {exc}"},
                endpoint="assign",
            )
        digest = hashlib.sha256(body).hexdigest()
        # Admission mutates controller state per submission, so bodies
        # that carry an admit key must each reach a worker — only pure
        # (deterministic) assignment requests may coalesce.
        coalesce = b'"admit"' not in body
        leader = self._inflight.get(digest) if coalesce else None
        if leader is not None:
            return await self._follow(leader)
        return await self._lead(digest if coalesce else None, data)

    async def _follow(
        self, leader: asyncio.Future
    ) -> tuple[int, bytes, str, dict[str, str]]:
        """Wait on an identical in-flight request instead of dispatching.

        Books exactly the counters the single-process service would
        have booked for a coalesced follower: a cache miss, a
        single-flight wait, a ``coalesced`` (or ``failed``) assignment,
        and a latency observation.
        """
        start = time.perf_counter()
        self.metrics.cache_misses.inc()
        self.metrics.singleflight_waits.inc()
        try:
            doc = await asyncio.shield(leader)
        except BaseException as exc:  # noqa: BLE001 - mapped per kind
            self.metrics.assignments.inc(source="failed")
            self.metrics.assign_latency.observe(time.perf_counter() - start)
            status, body, extra = self._map_assign_error(exc)
            return self._json_response(
                status, body, endpoint="assign", extra=extra
            )
        self.metrics.assignments.inc(source="coalesced")
        self.metrics.assign_latency.observe(time.perf_counter() - start)
        return self._json_response(200, doc, endpoint="assign")

    async def _lead(
        self, digest: str | None, data: Any
    ) -> tuple[int, bytes, str, dict[str, str]]:
        start = time.perf_counter()
        flight: asyncio.Future | None = None
        if digest is not None:
            flight = asyncio.get_running_loop().create_future()
            self._inflight[digest] = flight

        def settle(exc: BaseException | None, doc: Any = None) -> None:
            if digest is not None:
                self._inflight.pop(digest, None)
            if flight is None:
                return
            if exc is None:
                flight.set_result(doc)
            else:
                flight.set_exception(exc)
                flight.exception()  # consumed here; followers optional

        try:
            pool_future = self.pool.submit(data)
        except BaseException as exc:  # noqa: BLE001 - shed/refused path
            settle(exc)
            # Never dispatched, so no worker booked the assign-side
            # counters; mirror the single-process failure accounting.
            self.metrics.cache_misses.inc()
            self.metrics.assignments.inc(source="failed")
            self.metrics.assign_latency.observe(time.perf_counter() - start)
            status, body, extra = self._map_assign_error(exc)
            return self._json_response(
                status, body, endpoint="assign", extra=extra
            )
        try:
            doc = await asyncio.wrap_future(pool_future)
        except BaseException as exc:  # noqa: BLE001 - worker-side error
            settle(exc)
            status, body, extra = self._map_assign_error(exc)
            return self._json_response(
                status, body, endpoint="assign", extra=extra
            )
        settle(None, doc)
        return self._json_response(200, doc, endpoint="assign")

    def _map_assign_error(
        self, exc: BaseException
    ) -> tuple[int, dict, dict[str, str]]:
        """Map a dispatch failure to the single-process HTTP contract."""
        if isinstance(exc, ServiceOverloadError) or (
            isinstance(exc, RemoteAssignError)
            and exc.category == "overload"
        ):
            self.metrics.errors.inc(kind="ServiceOverloadError")
            self.metrics.overloads.inc()
            return (
                429,
                {"error": str(exc), "kind": "ServiceOverloadError"},
                {"Retry-After": str(self.retry_after)},
            )
        if isinstance(exc, RemoteAssignError) and exc.category == "repro":
            self.metrics.errors.inc(kind=exc.kind)
            return 400, {"error": exc.message, "kind": exc.kind}, {}
        self.metrics.errors.inc(kind="internal")
        message = (
            exc.message if isinstance(exc, RemoteAssignError) else str(exc)
        )
        return 500, {"error": f"internal error: {message}"}, {}

    def _json_response(
        self,
        status: int,
        doc: dict,
        *,
        endpoint: str,
        extra: dict[str, str] | None = None,
    ) -> tuple[int, bytes, str, dict[str, str]]:
        """Serialize exactly like the single-process ``_send_json``.

        Same ``allow_nan=False`` guard, same degraded 500 body, same
        request-counter bump — byte-identical response bodies are the
        pooled topology's correctness gate.
        """
        try:
            body = json.dumps(doc, allow_nan=False).encode()
        except ValueError:
            status = 500
            self.metrics.errors.inc(kind="non_finite_json")
            body = json.dumps(
                {
                    "error": "internal error: response contained "
                    "non-finite numbers"
                }
            ).encode()
        self.metrics.requests.inc(endpoint=endpoint, status=str(status))
        return status, body, "application/json", extra or {}
