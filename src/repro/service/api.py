"""Typed request/response surface of the deadline-assignment service.

A request carries everything one :func:`repro.core.slicing.distribute_deadlines`
call needs — task graph, platform, metric, estimator, adaptive
parameters — plus an optional admission section that asks the service
to also run the application through the stateful
:class:`repro.online.AdmissionController` of its platform.

Validation is strict: unknown keys, wrong types and out-of-range values
are rejected with the matching :mod:`repro.errors` class *before* any
computation happens, so the HTTP layer can map every client mistake to
a 400 with a precise message.

The request's :func:`request_digest` is a SHA-256 over the canonical
JSON of ``(graph, platform, metric, estimator, params)`` — the exact
inputs that determine the assignment — and is both the service's cache
key and its single-flight coalescing key: determinism in these inputs
is what makes sharing one computation across concurrent identical
requests sound.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Mapping

from ..core.assignment import DeadlineAssignment
from ..core.estimation import get_estimator
from ..core.metrics import AdaptiveParams, get_metric
from ..errors import ValidationError
from ..graph.serialization import graph_from_dict, graph_to_dict
from ..graph.taskgraph import TaskGraph
from ..online.admission import AdmissionDecision
from ..system.platform import Platform, platform_from_dict, platform_to_dict

__all__ = [
    "AssignRequest",
    "AssignResponse",
    "TaskSlice",
    "request_from_dict",
    "request_digest",
    "response_to_dict",
    "response_from_assignment",
    "RESPONSE_FORMAT",
]

RESPONSE_FORMAT = "repro.assign-response/1"

_REQUEST_KEYS = frozenset(
    {
        "graph",
        "platform",
        "metric",
        "estimator",
        "params",
        "admit",
        "app_id",
        "arrival",
        "relative_deadline",
    }
)
_PARAMS_KEYS = frozenset({"k_g", "k_l", "c_thres", "c_thres_factor"})


@dataclass(frozen=True)
class AssignRequest:
    """One validated deadline-assignment request.

    ``metric`` and ``estimator`` are stored in canonical registry
    spelling (``ADAPT-L``, ``WCET-AVG``), so equal configurations hash
    equally no matter how the client spelled them.
    """

    graph: TaskGraph
    platform: Platform
    metric: str = "ADAPT-L"
    estimator: str = "WCET-AVG"
    params: AdaptiveParams | None = None
    admit: bool = False
    app_id: str | None = None
    arrival: float | None = None
    relative_deadline: float | None = None


@dataclass(frozen=True)
class TaskSlice:
    """Per-task slice of the E-T-E window (one row of the response)."""

    task_id: str
    arrival: float
    relative_deadline: float
    absolute_deadline: float


@dataclass
class AssignResponse:
    """Service answer: the slices plus provenance and cache metadata."""

    slices: list[TaskSlice]
    metric: str
    estimator: str
    degenerate: bool
    digest: str
    cached: bool = False
    admission: AdmissionDecision | None = None


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValidationError(message)


def _float_field(data: Mapping[str, Any], key: str) -> float:
    value = data[key]
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"request field {key!r} must be a number, got {value!r}",
    )
    value = float(value)
    _require(math.isfinite(value), f"request field {key!r} must be finite")
    return value


def _params_from_dict(data: Any) -> AdaptiveParams:
    _require(
        isinstance(data, dict),
        f"request field 'params' must be an object, got {type(data).__name__}",
    )
    unknown = set(data) - _PARAMS_KEYS
    _require(
        not unknown,
        f"unknown params key(s) {sorted(unknown)}; "
        f"allowed: {sorted(_PARAMS_KEYS)}",
    )
    kwargs: dict[str, float] = {}
    for key in _PARAMS_KEYS:
        if key in data and data[key] is not None:
            kwargs[key] = _float_field(data, key)
    return AdaptiveParams(**kwargs)


def request_from_dict(data: Any) -> AssignRequest:
    """Parse and strictly validate one ``POST /assign`` body.

    Raises :class:`~repro.errors.ValidationError` for structural
    mistakes, :class:`~repro.errors.SerializationError` for malformed
    graph/platform documents, and the metric/estimator registries'
    errors for unknown names — all :class:`~repro.errors.ReproError`
    subclasses the server maps to HTTP 400.
    """
    _require(
        isinstance(data, dict),
        f"assign request must be a JSON object, got {type(data).__name__}",
    )
    unknown = set(data) - _REQUEST_KEYS
    _require(
        not unknown,
        f"unknown request key(s) {sorted(unknown)}; "
        f"allowed: {sorted(_REQUEST_KEYS)}",
    )
    _require("graph" in data, "request is missing the 'graph' document")
    _require("platform" in data, "request is missing the 'platform' document")
    graph = graph_from_dict(data["graph"])
    platform = platform_from_dict(data["platform"])

    metric = data.get("metric", "ADAPT-L")
    _require(
        isinstance(metric, str),
        f"request field 'metric' must be a string, got {metric!r}",
    )
    estimator = data.get("estimator", "WCET-AVG")
    _require(
        isinstance(estimator, str),
        f"request field 'estimator' must be a string, got {estimator!r}",
    )
    params = (
        _params_from_dict(data["params"]) if data.get("params") is not None
        else None
    )
    # Resolve through the registries: canonical spelling + early rejection.
    metric = get_metric(metric, params).name
    estimator = get_estimator(estimator).name

    admit = data.get("admit", False)
    _require(
        isinstance(admit, bool),
        f"request field 'admit' must be a boolean, got {admit!r}",
    )
    app_id = data.get("app_id")
    arrival = None
    relative_deadline = None
    if app_id is not None:
        _require(
            isinstance(app_id, str) and app_id != "",
            f"request field 'app_id' must be a non-empty string, got {app_id!r}",
        )
    if admit:
        _require(
            "relative_deadline" in data,
            "admission requests need a 'relative_deadline' (the E-T-E "
            "deadline measured from arrival)",
        )
        relative_deadline = _float_field(data, "relative_deadline")
        _require(
            relative_deadline > 0.0,
            f"'relative_deadline' must be positive, got {relative_deadline:g}",
        )
        if "arrival" in data and data["arrival"] is not None:
            arrival = _float_field(data, "arrival")
            _require(
                arrival >= 0.0, f"'arrival' must be >= 0, got {arrival:g}"
            )
    else:
        for key in ("app_id", "arrival", "relative_deadline"):
            _require(
                data.get(key) is None,
                f"request field {key!r} is only meaningful with 'admit': true",
            )
    return AssignRequest(
        graph=graph,
        platform=platform,
        metric=metric,
        estimator=estimator,
        params=params,
        admit=admit,
        app_id=app_id,
        arrival=arrival,
        relative_deadline=relative_deadline,
    )


def _canonical_platform_doc(platform: Platform) -> dict[str, Any]:
    doc = platform_to_dict(platform)
    doc["classes"] = sorted(doc["classes"], key=lambda c: c["id"])
    doc["processors"] = sorted(doc["processors"], key=lambda p: p["id"])
    return doc


def request_digest(request: AssignRequest) -> str:
    """Content address of the assignment-determining inputs.

    Covers graph, platform, metric, estimator and adaptive parameters —
    everything :func:`~repro.core.slicing.distribute_deadlines` reads —
    and deliberately excludes the admission section, which is stateful
    and never cached.
    """
    params = request.params or AdaptiveParams()
    doc = {
        "graph": graph_to_dict(request.graph),
        "platform": _canonical_platform_doc(request.platform),
        "metric": request.metric,
        "estimator": request.estimator,
        "params": {
            "k_g": params.k_g,
            "k_l": params.k_l,
            "c_thres": params.c_thres,
            "c_thres_factor": params.c_thres_factor,
        },
    }
    text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def response_from_assignment(
    assignment: DeadlineAssignment,
    digest: str,
    *,
    cached: bool = False,
    admission: AdmissionDecision | None = None,
) -> AssignResponse:
    """Build the wire response for one computed (or cached) assignment."""
    slices = [
        TaskSlice(
            task_id=tid,
            arrival=w.arrival,
            relative_deadline=w.relative_deadline,
            absolute_deadline=w.absolute_deadline,
        )
        for tid, w in sorted(assignment.windows.items())
    ]
    return AssignResponse(
        slices=slices,
        metric=assignment.metric_name,
        estimator=assignment.estimator_name,
        degenerate=assignment.degenerate,
        digest=digest,
        cached=cached,
        admission=admission,
    )


def response_to_dict(response: AssignResponse) -> dict[str, Any]:
    """JSON-serializable response document (NaN-free by construction)."""
    doc: dict[str, Any] = {
        "format": RESPONSE_FORMAT,
        "digest": response.digest,
        "cached": response.cached,
        "metric": response.metric,
        "estimator": response.estimator,
        "degenerate": response.degenerate,
        "slices": [
            {
                "task": s.task_id,
                "arrival": s.arrival,
                "relative_deadline": s.relative_deadline,
                "absolute_deadline": s.absolute_deadline,
            }
            for s in response.slices
        ],
    }
    if response.admission is not None:
        decision = response.admission
        entry: dict[str, Any] = {
            "admitted": decision.admitted,
            "app_id": decision.app_id,
            "arrival": decision.arrival,
            "reason": decision.reason,
        }
        if math.isfinite(decision.response_time):
            entry["response_time"] = decision.response_time
        doc["admission"] = entry
    return doc
