"""Deterministic random-number plumbing.

All randomness in the library flows through :class:`numpy.random.Generator`
instances derived from explicit integer seeds.  Experiments spawn one
independent child stream per trial via :func:`trial_rng`, so a trial's
outcome depends only on ``(experiment_seed, trial_index)`` — never on how
many worker processes executed it or in what order (a requirement for the
multiprocessing fan-out in :mod:`repro.experiments.runner`).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "make_rng",
    "trial_rng",
    "spawn_rngs",
    "derive_seed",
]


def make_rng(seed: int | None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an explicit seed.

    ``None`` yields an OS-entropy-seeded generator; library code other
    than interactive helpers should always pass an integer.
    """
    return np.random.default_rng(seed)


def derive_seed(root_seed: int, *indices: int) -> int:
    """Derive a stable 63-bit child seed from a root seed and index path.

    Uses :class:`numpy.random.SeedSequence` so children are statistically
    independent of each other and of the root stream.
    """
    ss = np.random.SeedSequence(entropy=root_seed, spawn_key=tuple(indices))
    return int(ss.generate_state(1, dtype=np.uint64)[0] >> 1)


def trial_rng(root_seed: int, trial_index: int) -> np.random.Generator:
    """Generator for one experiment trial, independent across trials."""
    ss = np.random.SeedSequence(entropy=root_seed, spawn_key=(trial_index,))
    return np.random.default_rng(ss)


def spawn_rngs(root_seed: int, count: int) -> list[np.random.Generator]:
    """Spawn *count* independent generators from one root seed."""
    return [trial_rng(root_seed, i) for i in range(count)]


def iter_trial_seeds(root_seed: int, count: int) -> Iterator[int]:
    """Yield the derived per-trial seeds for ``range(count)``."""
    for i in range(count):
        yield derive_seed(root_seed, i)


def choice_index(rng: np.random.Generator, weights: Sequence[float]) -> int:
    """Sample an index proportionally to non-negative *weights*."""
    total = float(sum(weights))
    if total <= 0.0:
        raise ValueError("weights must have a positive sum")
    r = rng.uniform(0.0, total)
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if r <= acc:
            return i
    return len(weights) - 1
