"""Graphviz DOT export for task graphs (debugging/visualization aid)."""

from __future__ import annotations

from typing import Mapping

from ..types import Time
from .taskgraph import TaskGraph

__all__ = ["to_dot"]


def _quote(s: str) -> str:
    return '"' + s.replace('"', '\\"') + '"'


def to_dot(
    graph: TaskGraph,
    *,
    windows: Mapping[str, tuple[Time, Time]] | None = None,
    name: str = "taskgraph",
) -> str:
    """Render *graph* in Graphviz DOT syntax.

    *windows*, when given, maps task id to its assigned ``(arrival,
    absolute deadline)`` execution window, which is appended to node
    labels — handy for eyeballing a slicing result.
    """
    lines = [f"digraph {_quote(name)} {{", "  rankdir=TB;", "  node [shape=box];"]
    for task in graph.tasks():
        wcets = ",".join(f"{v:g}" for _, v in sorted(task.wcet.items()))
        label = f"{task.id}\\nc=[{wcets}]"
        if windows and task.id in windows:
            a, d = windows[task.id]
            label += f"\\nw=[{a:g},{d:g}]"
        lines.append(f"  {_quote(task.id)} [label={_quote(label)}];")
    for src, dst, size in graph.edges():
        attrs = f' [label="{size:g}"]' if size else ""
        lines.append(f"  {_quote(src)} -> {_quote(dst)}{attrs};")
    lines.append("}")
    return "\n".join(lines)
