"""Task and task-graph models (§3.2) plus graph algorithms.

Public surface:

* :class:`Task` — immutable task with per-class WCETs.
* :class:`TaskGraph` — the DAG ``G = (N, A)`` with message sizes and
  end-to-end deadlines.
* :class:`GraphBuilder` and the shape helpers (chain/fork–join/diamond).
* Closure/parallel-set/static-level algorithms used by the metrics.
"""

from .algorithms import (
    TransitiveClosure,
    average_parallelism,
    count_paths,
    critical_path_tasks,
    graph_depth,
    iter_paths,
    level_assignment,
    longest_path_length,
    parallel_sets,
    static_levels,
    transitive_closure,
)
from .builder import (
    GraphBuilder,
    chain_graph,
    diamond_graph,
    fork_join_graph,
    layered_graph,
)
from .dot import to_dot
from .serialization import (
    canonical_graph_json,
    graph_digest,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from .task import Task
from .taskgraph import TaskGraph
from .transform import contract_chains, relabel, scale_wcets
from .validation import ValidationReport, check_graph, validate_graph

__all__ = [
    "Task",
    "TaskGraph",
    "GraphBuilder",
    "chain_graph",
    "fork_join_graph",
    "diamond_graph",
    "layered_graph",
    "TransitiveClosure",
    "transitive_closure",
    "parallel_sets",
    "static_levels",
    "longest_path_length",
    "average_parallelism",
    "graph_depth",
    "level_assignment",
    "iter_paths",
    "count_paths",
    "critical_path_tasks",
    "ValidationReport",
    "validate_graph",
    "check_graph",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "canonical_graph_json",
    "graph_digest",
    "to_dot",
    "contract_chains",
    "scale_wcets",
    "relabel",
]
