"""Fluent construction helpers for task graphs.

These are conveniences for examples and tests; the random workloads of
the paper's evaluation come from :mod:`repro.workload.generator`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import GraphError
from ..types import ProcessorClassId, Time
from .task import Task
from .taskgraph import TaskGraph

__all__ = [
    "GraphBuilder",
    "chain_graph",
    "fork_join_graph",
    "diamond_graph",
    "layered_graph",
]


class GraphBuilder:
    """Fluent builder for :class:`~repro.graph.taskgraph.TaskGraph`.

    Example
    -------
    >>> g = (GraphBuilder(default_class="cpu")
    ...      .task("a", 10).task("b", 20).task("c", 5)
    ...      .edge("a", "b", message=2).edge("b", "c")
    ...      .e2e("a", "c", 100)
    ...      .build())
    >>> g.n_tasks
    3
    """

    def __init__(self, default_class: str = "default") -> None:
        self._graph = TaskGraph()
        self._default_class = ProcessorClassId(default_class)
        self._built = False

    def task(
        self,
        task_id: str,
        wcet: Time | Mapping[str, Time],
        *,
        phasing: Time = 0.0,
        relative_deadline: Time | None = None,
        period: Time | None = None,
        resources: Sequence[str] = (),
    ) -> "GraphBuilder":
        """Add a task; a scalar *wcet* applies to the default class."""
        self._check_open()
        if isinstance(wcet, Mapping):
            wc = {ProcessorClassId(k): float(v) for k, v in wcet.items()}
        else:
            wc = {self._default_class: float(wcet)}
        self._graph.add_task(
            Task(
                id=task_id,
                wcet=wc,
                phasing=phasing,
                relative_deadline=relative_deadline,
                period=period,
                resources=frozenset(resources),
            )
        )
        return self

    def edge(self, src: str, dst: str, *, message: float = 0.0) -> "GraphBuilder":
        """Add a precedence arc with an optional message size."""
        self._check_open()
        self._graph.add_edge(src, dst, message)
        return self

    def e2e(self, src: str, dst: str, deadline: Time) -> "GraphBuilder":
        """Attach an end-to-end deadline to an input–output pair."""
        self._check_open()
        self._graph.set_e2e_deadline(src, dst, deadline)
        return self

    def build(self) -> TaskGraph:
        """Finalize and return the graph (builder becomes unusable)."""
        self._check_open()
        self._built = True
        return self._graph

    def _check_open(self) -> None:
        if self._built:
            raise GraphError("builder already consumed by build()")


def chain_graph(
    wcets: Sequence[Time],
    *,
    e2e_deadline: Time | None = None,
    default_class: str = "default",
    message: float = 0.0,
) -> TaskGraph:
    """A purely sequential pipeline ``t0 -> t1 -> ... -> t{n-1}``."""
    if not wcets:
        raise GraphError("chain_graph needs at least one task")
    b = GraphBuilder(default_class)
    ids = [f"t{i}" for i in range(len(wcets))]
    for tid, c in zip(ids, wcets):
        b.task(tid, c)
    for a, c in zip(ids, ids[1:]):
        b.edge(a, c, message=message)
    if e2e_deadline is not None:
        b.e2e(ids[0], ids[-1], e2e_deadline)
    return b.build()


def fork_join_graph(
    branch_wcets: Sequence[Sequence[Time]],
    *,
    source_wcet: Time = 1.0,
    sink_wcet: Time = 1.0,
    e2e_deadline: Time | None = None,
    default_class: str = "default",
) -> TaskGraph:
    """A fork–join: source fans out to chains that rejoin at a sink."""
    if not branch_wcets:
        raise GraphError("fork_join_graph needs at least one branch")
    b = GraphBuilder(default_class)
    b.task("src", source_wcet).task("sink", sink_wcet)
    for bi, branch in enumerate(branch_wcets):
        if not branch:
            raise GraphError("every branch needs at least one task")
        prev = "src"
        for ti, c in enumerate(branch):
            tid = f"b{bi}_{ti}"
            b.task(tid, c).edge(prev, tid)
            prev = tid
        b.edge(prev, "sink")
    if e2e_deadline is not None:
        b.e2e("src", "sink", e2e_deadline)
    return b.build()


def diamond_graph(
    *,
    top: Time = 10.0,
    left: Time = 10.0,
    right: Time = 10.0,
    bottom: Time = 10.0,
    e2e_deadline: Time | None = None,
    default_class: str = "default",
) -> TaskGraph:
    """The four-task diamond ``top -> {left, right} -> bottom``."""
    b = (
        GraphBuilder(default_class)
        .task("top", top)
        .task("left", left)
        .task("right", right)
        .task("bottom", bottom)
        .edge("top", "left")
        .edge("top", "right")
        .edge("left", "bottom")
        .edge("right", "bottom")
    )
    if e2e_deadline is not None:
        b.e2e("top", "bottom", e2e_deadline)
    return b.build()


def layered_graph(
    layer_wcets: Sequence[Sequence[Time]],
    *,
    e2e_deadline: Time | None = None,
    default_class: str = "default",
) -> TaskGraph:
    """Fully-connected consecutive layers (dense sequential-parallel DAG)."""
    if not layer_wcets or any(not layer for layer in layer_wcets):
        raise GraphError("layered_graph needs non-empty layers")
    b = GraphBuilder(default_class)
    ids: list[list[str]] = []
    for li, layer in enumerate(layer_wcets):
        ids.append([])
        for ti, c in enumerate(layer):
            tid = f"l{li}_{ti}"
            b.task(tid, c)
            ids[-1].append(tid)
    for prev, cur in zip(ids, ids[1:]):
        for p in prev:
            for c in cur:
                b.edge(p, c)
    if e2e_deadline is not None:
        for src in ids[0]:
            for dst in ids[-1]:
                b.e2e(src, dst, e2e_deadline)
    return b.build()
