"""Task-graph model (§3.2).

The application is a directed acyclic graph ``G = (N, A)`` whose nodes
are tasks and whose arcs are precedence constraints, each optionally
annotated with a message size (number of data items sent from the
predecessor to the successor).

End-to-end (E-T-E) timing requirements are attached to the graph as
deadlines on input–output task pairs (§4.1): the pair ``(a1, a2)`` with
deadline ``D`` requires every path between ``a1`` and ``a2`` to complete
within ``D`` of the arrival time of ``a1``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..errors import CycleError, GraphError, ValidationError
from ..types import Time
from .task import Task

__all__ = ["TaskGraph"]


class TaskGraph:
    """A mutable DAG of :class:`~repro.graph.task.Task` objects.

    The graph keeps, per arc, the message size ``m_{i,j}`` (data items);
    a size of ``0`` models a pure precedence constraint with no data
    transfer.  End-to-end deadlines are stored per (input, output) pair.
    """

    def __init__(self) -> None:
        self._tasks: dict[str, Task] = {}
        self._succ: dict[str, dict[str, float]] = {}
        self._pred: dict[str, dict[str, float]] = {}
        self._e2e: dict[tuple[str, str], Time] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        """Insert *task*; its id must be unused."""
        if task.id in self._tasks:
            raise GraphError(f"duplicate task id {task.id!r}")
        self._tasks[task.id] = task
        self._succ[task.id] = {}
        self._pred[task.id] = {}
        return task

    def replace_task(self, task: Task) -> Task:
        """Replace an existing task, keeping its arcs."""
        if task.id not in self._tasks:
            raise GraphError(f"unknown task id {task.id!r}")
        self._tasks[task.id] = task
        return task

    def add_edge(self, src: str, dst: str, message_size: float = 0.0) -> None:
        """Add the precedence arc ``src -> dst`` carrying *message_size* items."""
        if src not in self._tasks:
            raise GraphError(f"unknown task id {src!r}")
        if dst not in self._tasks:
            raise GraphError(f"unknown task id {dst!r}")
        if src == dst:
            raise GraphError(f"self-loop on {src!r} is not allowed")
        if dst in self._succ[src]:
            raise GraphError(f"duplicate edge {src!r} -> {dst!r}")
        if message_size < 0.0:
            raise GraphError("message size must be non-negative")
        self._succ[src][dst] = float(message_size)
        self._pred[dst][src] = float(message_size)

    def set_e2e_deadline(self, src: str, dst: str, deadline: Time) -> None:
        """Attach the E-T-E deadline ``D`` to the input–output pair."""
        if src not in self._tasks or dst not in self._tasks:
            raise GraphError("E-T-E deadline endpoints must be graph tasks")
        if deadline <= 0.0:
            raise ValidationError("E-T-E deadline must be positive")
        self._e2e[(src, dst)] = float(deadline)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[str]:
        return iter(self._tasks)

    @property
    def n_tasks(self) -> int:
        """Number of tasks ``n = |N|``."""
        return len(self._tasks)

    @property
    def n_edges(self) -> int:
        """Number of precedence arcs ``|A|``."""
        return sum(len(s) for s in self._succ.values())

    def task(self, task_id: str) -> Task:
        """Look up a task by id."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise GraphError(f"unknown task id {task_id!r}") from None

    def tasks(self) -> Iterator[Task]:
        """Iterate over all tasks (insertion order)."""
        return iter(self._tasks.values())

    def task_ids(self) -> list[str]:
        """All task ids (insertion order)."""
        return list(self._tasks)

    def successors(self, task_id: str) -> list[str]:
        """Immediate successors of a task."""
        self.task(task_id)
        return list(self._succ[task_id])

    def predecessors(self, task_id: str) -> list[str]:
        """Immediate predecessors of a task."""
        self.task(task_id)
        return list(self._pred[task_id])

    def out_degree(self, task_id: str) -> int:
        self.task(task_id)
        return len(self._succ[task_id])

    def in_degree(self, task_id: str) -> int:
        self.task(task_id)
        return len(self._pred[task_id])

    def has_edge(self, src: str, dst: str) -> bool:
        return src in self._succ and dst in self._succ[src]

    def message_size(self, src: str, dst: str) -> float:
        """Message size ``m_{i,j}`` on an arc."""
        try:
            return self._succ[src][dst]
        except KeyError:
            raise GraphError(f"no edge {src!r} -> {dst!r}") from None

    def set_message_size(self, src: str, dst: str, message_size: float) -> None:
        """Replace the message size ``m_{i,j}`` on an existing arc."""
        if not self.has_edge(src, dst):
            raise GraphError(f"no edge {src!r} -> {dst!r}")
        if message_size < 0.0:
            raise GraphError("message size must be non-negative")
        self._succ[src][dst] = float(message_size)
        self._pred[dst][src] = float(message_size)

    def edges(self) -> Iterator[tuple[str, str, float]]:
        """Iterate ``(src, dst, message_size)`` over all arcs."""
        for src, out in self._succ.items():
            for dst, size in out.items():
                yield src, dst, size

    def input_tasks(self) -> list[str]:
        """Tasks with no predecessors (§3.2 "input task")."""
        return [t for t in self._tasks if not self._pred[t]]

    def output_tasks(self) -> list[str]:
        """Tasks with no successors (§3.2 "output task")."""
        return [t for t in self._tasks if not self._succ[t]]

    # ------------------------------------------------------------------
    # End-to-end deadlines
    # ------------------------------------------------------------------
    def e2e_deadlines(self) -> Mapping[tuple[str, str], Time]:
        """All (input, output) pair deadlines."""
        return dict(self._e2e)

    def e2e_deadline(self, src: str, dst: str) -> Time:
        try:
            return self._e2e[(src, dst)]
        except KeyError:
            raise GraphError(f"no E-T-E deadline for pair ({src!r}, {dst!r})") from None

    def output_deadline(self, task_id: str) -> Time | None:
        """Absolute deadline bound on an output task.

        The tightest bound implied by the E-T-E pair deadlines ending at
        *task_id*: ``min over pairs (a1, task_id) of (arrival(a1) + D)``.
        Returns ``None`` when no pair constrains the task.
        """
        bounds = [
            self._tasks[a1].phasing + d
            for (a1, a2), d in self._e2e.items()
            if a2 == task_id
        ]
        return min(bounds) if bounds else None

    def set_uniform_e2e_deadline(self, deadline: Time) -> None:
        """Constrain every input–output pair by the same E-T-E deadline.

        This matches the experimental setup of §5.2 where one deadline,
        derived from the overall laxity ratio, governs the whole graph.
        """
        for src in self.input_tasks():
            for dst in self.output_tasks():
                self.set_e2e_deadline(src, dst, deadline)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def topological_order(self) -> list[str]:
        """Kahn topological order; raises :class:`CycleError` on cycles."""
        indeg = {t: len(self._pred[t]) for t in self._tasks}
        ready = [t for t, d in indeg.items() if d == 0]
        order: list[str] = []
        while ready:
            t = ready.pop()
            order.append(t)
            for s in self._succ[t]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != len(self._tasks):
            cyclic = sorted(t for t, d in indeg.items() if d > 0)
            raise CycleError(
                f"task graph contains a precedence cycle through {cyclic}"
            )
        return order

    def is_acyclic(self) -> bool:
        """Whether the graph is a DAG."""
        try:
            self.topological_order()
        except CycleError:
            return False
        return True

    def subgraph(self, task_ids: Iterable[str]) -> "TaskGraph":
        """Induced subgraph over *task_ids* (E-T-E pairs kept if both ends present)."""
        keep = set(task_ids)
        g = TaskGraph()
        for tid in self._tasks:
            if tid in keep:
                g.add_task(self._tasks[tid])
        for src, dst, size in self.edges():
            if src in keep and dst in keep:
                g.add_edge(src, dst, size)
        for (a1, a2), d in self._e2e.items():
            if a1 in keep and a2 in keep:
                g.set_e2e_deadline(a1, a2, d)
        return g

    def copy(self) -> "TaskGraph":
        """Shallow structural copy (tasks are immutable and shared)."""
        return self.subgraph(self._tasks)

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` (message sizes as ``weight``)."""
        import networkx as nx

        g = nx.DiGraph()
        for tid, task in self._tasks.items():
            g.add_node(tid, task=task)
        for src, dst, size in self.edges():
            g.add_edge(src, dst, weight=size)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskGraph(n_tasks={self.n_tasks}, n_edges={self.n_edges}, "
            f"e2e_pairs={len(self._e2e)})"
        )
