"""Structural validation of task graphs against the model of §3.2/§4.1."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ValidationError
from .taskgraph import TaskGraph

__all__ = ["ValidationReport", "validate_graph", "check_graph"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_graph`.

    ``errors`` are violations of hard model invariants; ``warnings`` are
    conditions that are legal but usually indicate a malformed workload
    (e.g. an output task with no E-T-E deadline, which the slicing
    algorithm cannot window).
    """

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_invalid(self) -> None:
        if self.errors:
            raise ValidationError("; ".join(self.errors))


def validate_graph(graph: TaskGraph, *, require_e2e: bool = False) -> ValidationReport:
    """Validate *graph* and return a :class:`ValidationReport`.

    Checks: acyclicity, E-T-E pairs anchored at true input/output tasks
    with reachability between endpoints, and (optionally) that every
    output task is covered by at least one E-T-E deadline.
    """
    report = ValidationReport()
    if graph.n_tasks == 0:
        report.errors.append("task graph is empty")
        return report
    if not graph.is_acyclic():
        report.errors.append("task graph contains a precedence cycle")
        return report

    from .algorithms import TransitiveClosure

    closure = TransitiveClosure(graph)
    inputs = set(graph.input_tasks())
    outputs = set(graph.output_tasks())

    for (a1, a2), d in graph.e2e_deadlines().items():
        if a1 not in inputs:
            report.errors.append(
                f"E-T-E pair ({a1!r}, {a2!r}): {a1!r} is not an input task"
            )
        if a2 not in outputs:
            report.errors.append(
                f"E-T-E pair ({a1!r}, {a2!r}): {a2!r} is not an output task"
            )
        if a1 != a2 and not closure.reachable(a1, a2):
            report.warnings.append(
                f"E-T-E pair ({a1!r}, {a2!r}): no path connects the pair"
            )
        min_work = _min_path_work(graph, a1, a2)
        if min_work is not None and d < min_work:
            report.warnings.append(
                f"E-T-E pair ({a1!r}, {a2!r}): deadline {d:g} is below the "
                f"minimum possible path execution time {min_work:g}"
            )

    if require_e2e:
        covered = {a2 for (a1, a2) in graph.e2e_deadlines()}
        for out in sorted(outputs - covered):
            report.warnings.append(
                f"output task {out!r} is not covered by any E-T-E deadline"
            )
    return report


def check_graph(graph: TaskGraph) -> None:
    """Validate *graph*, raising :class:`ValidationError` on hard errors."""
    validate_graph(graph).raise_if_invalid()


def _min_path_work(graph: TaskGraph, src: str, dst: str) -> float | None:
    """Smallest sum of minimum WCETs over any src→dst path (DP)."""
    INF = float("inf")
    dist: dict[str, float] = {tid: INF for tid in graph.task_ids()}
    dist[src] = graph.task(src).min_wcet()
    for tid in graph.topological_order():
        if dist[tid] == INF:
            continue
        for s in graph.successors(tid):
            cand = dist[tid] + graph.task(s).min_wcet()
            if cand < dist[s]:
                dist[s] = cand
    return None if dist[dst] == INF else dist[dst]
