"""Task model (§3.2 of the paper).

A task :math:`\\tau_i` is characterized by the static 4-tuple
``(c_i, phi_i, d_i, T_i)``:

* ``c_i`` — the worst-case execution time (WCET), an *array* of upper
  bounds indexed by processor class (heterogeneous platforms, §3.1).
  A class missing from the mapping means the task is ineligible to run
  on processors of that class (the paper's "inappropriate for execution
  on a particular processor class", §5.2).
* ``phi_i`` — the phasing: earliest time of the first invocation.
* ``d_i`` — the relative deadline.  For the deadline-distribution
  problem this is an *output* of the slicing algorithm, so tasks are
  usually created without one; it is carried here for applications with
  pre-assigned local deadlines and for the periodic machinery.
* ``T_i`` — the period (``None`` for aperiodic / single-shot tasks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ValidationError
from ..types import ProcessorClassId, Time

__all__ = ["Task"]


@dataclass(frozen=True)
class Task:
    """An application task with per-processor-class WCETs.

    Instances are immutable; derived timing attributes produced by the
    slicing algorithm (arrival time, relative/absolute deadline) live in
    :class:`repro.core.assignment.DeadlineAssignment`, never on the task.

    Parameters
    ----------
    id:
        Unique identifier within its task graph.
    wcet:
        Mapping from processor-class id to worst-case execution time on
        that class.  Must be non-empty; every value must be positive.
    phasing:
        Earliest time of the first invocation (default ``0``).
    relative_deadline:
        Optional pre-assigned relative deadline.
    period:
        Optional period ``T_i``.  When given, ``relative_deadline`` (if
        also given) must satisfy ``d_i <= T_i`` (§3.3).
    """

    id: str
    wcet: Mapping[ProcessorClassId, Time]
    phasing: Time = 0.0
    relative_deadline: Time | None = None
    period: Time | None = None
    label: str = ""
    resources: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.id:
            raise ValidationError("task id must be a non-empty string")
        if not self.wcet:
            raise ValidationError(
                f"task {self.id!r}: wcet mapping must name at least one "
                "eligible processor class"
            )
        for cls, c in self.wcet.items():
            if not (c > 0.0):
                raise ValidationError(
                    f"task {self.id!r}: WCET on class {cls!r} must be "
                    f"positive, got {c!r}"
                )
        if self.phasing < 0.0:
            raise ValidationError(
                f"task {self.id!r}: phasing must be non-negative"
            )
        if self.relative_deadline is not None and self.relative_deadline <= 0.0:
            raise ValidationError(
                f"task {self.id!r}: relative deadline must be positive"
            )
        if self.period is not None:
            if self.period <= 0.0:
                raise ValidationError(
                    f"task {self.id!r}: period must be positive"
                )
            if (
                self.relative_deadline is not None
                and self.relative_deadline > self.period
            ):
                raise ValidationError(
                    f"task {self.id!r}: constrained-deadline model requires "
                    f"d_i <= T_i (got d={self.relative_deadline}, "
                    f"T={self.period})"
                )
        # Freeze the mapping so the frozen dataclass is deeply immutable.
        object.__setattr__(self, "wcet", dict(self.wcet))

    # ------------------------------------------------------------------
    # WCET queries
    # ------------------------------------------------------------------
    def eligible_classes(self) -> frozenset[ProcessorClassId]:
        """Processor classes this task may execute on."""
        return frozenset(self.wcet)

    def is_eligible(self, cls: ProcessorClassId) -> bool:
        """Whether the task may execute on processors of class *cls*."""
        return cls in self.wcet

    def wcet_on(self, cls: ProcessorClassId) -> Time:
        """WCET on class *cls*; raises ``KeyError`` if ineligible."""
        return self.wcet[cls]

    def min_wcet(self) -> Time:
        """Smallest WCET over all eligible classes (WCET-MIN, eq. 11)."""
        return min(self.wcet.values())

    def max_wcet(self) -> Time:
        """Largest WCET over all eligible classes (WCET-MAX, eq. 10)."""
        return max(self.wcet.values())

    def mean_wcet(self) -> Time:
        """Average WCET over all eligible classes (WCET-AVG, eq. 9)."""
        return sum(self.wcet.values()) / len(self.wcet)

    # ------------------------------------------------------------------
    # Periodic behaviour (§3.2)
    # ------------------------------------------------------------------
    def is_periodic(self) -> bool:
        """Whether the task has a finite period."""
        return self.period is not None

    def arrival_of(self, invocation: int) -> Time:
        """Absolute arrival time of the *invocation*-th instance (1-based).

        ``a_i^k = phi_i + T_i (k - 1)`` for periodic tasks; aperiodic
        tasks only have invocation 1.
        """
        if invocation < 1:
            raise ValidationError("invocation indices are 1-based")
        if self.period is None:
            if invocation != 1:
                raise ValidationError(
                    f"aperiodic task {self.id!r} only has invocation 1"
                )
            return self.phasing
        return self.phasing + self.period * (invocation - 1)

    def absolute_deadline_of(self, invocation: int) -> Time:
        """Absolute deadline ``D_i^k = a_i^k + d_i`` of an invocation."""
        if self.relative_deadline is None:
            raise ValidationError(
                f"task {self.id!r} has no relative deadline assigned"
            )
        return self.arrival_of(invocation) + self.relative_deadline

    def with_deadline(self, relative_deadline: Time) -> "Task":
        """Return a copy with ``relative_deadline`` replaced."""
        return Task(
            id=self.id,
            wcet=self.wcet,
            phasing=self.phasing,
            relative_deadline=relative_deadline,
            period=self.period,
            label=self.label,
            resources=self.resources,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        wc = ", ".join(f"{k}={v:g}" for k, v in sorted(self.wcet.items()))
        return f"Task({self.id!r}, wcet={{{wc}}})"
