"""JSON (de)serialization of task graphs.

The on-disk format is a plain dict with a ``format`` marker so future
revisions can stay backward compatible::

    {
      "format": "repro.taskgraph/1",
      "tasks": [{"id": ..., "wcet": {...}, "phasing": ..., ...}, ...],
      "edges": [{"src": ..., "dst": ..., "message_size": ...}, ...],
      "e2e_deadlines": [{"src": ..., "dst": ..., "deadline": ...}, ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import SerializationError
from .task import Task
from .taskgraph import TaskGraph

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "FORMAT",
]

FORMAT = "repro.taskgraph/1"


def graph_to_dict(graph: TaskGraph) -> dict[str, Any]:
    """Convert *graph* to a JSON-serializable dict."""
    tasks = []
    for task in graph.tasks():
        entry: dict[str, Any] = {
            "id": task.id,
            "wcet": {str(k): v for k, v in task.wcet.items()},
            "phasing": task.phasing,
        }
        if task.relative_deadline is not None:
            entry["relative_deadline"] = task.relative_deadline
        if task.period is not None:
            entry["period"] = task.period
        if task.label:
            entry["label"] = task.label
        if task.resources:
            entry["resources"] = sorted(task.resources)
        tasks.append(entry)
    return {
        "format": FORMAT,
        "tasks": tasks,
        "edges": [
            {"src": s, "dst": d, "message_size": m} for s, d, m in graph.edges()
        ],
        "e2e_deadlines": [
            {"src": s, "dst": d, "deadline": dl}
            for (s, d), dl in sorted(graph.e2e_deadlines().items())
        ],
    }


def graph_from_dict(data: dict[str, Any]) -> TaskGraph:
    """Reconstruct a :class:`TaskGraph` from :func:`graph_to_dict` output."""
    if not isinstance(data, dict):
        raise SerializationError("task graph document must be a dict")
    fmt = data.get("format")
    if fmt != FORMAT:
        raise SerializationError(
            f"unsupported task graph format {fmt!r} (expected {FORMAT!r})"
        )
    graph = TaskGraph()
    try:
        for entry in data["tasks"]:
            graph.add_task(
                Task(
                    id=entry["id"],
                    wcet={k: float(v) for k, v in entry["wcet"].items()},
                    phasing=float(entry.get("phasing", 0.0)),
                    relative_deadline=(
                        float(entry["relative_deadline"])
                        if "relative_deadline" in entry
                        else None
                    ),
                    period=(
                        float(entry["period"]) if "period" in entry else None
                    ),
                    label=entry.get("label", ""),
                    resources=frozenset(entry.get("resources", ())),
                )
            )
        for edge in data.get("edges", ()):
            graph.add_edge(
                edge["src"], edge["dst"], float(edge.get("message_size", 0.0))
            )
        for pair in data.get("e2e_deadlines", ()):
            graph.set_e2e_deadline(
                pair["src"], pair["dst"], float(pair["deadline"])
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed task graph document: {exc}") from exc
    return graph


def save_graph(graph: TaskGraph, path: str | Path) -> None:
    """Write *graph* as JSON to *path*."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_graph(path: str | Path) -> TaskGraph:
    """Read a task graph from the JSON file at *path*."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return graph_from_dict(data)
