"""JSON (de)serialization of task graphs.

The on-disk format is a plain dict with a ``format`` marker so future
revisions can stay backward compatible::

    {
      "format": "repro.taskgraph/1",
      "tasks": [{"id": ..., "wcet": {...}, "phasing": ..., ...}, ...],
      "edges": [{"src": ..., "dst": ..., "message_size": ...}, ...],
      "e2e_deadlines": [{"src": ..., "dst": ..., "deadline": ...}, ...]
    }

The emitted document is *canonical*: tasks, edges, WCET classes and
E-T-E pairs appear in sorted order, independent of graph construction
order.  Two structurally equal graphs therefore serialize to the same
bytes, which makes :func:`graph_digest` a content address usable as a
cache key and as result provenance.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from ..errors import SerializationError
from .task import Task
from .taskgraph import TaskGraph

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "canonical_graph_json",
    "graph_digest",
    "FORMAT",
]

FORMAT = "repro.taskgraph/1"


def graph_to_dict(graph: TaskGraph) -> dict[str, Any]:
    """Convert *graph* to a JSON-serializable dict (canonical ordering)."""
    tasks = []
    for task in sorted(graph.tasks(), key=lambda t: t.id):
        entry: dict[str, Any] = {
            "id": task.id,
            "wcet": {str(k): task.wcet[k] for k in sorted(task.wcet)},
            "phasing": task.phasing,
        }
        if task.relative_deadline is not None:
            entry["relative_deadline"] = task.relative_deadline
        if task.period is not None:
            entry["period"] = task.period
        if task.label:
            entry["label"] = task.label
        if task.resources:
            entry["resources"] = sorted(task.resources)
        tasks.append(entry)
    return {
        "format": FORMAT,
        "tasks": tasks,
        "edges": [
            {"src": s, "dst": d, "message_size": m}
            for s, d, m in sorted(graph.edges())
        ],
        "e2e_deadlines": [
            {"src": s, "dst": d, "deadline": dl}
            for (s, d), dl in sorted(graph.e2e_deadlines().items())
        ],
    }


def canonical_graph_json(graph: TaskGraph) -> str:
    """The canonical JSON text of *graph* (sorted keys, no whitespace)."""
    return json.dumps(
        graph_to_dict(graph), sort_keys=True, separators=(",", ":")
    )


def graph_digest(graph: TaskGraph) -> str:
    """SHA-256 hex digest of the canonical JSON form of *graph*.

    Structurally equal graphs share a digest regardless of the order
    tasks and edges were added, so the digest works as a
    content-address (service cache key, experiment provenance).
    """
    return hashlib.sha256(canonical_graph_json(graph).encode()).hexdigest()


def graph_from_dict(data: dict[str, Any]) -> TaskGraph:
    """Reconstruct a :class:`TaskGraph` from :func:`graph_to_dict` output."""
    if not isinstance(data, dict):
        raise SerializationError("task graph document must be a dict")
    fmt = data.get("format")
    if fmt != FORMAT:
        raise SerializationError(
            f"unsupported task graph format {fmt!r} (expected {FORMAT!r})"
        )
    graph = TaskGraph()
    try:
        for entry in data["tasks"]:
            graph.add_task(
                Task(
                    id=entry["id"],
                    wcet={k: float(v) for k, v in entry["wcet"].items()},
                    phasing=float(entry.get("phasing", 0.0)),
                    relative_deadline=(
                        float(entry["relative_deadline"])
                        if "relative_deadline" in entry
                        else None
                    ),
                    period=(
                        float(entry["period"]) if "period" in entry else None
                    ),
                    label=entry.get("label", ""),
                    resources=frozenset(entry.get("resources", ())),
                )
            )
        for edge in data.get("edges", ()):
            graph.add_edge(
                edge["src"], edge["dst"], float(edge.get("message_size", 0.0))
            )
        for pair in data.get("e2e_deadlines", ()):
            graph.set_e2e_deadline(
                pair["src"], pair["dst"], float(pair["deadline"])
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed task graph document: {exc}") from exc
    return graph


def save_graph(graph: TaskGraph, path: str | Path) -> None:
    """Write *graph* as JSON to *path*."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_graph(path: str | Path) -> TaskGraph:
    """Read a task graph from the JSON file at *path*."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return graph_from_dict(data)
