"""Graph algorithms used by the slicing technique (§3.2, §4.5).

The central derived quantities are:

* **static level** ``SL(tau_i)`` — length (sum of estimated WCETs) of the
  longest task chain from ``tau_i`` to any output task;
* **average task-graph parallelism** ``xi`` (eq. 7) — total workload
  divided by the length of the longest path, used by ADAPT-G;
* **parallel set** ``Psi_i`` (eq. 8) — tasks that are neither
  predecessors nor successors of ``tau_i`` in the transitive closure,
  i.e. the tasks that may execute concurrently with it, used by ADAPT-L.

Reachability is computed once per graph as a bitset transitive closure
(integers as bit vectors), which is O(n * |A| * n / wordsize) and far
faster in CPython than per-pair DFS for the graph sizes of the paper's
evaluation (40–60 tasks) as well as for much larger graphs.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..errors import GraphError
from ..types import Time
from .taskgraph import TaskGraph

__all__ = [
    "TransitiveClosure",
    "transitive_closure",
    "parallel_sets",
    "static_levels",
    "longest_path_length",
    "average_parallelism",
    "graph_depth",
    "level_assignment",
    "iter_paths",
    "count_paths",
    "critical_path_tasks",
]

CostFn = Callable[[str], Time]


class TransitiveClosure:
    """Reachability oracle over a task graph.

    ``reachable(a, b)`` answers whether ``a ≺ b`` (there is a directed
    path from *a* to *b*), and :meth:`parallel_set` returns ``Psi_a``.
    """

    def __init__(self, graph: TaskGraph) -> None:
        order = graph.topological_order()
        self._ids: list[str] = order
        self._index: dict[str, int] = {tid: i for i, tid in enumerate(order)}
        n = len(order)
        # descendants[i] = bitmask of nodes reachable FROM i (excluding i)
        desc = [0] * n
        for tid in reversed(order):
            i = self._index[tid]
            mask = 0
            for s in graph.successors(tid):
                j = self._index[s]
                mask |= (1 << j) | desc[j]
            desc[i] = mask
        # ancestors[i] = bitmask of nodes that can reach i (excluding i)
        anc = [0] * n
        for i, mask in enumerate(desc):
            bit = 1 << i
            m = mask
            while m:
                low = m & -m
                anc[low.bit_length() - 1] |= bit
                m ^= low
        self._desc = desc
        self._anc = anc
        self._all_mask = (1 << n) - 1

    # ------------------------------------------------------------------
    def index_of(self, task_id: str) -> int:
        try:
            return self._index[task_id]
        except KeyError:
            raise GraphError(f"unknown task id {task_id!r}") from None

    def reachable(self, src: str, dst: str) -> bool:
        """Whether ``src ≺ dst`` (proper, irreflexive)."""
        return bool(self._desc[self.index_of(src)] >> self.index_of(dst) & 1)

    def descendants(self, task_id: str) -> set[str]:
        """All (transitive) successors of a task."""
        return self._unpack(self._desc[self.index_of(task_id)])

    def ancestors(self, task_id: str) -> set[str]:
        """All (transitive) predecessors of a task."""
        return self._unpack(self._anc[self.index_of(task_id)])

    def parallel_set(self, task_id: str) -> set[str]:
        """``Psi_i``: tasks neither reachable from nor reaching *task_id*."""
        i = self.index_of(task_id)
        mask = self._all_mask & ~self._desc[i] & ~self._anc[i] & ~(1 << i)
        return self._unpack(mask)

    def parallel_set_size(self, task_id: str) -> int:
        """``|Psi_i|`` without materializing the set."""
        i = self.index_of(task_id)
        mask = self._all_mask & ~self._desc[i] & ~self._anc[i] & ~(1 << i)
        return mask.bit_count()

    def _unpack(self, mask: int) -> set[str]:
        out: set[str] = set()
        while mask:
            low = mask & -mask
            out.add(self._ids[low.bit_length() - 1])
            mask ^= low
        return out


def transitive_closure(graph: TaskGraph) -> TransitiveClosure:
    """Build a :class:`TransitiveClosure` for *graph*."""
    return TransitiveClosure(graph)


def parallel_sets(
    graph: TaskGraph, closure: TransitiveClosure | None = None
) -> dict[str, int]:
    """``|Psi_i|`` for every task (the quantity ADAPT-L consumes, eq. 8)."""
    closure = closure or TransitiveClosure(graph)
    return {tid: closure.parallel_set_size(tid) for tid in graph.task_ids()}


def static_levels(graph: TaskGraph, cost: CostFn) -> dict[str, Time]:
    """Static level ``SL(tau_i)`` of every task under the *cost* function.

    ``SL(tau_i)`` is the length of the longest chain starting at
    ``tau_i`` and ending at an output task, where length is the sum of
    the (estimated) WCETs of the chain's tasks, *including* ``tau_i``.
    """
    levels: dict[str, Time] = {}
    for tid in reversed(graph.topological_order()):
        succ = graph.successors(tid)
        tail = max((levels[s] for s in succ), default=0.0)
        levels[tid] = cost(tid) + tail
    return levels


def longest_path_length(graph: TaskGraph, cost: CostFn) -> Time:
    """Length of the longest path (input → output) under *cost*."""
    if graph.n_tasks == 0:
        return 0.0
    levels = static_levels(graph, cost)
    return max(levels.values())


def average_parallelism(graph: TaskGraph, cost: CostFn) -> float:
    """Average task-graph parallelism ``xi`` (eq. 7).

    ``xi = sum_i cost(i) / max_j SL(tau_j)`` — the total workload over
    the critical-path length, i.e. how many processors the application
    could keep busy on average.
    """
    if graph.n_tasks == 0:
        raise GraphError("average parallelism of an empty graph is undefined")
    total = sum(cost(tid) for tid in graph.task_ids())
    longest = longest_path_length(graph, cost)
    if longest <= 0.0:
        raise GraphError("longest path length must be positive")
    return total / longest


def graph_depth(graph: TaskGraph) -> int:
    """Number of levels (longest path counted in tasks)."""
    if graph.n_tasks == 0:
        return 0
    depth: dict[str, int] = {}
    for tid in graph.topological_order():
        preds = graph.predecessors(tid)
        depth[tid] = 1 + max((depth[p] for p in preds), default=0)
    return max(depth.values())


def level_assignment(graph: TaskGraph) -> dict[str, int]:
    """Earliest level (0-based) of each task: ``max(pred levels) + 1``."""
    levels: dict[str, int] = {}
    for tid in graph.topological_order():
        preds = graph.predecessors(tid)
        levels[tid] = 1 + max((levels[p] for p in preds), default=-1)
    return levels


def iter_paths(
    graph: TaskGraph,
    src: str,
    dst: str,
    *,
    limit: int | None = None,
) -> Iterator[list[str]]:
    """Yield simple paths from *src* to *dst* (DFS order).

    A *limit* caps the number of yielded paths; path counts are
    exponential in general, so callers that only need validation should
    prefer :func:`count_paths` or constraint checks on the closure.
    """
    graph.task(src)
    graph.task(dst)
    count = 0
    stack: list[tuple[str, list[str]]] = [(src, [src])]
    while stack:
        node, path = stack.pop()
        if node == dst:
            yield path
            count += 1
            if limit is not None and count >= limit:
                return
            continue
        for s in graph.successors(node):
            stack.append((s, path + [s]))


def count_paths(graph: TaskGraph, src: str, dst: str) -> int:
    """Number of distinct simple paths from *src* to *dst* (DP, O(N+A))."""
    graph.task(src)
    graph.task(dst)
    counts: dict[str, int] = {src: 1}
    for tid in graph.topological_order():
        c = counts.get(tid, 0)
        if c == 0:
            continue
        for s in graph.successors(tid):
            counts[s] = counts.get(s, 0) + c
    return counts.get(dst, 0)


def critical_path_tasks(graph: TaskGraph, cost: CostFn) -> list[str]:
    """One longest input→output path under *cost* (ties broken by id).

    This is the classical (assignment-known) critical path, useful as a
    reference for tests and examples; the slicing algorithm itself uses
    the windowed metric-driven search in :mod:`repro.core.paths`.
    """
    if graph.n_tasks == 0:
        return []
    levels = static_levels(graph, cost)
    start = min(
        (tid for tid in graph.task_ids() if not graph.predecessors(tid)),
        key=lambda t: (-levels[t], t),
    )
    path = [start]
    node = start
    while graph.successors(node):
        node = min(graph.successors(node), key=lambda s: (-levels[s], s))
        path.append(node)
    return path
