"""Task-graph transformations.

Structure-preserving rewrites used for modelling and preprocessing:

* :func:`contract_chains` — merge maximal linear chains (fan-in 1 /
  fan-out 1 runs) into single tasks whose WCET vectors are the per-class
  sums.  The classical linearization step: it shrinks the problem
  without changing any path length or the set of inter-chain orderings,
  so deadline distribution over the contracted graph is a coarser but
  consistent version of the original.
* :func:`scale_wcets` — multiply every WCET by a factor (what-if
  analysis: faster silicon, pessimism margins).
* :func:`relabel` — rename tasks via a mapping (namespacing for graph
  composition).
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..errors import GraphError
from ..types import ProcessorClassId
from .task import Task
from .taskgraph import TaskGraph

__all__ = ["contract_chains", "scale_wcets", "relabel"]


def contract_chains(
    graph: TaskGraph, *, joiner: str = "+"
) -> tuple[TaskGraph, dict[str, str]]:
    """Contract maximal linear chains into single tasks.

    A task is chain-interior when it has exactly one predecessor and
    that predecessor has exactly one successor; runs of such tasks are
    merged front to back.  Two tasks merge only when their eligible
    class sets coincide (a merged task must run somewhere every member
    can run) and none carries a pre-assigned relative deadline or
    period.  Message sizes interior to a chain disappear (intra-task);
    boundary arcs keep theirs.  E-T-E deadlines transfer to the merged
    endpoints.

    Returns the contracted graph and a mapping
    ``original id -> merged id``.
    """
    ids = graph.topological_order()
    head_of: dict[str, str] = {}
    chains: dict[str, list[str]] = {}

    def mergeable(a: str, b: str) -> bool:
        ta, tb = graph.task(a), graph.task(b)
        if ta.eligible_classes() != tb.eligible_classes():
            return False
        for t in (ta, tb):
            if t.relative_deadline is not None or t.period is not None:
                return False
        return True

    for tid in ids:
        preds = graph.predecessors(tid)
        if (
            len(preds) == 1
            and graph.out_degree(preds[0]) == 1
            and preds[0] in head_of
            and mergeable(preds[0], tid)
        ):
            head = head_of[preds[0]]
            chains[head].append(tid)
            head_of[tid] = head
        else:
            head_of[tid] = tid
            chains[tid] = [tid]

    mapping = {tid: head for tid, head in head_of.items()}
    out = TaskGraph()
    for head, members in chains.items():
        if len(members) == 1:
            out.add_task(graph.task(head))
            continue
        classes = graph.task(head).eligible_classes()
        wcet = {
            ProcessorClassId(cls): sum(
                graph.task(m).wcet_on(cls) for m in members
            )
            for cls in classes
        }
        resources = frozenset().union(
            *(graph.task(m).resources for m in members)
        )
        merged_id = joiner.join(members)
        out.add_task(
            Task(
                id=merged_id,
                wcet=wcet,
                phasing=graph.task(head).phasing,
                resources=resources,
                label=f"chain[{len(members)}]",
            )
        )
        for m in members:
            mapping[m] = merged_id
    # The head-of map may still point at original head ids for merged
    # chains; normalize to the merged ids.
    for tid in ids:
        mapping[tid] = mapping[head_of[tid]]

    for src, dst, size in graph.edges():
        a, b = mapping[src], mapping[dst]
        if a == b:
            continue  # interior to a chain
        if not out.has_edge(a, b):
            out.add_edge(a, b, size)
        else:
            # parallel arcs collapse; keep the larger message
            out.set_message_size(a, b, max(out.message_size(a, b), size))
    merged_pairs: dict[tuple[str, str], float] = {}
    for (a1, a2), d in graph.e2e_deadlines().items():
        key = (mapping[a1], mapping[a2])
        # Pairs collapsing together keep the tightest deadline.
        if key not in merged_pairs or d < merged_pairs[key]:
            merged_pairs[key] = d
    for (m1, m2), d in merged_pairs.items():
        out.set_e2e_deadline(m1, m2, d)
    return out, mapping


def scale_wcets(graph: TaskGraph, factor: float) -> TaskGraph:
    """Copy of *graph* with every WCET multiplied by *factor*."""
    if factor <= 0.0:
        raise GraphError("scale factor must be positive")
    out = TaskGraph()
    for t in graph.tasks():
        out.add_task(
            Task(
                id=t.id,
                wcet={cls: c * factor for cls, c in t.wcet.items()},
                phasing=t.phasing,
                relative_deadline=t.relative_deadline,
                period=t.period,
                label=t.label,
                resources=t.resources,
            )
        )
    for src, dst, size in graph.edges():
        out.add_edge(src, dst, size)
    for (a1, a2), d in graph.e2e_deadlines().items():
        out.set_e2e_deadline(a1, a2, d)
    return out


def relabel(
    graph: TaskGraph, rename: Mapping[str, str] | Callable[[str], str]
) -> TaskGraph:
    """Copy of *graph* with task ids renamed (must stay unique)."""
    fn = rename if callable(rename) else lambda t: rename.get(t, t)  # type: ignore[union-attr]
    new_ids = {tid: fn(tid) for tid in graph.task_ids()}
    if len(set(new_ids.values())) != len(new_ids):
        raise GraphError("renaming collapses distinct task ids")
    out = TaskGraph()
    for t in graph.tasks():
        out.add_task(
            Task(
                id=new_ids[t.id],
                wcet=t.wcet,
                phasing=t.phasing,
                relative_deadline=t.relative_deadline,
                period=t.period,
                label=t.label,
                resources=t.resources,
            )
        )
    for src, dst, size in graph.edges():
        out.add_edge(new_ids[src], new_ids[dst], size)
    for (a1, a2), d in graph.e2e_deadlines().items():
        out.set_e2e_deadline(new_ids[a1], new_ids[a2], d)
    return out
