"""Workload and platform generation parameters (§5.1–5.2).

:class:`WorkloadParams` captures every knob of the paper's experimental
setup with the paper's values as defaults:

* 40–60 tasks per graph, 8–12 levels deep, 1–3 successors/predecessors;
* mean execution time ``c_mean = 20`` time units;
* execution-time distribution (ETD): per-class WCETs drawn uniformly
  from ``[c_mean(1−ETD), c_mean(1+ETD)]`` (default 25%);
* 5% probability that a task is ineligible on a processor class;
* overall laxity ratio (OLR): the E-T-E deadline is
  ``OLR × Σ_i c̄_i`` (default 0.8);
* communication-to-computation ratio (CCR): message sizes are drawn so
  the mean message cost is ``CCR × c_mean`` (default 0.1);
* 2–8 processors drawn from 1–3 randomly generated processor classes,
  connected by a shared bus at one time unit per data item.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..errors import WorkloadError

__all__ = ["WorkloadParams"]


@dataclass(frozen=True)
class WorkloadParams:
    """Parameters of the random workload/platform generator."""

    # --- platform (§5.1) -------------------------------------------------
    m: int = 3
    n_classes_range: tuple[int, int] = (1, 3)
    bus_delay_per_item: float = 1.0

    # --- task graph structure (§5.2) -------------------------------------
    n_tasks_range: tuple[int, int] = (40, 60)
    depth_range: tuple[int, int] = (8, 12)
    fan_range: tuple[int, int] = (1, 3)
    #: Skew exponent for distributing tasks over levels.  1.0 scatters
    #: uniformly; larger values concentrate tasks in fewer levels,
    #: producing bursts of parallelism (wide levels) separated by narrow
    #: ones.  The default (2.0) reproduces the paper's reported metric
    #: ordering — see the calibration notes in DESIGN.md.
    level_skew: float = 2.0

    # --- timing (§5.2) ----------------------------------------------------
    c_mean: float = 20.0
    etd: float = 0.25
    olr: float = 0.8
    ccr: float = 0.1
    ineligibility_prob: float = 0.05
    integer_times: bool = True
    #: How the OLR maps to E-T-E deadlines:
    #: ``"workload"`` (default, §5.2): one uniform deadline
    #: ``D = OLR × Σ_i c̄_i`` for every input–output pair;
    #: ``"pair-surplus"``: per-pair ``D = SL + OLR × (W_pair − SL)``
    #: anchored at the pair's estimated critical chain.
    deadline_mode: str = "workload"

    def __post_init__(self) -> None:
        if self.m < 1:
            raise WorkloadError("m must be at least 1")
        self._check_range("n_classes_range", self.n_classes_range, 1)
        self._check_range("n_tasks_range", self.n_tasks_range, 1)
        self._check_range("depth_range", self.depth_range, 1)
        self._check_range("fan_range", self.fan_range, 1)
        if self.depth_range[0] > self.n_tasks_range[0]:
            raise WorkloadError(
                "minimum depth cannot exceed the minimum task count "
                "(each level needs at least one task)"
            )
        if self.c_mean <= 0.0:
            raise WorkloadError("c_mean must be positive")
        if not (0.0 <= self.etd <= 1.0):
            raise WorkloadError("ETD must lie in [0, 1]")
        if self.olr <= 0.0:
            raise WorkloadError("OLR must be positive")
        if self.ccr < 0.0:
            raise WorkloadError("CCR must be non-negative")
        if not (0.0 <= self.ineligibility_prob < 1.0):
            raise WorkloadError("ineligibility probability must be in [0, 1)")
        if self.bus_delay_per_item < 0.0:
            raise WorkloadError("bus delay must be non-negative")
        if self.level_skew <= 0.0:
            raise WorkloadError("level skew must be positive")
        if self.deadline_mode not in ("workload", "pair-surplus"):
            raise WorkloadError(
                f"unknown deadline mode {self.deadline_mode!r}; choose "
                "'workload' or 'pair-surplus'"
            )
        if self.integer_times and self.c_mean < 1.0:
            # Integer execution times must stay >= 1 time unit; the
            # generator clamps the lower ETD bound at 1 accordingly.
            raise WorkloadError(
                f"integer execution times need c_mean >= 1 (got {self.c_mean:g})"
            )

    @staticmethod
    def _check_range(name: str, rng: tuple[int, int], minimum: int) -> None:
        lo, hi = rng
        if lo > hi:
            raise WorkloadError(f"{name}: lower bound {lo} exceeds upper {hi}")
        if lo < minimum:
            raise WorkloadError(f"{name}: lower bound must be >= {minimum}")

    # ------------------------------------------------------------------
    def with_overrides(self, **kwargs: Any) -> "WorkloadParams":
        """Copy with some fields replaced (sweep convenience)."""
        return replace(self, **kwargs)

    @property
    def wcet_bounds(self) -> tuple[float, float]:
        """The ETD interval ``[c_mean(1−ETD), c_mean(1+ETD)]``."""
        return (
            self.c_mean * (1.0 - self.etd),
            self.c_mean * (1.0 + self.etd),
        )

    @property
    def mean_message_cost(self) -> float:
        """Target mean message communication cost, ``CCR × c_mean``."""
        return self.ccr * self.c_mean

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (experiment provenance)."""
        return {
            "m": self.m,
            "n_classes_range": list(self.n_classes_range),
            "bus_delay_per_item": self.bus_delay_per_item,
            "n_tasks_range": list(self.n_tasks_range),
            "depth_range": list(self.depth_range),
            "fan_range": list(self.fan_range),
            "level_skew": self.level_skew,
            "c_mean": self.c_mean,
            "etd": self.etd,
            "olr": self.olr,
            "ccr": self.ccr,
            "ineligibility_prob": self.ineligibility_prob,
            "integer_times": self.integer_times,
            "deadline_mode": self.deadline_mode,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WorkloadParams":
        """Inverse of :meth:`to_dict`."""
        kwargs = dict(data)
        for key in ("n_classes_range", "n_tasks_range", "depth_range", "fan_range"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)
