"""Random workload and platform generation (§5.1–5.2)."""

from .generator import Workload, generate_task_graph, generate_workload
from .params import WorkloadParams
from .platformgen import class_names, generate_platform
from .scenarios import (
    control_pipeline_graph,
    engine_control_graph,
    paper_defaults,
    sensor_fusion_graph,
    small_system,
    uniform_execution_times,
)

__all__ = [
    "WorkloadParams",
    "Workload",
    "generate_workload",
    "generate_task_graph",
    "generate_platform",
    "class_names",
    "paper_defaults",
    "small_system",
    "uniform_execution_times",
    "control_pipeline_graph",
    "sensor_fusion_graph",
    "engine_control_graph",
]
