"""Random platform generation (§5.1).

The paper's experimental platform is a heterogeneous multiprocessor on a
shared bus: 2–8 processors, 1–3 randomly chosen processor classes, each
processor assigned a random class, and a communication cost of one time
unit per transmitted data item.
"""

from __future__ import annotations

import numpy as np

from ..system.interconnect import SharedBus
from ..system.platform import Platform
from ..system.processor import Processor, ProcessorClass
from ..types import ProcessorClassId, ProcessorId
from .params import WorkloadParams

__all__ = ["generate_platform", "class_names"]


def class_names(n_classes: int) -> list[str]:
    """Canonical class ids ``e1 .. e{n}`` (§3.1's set ``E``)."""
    return [f"e{k}" for k in range(1, n_classes + 1)]


def generate_platform(
    params: WorkloadParams, rng: np.random.Generator
) -> Platform:
    """Draw a random platform according to *params*.

    The number of classes ``m_e`` is uniform over
    ``params.n_classes_range``; every processor's class is uniform over
    the generated classes.  The draw is retried (bounded) so that every
    generated class is instantiated by at least one processor — the
    class set ``E`` of §3.1 is defined as the classes present in the
    system, and task WCET vectors are generated per class in ``E``.
    """
    lo, hi = params.n_classes_range
    n_classes = int(rng.integers(lo, hi + 1))
    n_classes = min(n_classes, params.m)  # every class must be realizable
    names = class_names(n_classes)
    classes = [ProcessorClass(ProcessorClassId(c)) for c in names]

    # Assign a random class to each processor; force coverage of all
    # classes by dealing one processor to each class first, then filling
    # the rest uniformly, and shuffling the assignment.
    assignment = list(names)
    extra = params.m - n_classes
    if extra > 0:
        assignment += [names[int(i)] for i in rng.integers(0, n_classes, extra)]
    rng.shuffle(assignment)

    procs = [
        Processor(ProcessorId(f"p{q + 1}"), ProcessorClassId(assignment[q]))
        for q in range(params.m)
    ]
    return Platform(procs, classes, comm=SharedBus(params.bus_delay_per_item))
