"""Canned workload scenarios.

:func:`paper_defaults` reproduces the paper's default experimental
configuration (§6): ETD = 25%, OLR = 0.8, CCR = 0.1, shared bus, 40–60
tasks, depth 8–12, 1–3 classes.  The other scenarios are realistic
application shapes used by the examples and by robustness tests.
"""

from __future__ import annotations

import numpy as np

from ..graph.builder import GraphBuilder
from ..graph.taskgraph import TaskGraph
from .params import WorkloadParams

__all__ = [
    "paper_defaults",
    "small_system",
    "uniform_execution_times",
    "control_pipeline_graph",
    "sensor_fusion_graph",
    "engine_control_graph",
]


def paper_defaults(m: int = 3, **overrides) -> WorkloadParams:
    """The paper's default configuration on an *m*-processor system."""
    return WorkloadParams(m=m).with_overrides(**overrides)


def small_system(**overrides) -> WorkloadParams:
    """Two processors — the regime where ADAPT-L's gain peaks (Fig. 2)."""
    return WorkloadParams(m=2).with_overrides(**overrides)


def uniform_execution_times(m: int = 3, **overrides) -> WorkloadParams:
    """ETD = 0%: all execution times identical (Fig. 4's left edge)."""
    return WorkloadParams(m=m, etd=0.0).with_overrides(**overrides)


def control_pipeline_graph(
    *,
    stages: int = 6,
    classes: tuple[str, ...] = ("dsp", "cpu"),
    e2e_deadline: float = 400.0,
    rng: np.random.Generator | None = None,
) -> TaskGraph:
    """A sensor→filter→…→actuator control pipeline (§1 motivation).

    The first and last stages model sensor/actuator tasks with *strict*
    locality constraints: they are eligible on a single class only.  The
    middle stages are relaxed (eligible everywhere, class-dependent
    WCETs).
    """
    rng = rng or np.random.default_rng(0)
    b = GraphBuilder(classes[0])
    b.task("sense", {classes[0]: 8.0})
    prev = "sense"
    for i in range(stages):
        wc = {c: float(rng.integers(15, 26)) for c in classes}
        tid = f"stage{i}"
        b.task(tid, wc).edge(prev, tid, message=2.0)
        prev = tid
    b.task("actuate", {classes[-1]: 6.0}).edge(prev, "actuate", message=1.0)
    b.e2e("sense", "actuate", e2e_deadline)
    return b.build()


def engine_control_graph(
    *,
    classes: tuple[str, ...] = ("ecu", "dsp"),
    rng: np.random.Generator | None = None,
) -> TaskGraph:
    """A multi-rate engine-control workload (periodic, §3.3).

    Three independent single-rate loops, in the classical automotive
    pattern: a fast fuel-injection loop (period 20), a medium
    lambda-control loop (period 40), and a slow thermal-management loop
    (period 80).  Each loop is a short sense→compute→actuate chain with
    its own end-to-end deadline; the hyperperiod is 80.  Feed the graph
    to :func:`repro.periodic.expand_multirate_graph` and schedule the
    resulting planning cycle.
    """
    rng = rng or np.random.default_rng(0)
    b = GraphBuilder(classes[0])
    loops = (
        ("inj", 20.0, 16.0, (2, 5)),
        ("lam", 40.0, 32.0, (4, 9)),
        ("thermal", 80.0, 64.0, (6, 14)),
    )
    for name, period, deadline, (lo, hi) in loops:
        sense = f"{name}_sense"
        comp = f"{name}_comp"
        act = f"{name}_act"
        b.task(sense, {classes[0]: float(rng.integers(1, 3))}, period=period)
        b.task(
            comp,
            {c: float(rng.integers(lo, hi)) for c in classes},
            period=period,
        )
        b.task(act, {classes[0]: float(rng.integers(1, 3))}, period=period)
        b.edge(sense, comp, message=1.0).edge(comp, act, message=1.0)
        b.e2e(sense, act, deadline)
    return b.build()


def sensor_fusion_graph(
    *,
    n_sensors: int = 4,
    classes: tuple[str, ...] = ("cpu", "dsp"),
    e2e_deadline: float = 300.0,
    rng: np.random.Generator | None = None,
) -> TaskGraph:
    """A fan-in fusion application: N sensor chains merge, then decide.

    High parallelism up front, a sequential tail — the shape where the
    local parallel-set knowledge of ADAPT-L pays off over the global
    average parallelism of ADAPT-G.
    """
    rng = rng or np.random.default_rng(0)
    b = GraphBuilder(classes[0])
    b.task("fuse", {c: float(rng.integers(18, 28)) for c in classes})
    for s in range(n_sensors):
        acq = f"acq{s}"
        flt = f"filter{s}"
        b.task(acq, {classes[0]: float(rng.integers(5, 12))})
        b.task(flt, {c: float(rng.integers(15, 26)) for c in classes})
        b.edge(acq, flt, message=3.0).edge(flt, "fuse", message=2.0)
    b.task("decide", {c: float(rng.integers(10, 20)) for c in classes})
    b.task("act", {classes[-1]: 5.0})
    b.edge("fuse", "decide", message=1.0).edge("decide", "act", message=1.0)
    for s in range(n_sensors):
        b.e2e(f"acq{s}", "act", e2e_deadline)
    return b.build()
