"""Random task-graph generator (§5.2).

Graphs are generated level by level:

1. draw the task count ``n`` and depth ``L`` from their ranges;
2. place one task per level, then scatter the remaining ``n − L`` tasks
   uniformly over levels;
3. connect every task below the top level to 1–3 predecessors — at
   least one from the immediately previous level (which makes the level
   structure, and hence the graph depth, exact) — preferring
   predecessors whose out-degree is still below the fan-out bound;
4. draw per-class integer WCETs uniformly from
   ``[c_mean(1−ETD), c_mean(1+ETD)]``, mark each (task, class) pair
   ineligible with probability 5% (keeping at least one class), and
   attach message sizes targeting a mean communication cost of
   ``CCR × c_mean``;
5. derive the E-T-E deadline from the overall laxity ratio,
   ``D = OLR × Σ_i c̄_i`` with ``c̄_i`` the per-task mean over eligible
   classes, and apply it to every input–output pair.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..graph.task import Task
from ..graph.taskgraph import TaskGraph
from ..system.platform import Platform
from ..types import ProcessorClassId
from .params import WorkloadParams
from .platformgen import generate_platform

__all__ = ["generate_task_graph", "generate_workload", "Workload"]


class Workload:
    """A generated (task graph, platform) pair with its parameters."""

    def __init__(
        self, graph: TaskGraph, platform: Platform, params: WorkloadParams
    ) -> None:
        self.graph = graph
        self.platform = platform
        self.params = params

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workload(n_tasks={self.graph.n_tasks}, m={self.platform.m}, "
            f"m_e={self.platform.m_e})"
        )


def generate_workload(
    params: WorkloadParams, rng: np.random.Generator
) -> Workload:
    """Generate a platform and a matching task graph (one trial's input)."""
    platform = generate_platform(params, rng)
    classes = [str(c) for c in platform.used_class_ids()]
    graph = generate_task_graph(params, rng, classes)
    return Workload(graph, platform, params)


def generate_task_graph(
    params: WorkloadParams,
    rng: np.random.Generator,
    classes: list[str],
) -> TaskGraph:
    """Generate one random task graph for the given processor classes."""
    if not classes:
        raise WorkloadError("at least one processor class is required")

    n = int(rng.integers(params.n_tasks_range[0], params.n_tasks_range[1] + 1))
    depth = int(rng.integers(params.depth_range[0], params.depth_range[1] + 1))
    depth = min(depth, n)

    levels = _assign_levels(n, depth, rng, params.level_skew)
    graph = TaskGraph()
    ids_by_level: list[list[str]] = []
    counter = 0
    draw_time = _time_drawer(params, rng)
    for level_size in levels:
        ids_by_level.append([])
        for _ in range(level_size):
            tid = f"t{counter:03d}"
            counter += 1
            graph.add_task(
                Task(id=tid, wcet=_draw_wcets(params, rng, classes, draw_time))
            )
            ids_by_level[-1].append(tid)

    _connect_levels(graph, ids_by_level, params, rng)
    _attach_messages(graph, params, rng)
    _attach_e2e_deadlines(graph, params)
    return graph


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _assign_levels(
    n: int, depth: int, rng: np.random.Generator, skew: float
) -> list[int]:
    """Sizes of each level: one task per level plus a skewed scatter.

    Each surplus task lands in level ``floor(u^skew × depth)`` for
    ``u ~ U[0,1)``, and level positions are shuffled afterwards.  With
    ``skew = 1`` the scatter is uniform; larger values concentrate
    surplus tasks in fewer levels, yielding the bursty
    wide-level/narrow-level structure whose parallelism spikes drive
    the contention the adaptive metrics exist to absorb (DESIGN.md,
    calibration notes).
    """
    sizes = [1] * depth
    for _ in range(n - depth):
        idx = int((rng.random() ** skew) * depth)
        sizes[min(idx, depth - 1)] += 1
    rng.shuffle(sizes)
    return sizes


def _draw_wcets(
    params: WorkloadParams,
    rng: np.random.Generator,
    classes: list[str],
    draw_time,
) -> dict[ProcessorClassId, float]:
    """Per-class WCET vector with the 5% ineligibility mechanism."""
    wcet: dict[ProcessorClassId, float] = {}
    random = rng.random
    ineligibility_prob = params.ineligibility_prob
    for cls in classes:
        if random() < ineligibility_prob:
            continue  # task deemed inappropriate for this class (§5.2)
        wcet[ProcessorClassId(cls)] = draw_time()
    if not wcet:
        # Guarantee schedulability in principle: restore a random class.
        cls = classes[int(rng.integers(0, len(classes)))]
        wcet[ProcessorClassId(cls)] = draw_time()
    return wcet


def _time_drawer(params: WorkloadParams, rng: np.random.Generator):
    """A zero-argument execution-time sampler with the bounds hoisted.

    The bound arithmetic (ceil/floor epsilon guards) depends only on
    the parameters, so it runs once per generated graph instead of once
    per drawn time; the random draws themselves are unchanged.
    """
    lo, hi = params.wcet_bounds
    if params.integer_times:
        # Integer time units (§3.1); execution times stay >= 1 even at
        # ETD = 100%, where the real interval's lower edge touches zero.
        ilo = max(1, int(np.ceil(lo - 1e-9)))
        ihi = max(ilo, int(np.floor(hi + 1e-9)))
        hi_exclusive = ihi + 1
        integers = rng.integers

        def draw_time() -> float:
            return float(integers(ilo, hi_exclusive))

        return draw_time

    flo = max(lo, np.finfo(float).tiny)
    uniform = rng.uniform

    def draw_time() -> float:
        return float(uniform(flo, hi))

    return draw_time


def _connect_levels(
    graph: TaskGraph,
    ids_by_level: list[list[str]],
    params: WorkloadParams,
    rng: np.random.Generator,
) -> None:
    """Wire each non-input task to 1–3 predecessors (§5.2)."""
    fan_lo, fan_hi = params.fan_range
    out_degree: dict[str, int] = {tid: 0 for tid in graph.task_ids()}

    # `earlier` accumulates the levels already passed — extending it
    # incrementally keeps the same contents and order as rebuilding the
    # prefix flattening at every level.
    earlier: list[str] = []
    for level in range(1, len(ids_by_level)):
        prev = ids_by_level[level - 1]
        earlier.extend(prev)
        for tid in ids_by_level[level]:
            k = int(rng.integers(fan_lo, fan_hi + 1))
            # First predecessor comes from the previous level so the
            # level structure (and the 8–12 level depth) is exact.
            first = _pick_pred(prev, out_degree, fan_hi, rng)
            chosen = {first}
            # Remaining predecessors may come from any earlier level.
            pool = [t for t in earlier if t not in chosen]
            while len(chosen) < k and pool:
                pick = _pick_pred(pool, out_degree, fan_hi, rng)
                chosen.add(pick)
                pool.remove(pick)
            for pred in sorted(chosen):
                graph.add_edge(pred, tid)
                out_degree[pred] += 1


def _pick_pred(
    candidates: list[str],
    out_degree: dict[str, int],
    fan_hi: int,
    rng: np.random.Generator,
) -> str:
    """Uniform pick, preferring tasks whose out-degree is below the cap."""
    open_slots = [t for t in candidates if out_degree[t] < fan_hi]
    pool = open_slots if open_slots else candidates
    return pool[int(rng.integers(0, len(pool)))]


def _attach_e2e_deadlines(graph: TaskGraph, params: WorkloadParams) -> None:
    """Derive the E-T-E deadlines from the OLR (§5.2).

    ``deadline_mode = "workload"`` (default, the paper's definition):
    one uniform deadline ``D = OLR × Σ_i c̄_i`` — the overall laxity
    ratio of the deadline to the average accumulated task-graph
    workload — applied to every input–output pair.

    ``deadline_mode = "pair-surplus"``: per-pair

        ``D = SL(a1, a2) + OLR × (W(a1, a2) − SL(a1, a2))``

    where ``W`` is the accumulated workload between the pair (the sum
    of average-over-classes execution times of every task on some a1→a2
    path, endpoints included) and ``SL`` the workload of the longest
    such path.  ``OLR`` is then the fraction of the pair's parallel
    surplus granted as laxity beyond its critical chain: ``OLR → 0``
    pins the deadline at the estimated critical path, ``OLR = 1``
    allows fully serial execution between the pair.  This mode holds
    every pair — shallow or deep — equally tight, which makes it a much
    harsher regime than the paper's; it is provided for robustness
    studies.  Unconnected pairs impose no constraint.
    """
    if params.deadline_mode == "workload":
        total = sum(t.mean_wcet() for t in graph.tasks())
        graph.set_uniform_e2e_deadline(params.olr * total)
        return

    from ..graph.algorithms import TransitiveClosure

    closure = TransitiveClosure(graph)
    mean_wcet = {t.id: t.mean_wcet() for t in graph.tasks()}
    order = graph.topological_order()
    for a1 in graph.input_tasks():
        descendants = closure.descendants(a1)
        # Longest-chain workload from a1 to every descendant (one DP).
        chain: dict[str, float] = {a1: mean_wcet[a1]}
        for tid in order:
            base = chain.get(tid)
            if base is None:
                continue
            for succ in graph.successors(tid):
                cand = base + mean_wcet[succ]
                if cand > chain.get(succ, float("-inf")):
                    chain[succ] = cand
        for a2 in graph.output_tasks():
            if a1 == a2:
                # An isolated task's window is exactly its own workload.
                graph.set_e2e_deadline(a1, a2, mean_wcet[a1])
                continue
            if not closure.reachable(a1, a2):
                continue
            between = descendants & (closure.ancestors(a2) | {a2})
            work = mean_wcet[a1] + sum(mean_wcet[t] for t in between)
            sl = chain[a2]
            graph.set_e2e_deadline(a1, a2, sl + params.olr * (work - sl))


def _attach_messages(
    graph: TaskGraph, params: WorkloadParams, rng: np.random.Generator
) -> None:
    """Draw integer message sizes targeting a mean cost of CCR × c_mean.

    With the paper's one-time-unit-per-item bus, a uniform integer size
    in ``{1, .., 2·CCR·c_mean − 1}`` has the target mean (2 items for
    CCR = 0.1, c_mean = 20).  A CCR of zero produces empty messages.
    """
    max_size = int(round(2.0 * params.mean_message_cost)) - 1
    # Value-only rewrites on existing keys are iteration-safe; writing
    # the raw adjacency dicts skips the per-edge has_edge revalidation
    # of set_message_size (the edges exist by construction).
    succ_d, pred_d = graph._succ, graph._pred
    if max_size < 1:
        for src, out in succ_d.items():
            for dst in out:
                out[dst] = 0.0
                pred_d[dst][src] = 0.0
        return
    integers = rng.integers
    hi_exclusive = max_size + 1
    for src, out in succ_d.items():
        for dst in out:
            size = float(integers(1, hi_exclusive))
            out[dst] = size
            pred_d[dst][src] = size
