"""Dependency-free SVG visualization of graphs and schedules."""

from .svg import gantt_svg, graph_svg

__all__ = ["gantt_svg", "graph_svg"]
