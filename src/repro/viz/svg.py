"""Dependency-free SVG rendering of schedules and task graphs.

Produces standalone SVG documents (plain strings) so results can be
inspected in any browser without matplotlib/graphviz:

* :func:`gantt_svg` — one lane per processor, one rounded box per task,
  with its execution window drawn underneath and deadline misses
  highlighted;
* :func:`graph_svg` — the task graph in layered (level-per-row) layout
  with straight arcs.

Colors follow a small fixed palette keyed by hash so the same task id
renders the same color across charts.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from ..core.assignment import DeadlineAssignment
from ..graph.algorithms import level_assignment
from ..graph.taskgraph import TaskGraph
from ..sched.schedule import Schedule
from ..system.platform import Platform

__all__ = ["gantt_svg", "graph_svg"]

_PALETTE = (
    "#4e79a7", "#f28e2b", "#59a14f", "#b07aa1",
    "#76b7b2", "#edc948", "#9c755f", "#e15759",
)
_MISS = "#d62728"
_WINDOW = "#d0d7de"


def _color(task_id: str) -> str:
    return _PALETTE[hash(task_id) % len(_PALETTE)]


def _doc(width: float, height: float, body: list[str]) -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}" '
        f'font-family="sans-serif" font-size="11">\n'
        + "\n".join(body)
        + "\n</svg>\n"
    )


def gantt_svg(
    schedule: Schedule,
    platform: Platform | None = None,
    assignment: DeadlineAssignment | None = None,
    *,
    width: float = 900.0,
    lane_height: float = 34.0,
) -> str:
    """Render *schedule* as an SVG Gantt chart.

    When *assignment* is given, each task's execution window is drawn
    as a pale underlay so slack and misses are visible at a glance.
    """
    procs = (
        [p.id for p in platform.processors()]
        if platform is not None
        else sorted({e.processor for e in schedule})
    )
    span = max(schedule.makespan, 1e-9)
    if assignment is not None and len(assignment):
        span = max(
            span,
            max(w.absolute_deadline for w in assignment.windows.values()),
        )
    left, top = 70.0, 26.0
    chart_w = width - left - 16.0
    scale = chart_w / span
    height = top + lane_height * max(1, len(procs)) + 30.0

    body: list[str] = [
        f'<text x="{left}" y="14" fill="#555">0</text>',
        f'<text x="{width - 16:.0f}" y="14" text-anchor="end" '
        f'fill="#555">{span:g}</text>',
    ]
    for i, proc in enumerate(procs):
        y = top + i * lane_height
        body.append(
            f'<line x1="{left}" y1="{y + lane_height - 4:.1f}" '
            f'x2="{width - 16:.0f}" y2="{y + lane_height - 4:.1f}" '
            f'stroke="#eee"/>'
        )
        body.append(
            f'<text x="8" y="{y + lane_height / 2 + 4:.1f}" '
            f'fill="#333">{escape(proc)}</text>'
        )
        for entry in schedule.tasks_on(proc):
            x = left + entry.start * scale
            w = max(1.0, (entry.finish - entry.start) * scale)
            if assignment is not None and entry.task_id in assignment:
                win = assignment.window(entry.task_id)
                wx = left + win.arrival * scale
                ww = max(1.0, win.length * scale)
                body.append(
                    f'<rect x="{wx:.1f}" y="{y + lane_height - 10:.1f}" '
                    f'width="{ww:.1f}" height="5" fill="{_WINDOW}"/>'
                )
            fill = _MISS if not entry.meets_deadline else _color(entry.task_id)
            body.append(
                f'<rect x="{x:.1f}" y="{y + 3:.1f}" width="{w:.1f}" '
                f'height="{lane_height - 16:.1f}" rx="3" fill="{fill}">'
                f"<title>{escape(entry.task_id)}: "
                f"[{entry.start:g}, {entry.finish:g}] "
                f"D={entry.absolute_deadline:g}</title></rect>"
            )
            if w > 26:
                body.append(
                    f'<text x="{x + 4:.1f}" y="{y + lane_height / 2:.1f}" '
                    f'fill="#fff">{escape(entry.task_id)}</text>'
                )
    status = "feasible" if schedule.feasible else "INFEASIBLE"
    body.append(
        f'<text x="{left}" y="{height - 8:.1f}" fill="#555">'
        f"makespan {schedule.makespan:g} — {status}</text>"
    )
    return _doc(width, height, body)


def graph_svg(
    graph: TaskGraph,
    *,
    node_width: float = 72.0,
    node_height: float = 30.0,
    h_gap: float = 26.0,
    v_gap: float = 52.0,
) -> str:
    """Render *graph* in layered layout (one row per precedence level)."""
    levels = level_assignment(graph)
    rows: dict[int, list[str]] = {}
    for tid in graph.topological_order():
        rows.setdefault(levels[tid], []).append(tid)
    n_rows = len(rows)
    widest = max((len(v) for v in rows.values()), default=1)

    width = 32.0 + widest * (node_width + h_gap)
    height = 32.0 + n_rows * (node_height + v_gap)

    pos: dict[str, tuple[float, float]] = {}
    for level, tids in rows.items():
        row_w = len(tids) * (node_width + h_gap) - h_gap
        x0 = (width - row_w) / 2.0
        y = 16.0 + level * (node_height + v_gap)
        for i, tid in enumerate(tids):
            pos[tid] = (x0 + i * (node_width + h_gap), y)

    body: list[str] = [
        '<defs><marker id="arrow" viewBox="0 0 8 8" refX="7" refY="4" '
        'markerWidth="6" markerHeight="6" orient="auto">'
        '<path d="M0,0 L8,4 L0,8 z" fill="#888"/></marker></defs>'
    ]
    for src, dst, size in graph.edges():
        (x1, y1), (x2, y2) = pos[src], pos[dst]
        body.append(
            f'<line x1="{x1 + node_width / 2:.1f}" '
            f'y1="{y1 + node_height:.1f}" '
            f'x2="{x2 + node_width / 2:.1f}" y2="{y2:.1f}" '
            f'stroke="#888" marker-end="url(#arrow)">'
            f"<title>{escape(src)} → {escape(dst)} "
            f"({size:g} items)</title></line>"
        )
    for tid, (x, y) in pos.items():
        task = graph.task(tid)
        body.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{node_width}" '
            f'height="{node_height}" rx="5" fill="{_color(tid)}">'
            f"<title>{escape(tid)} c̄={task.mean_wcet():g}</title></rect>"
        )
        body.append(
            f'<text x="{x + node_width / 2:.1f}" '
            f'y="{y + node_height / 2 + 4:.1f}" text-anchor="middle" '
            f'fill="#fff">{escape(tid)}</text>'
        )
    return _doc(width, height, body)
