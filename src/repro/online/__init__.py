"""On-line admission of dynamically arriving applications (§7.2, [13])."""

from .admission import AdmissionController, AdmissionDecision

__all__ = ["AdmissionController", "AdmissionDecision"]
