"""On-line admission of dynamically arriving applications (cf. [13], §7.2).

The paper notes (§7.2) that for systems with on-line scheduling —
"tasks typically arrive dynamically" — the distribution algorithm's
complexity matters, and implication I1 highlights that slicing enables
scheduling work to proceed independently per processor.  This module
provides the corresponding run-time substrate: an admission controller
that receives whole applications (task graphs with an end-to-end
deadline) at arbitrary instants and decides, per application, whether
it can be admitted alongside everything already committed.

Admission pipeline for an application arriving at time ``t``:

1. shift the application's phasings by ``t`` and attach its E-T-E
   deadline (``t + relative_deadline`` for every input–output pair);
2. run the slicing distribution (any metric; ADAPT-G's ``O(n²)`` or
   ADAPT-L's ``O(n³)`` — the §7.2 trade-off);
3. run the analytical infeasibility screens (fast reject);
4. schedule the application with the EDF list scheduler against the
   *residual capacity* — processors stay committed to previously
   admitted work (non-preemptive commitments are never revoked);
5. admit iff every task meets its window; rejected applications leave
   no trace.

The controller never migrates or reorders admitted work: admission is
monotone and every accepted schedule remains exactly as promised —
the hard-real-time contract.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.bounds import find_infeasibility
from ..core.assignment import DeadlineAssignment
from ..core.metrics import AdaptiveParams
from ..core.slicing import distribute_deadlines
from ..errors import SchedulingError
from ..graph.task import Task
from ..graph.taskgraph import TaskGraph
from ..graph.transform import relabel
from ..sched.edf import EdfListScheduler
from ..sched.schedule import Schedule
from ..system.platform import Platform
from ..types import Time

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt."""

    admitted: bool
    app_id: str
    arrival: Time
    reason: str = ""
    response_time: Time = float("nan")

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.admitted


@dataclass
class _Committed:
    schedule: Schedule
    assignment: DeadlineAssignment


class AdmissionController:
    """Admit task-graph applications against residual machine capacity.

    Parameters
    ----------
    platform:
        The machine; its communication model prices inter-processor
        messages of admitted applications.
    metric / estimator / params:
        Deadline-distribution configuration used for every application.
    """

    def __init__(
        self,
        platform: Platform,
        *,
        metric: str = "ADAPT-G",
        estimator: str = "WCET-AVG",
        params: AdaptiveParams | None = None,
    ) -> None:
        self.platform = platform
        self.metric = metric
        self.estimator = estimator
        self.params = params
        self._committed: dict[str, _Committed] = {}
        self._proc_free: dict[str, Time] = {
            p.id: 0.0 for p in platform.processors()
        }
        self._clock: Time = 0.0

    # ------------------------------------------------------------------
    @property
    def clock(self) -> Time:
        """Latest arrival instant seen (admissions must be in order)."""
        return self._clock

    def admitted_ids(self) -> list[str]:
        return list(self._committed)

    def schedule_of(self, app_id: str) -> Schedule:
        try:
            return self._committed[app_id].schedule
        except KeyError:
            raise SchedulingError(f"application {app_id!r} not admitted") from None

    def combined_schedule(self) -> Schedule:
        """All admitted work as one schedule (task ids are namespaced)."""
        out = Schedule(scheduler_name="ADMISSION")
        for committed in self._committed.values():
            out.entries.update(committed.schedule.entries)
        out.feasible = True
        return out

    def utilization_horizon(self) -> Time:
        """Latest committed finish time over all processors."""
        return max(self._proc_free.values(), default=0.0)

    # ------------------------------------------------------------------
    def submit(
        self,
        app_id: str,
        graph: TaskGraph,
        *,
        arrival: Time,
        relative_deadline: Time,
    ) -> AdmissionDecision:
        """Attempt to admit *graph* arriving at *arrival*.

        ``relative_deadline`` is the application's end-to-end deadline
        measured from the arrival instant.  Returns the decision; when
        admitted, the application's placements become permanent
        commitments.
        """
        if app_id in self._committed:
            raise SchedulingError(f"duplicate application id {app_id!r}")
        if arrival < self._clock:
            raise SchedulingError(
                f"application {app_id!r} arrives at {arrival:g}, before "
                f"the controller clock {self._clock:g}"
            )
        if relative_deadline <= 0.0:
            raise SchedulingError("relative deadline must be positive")
        self._clock = arrival

        # 1. Namespace and shift the application onto the global timeline.
        app = relabel(graph, lambda t: f"{app_id}.{t}")
        shifted = TaskGraph()
        for t in app.tasks():
            shifted.add_task(
                Task(
                    id=t.id,
                    wcet=t.wcet,
                    phasing=t.phasing + arrival,
                    resources=t.resources,
                    label=t.label,
                )
            )
        for src, dst, size in app.edges():
            shifted.add_edge(src, dst, size)
        deadline_abs = arrival + relative_deadline
        for src in shifted.input_tasks():
            for dst in shifted.output_tasks():
                shifted.set_e2e_deadline(
                    src, dst, deadline_abs - shifted.task(src).phasing
                )

        # 2. Distribute the deadline.
        assignment = distribute_deadlines(
            shifted,
            self.platform,
            self.metric,
            estimator=self.estimator,
            params=self.params,
            validate=False,
        )
        if assignment.degenerate:
            return AdmissionDecision(
                False, app_id, arrival, reason="degenerate distribution"
            )

        # 3. Fast analytical reject (platform-level necessary conditions).
        witness = find_infeasibility(shifted, self.platform, assignment)
        if witness is not None:
            return AdmissionDecision(
                False, app_id, arrival, reason=str(witness)
            )

        # 4. Schedule against residual capacity: model prior commitments
        # as pseudo-tasks occupying each processor until its free time.
        trial = self._schedule_residual(shifted, assignment)
        if not trial.feasible:
            return AdmissionDecision(
                False, app_id, arrival, reason=trial.failure_reason
            )

        # 5. Commit.
        self._committed[app_id] = _Committed(trial, assignment)
        for entry in trial:
            if entry.finish > self._proc_free[entry.processor]:
                self._proc_free[entry.processor] = entry.finish
        return AdmissionDecision(
            True,
            app_id,
            arrival,
            response_time=trial.makespan - arrival,
        )

    # ------------------------------------------------------------------
    def _schedule_residual(
        self, graph: TaskGraph, assignment: DeadlineAssignment
    ) -> Schedule:
        """EDF-schedule *graph* with processors busy until their free times."""
        scheduler = _ResidualEdf(dict(self._proc_free))
        return scheduler.schedule(graph, self.platform, assignment)


class _ResidualEdf(EdfListScheduler):
    """EDF list scheduler warm-started with per-processor busy times."""

    name = "EDF-RESIDUAL"

    def __init__(self, busy_until: dict[str, Time]) -> None:
        super().__init__(continue_on_miss=False)
        self._busy_until = busy_until

    def _initial_proc_free(self, platform: Platform) -> dict[str, Time]:
        free = super()._initial_proc_free(platform)
        for proc_id, busy in self._busy_until.items():
            if free.get(proc_id, 0.0) < busy:
                free[proc_id] = busy
        return free
