"""HTTP face of the fabric: lease/commit endpoints for remote workers.

Mounted on the :mod:`repro.service` front end (``create_server(...,
fabric=endpoint)``), this turns the coordinator's store directory into
a *served store*: remote workers never see the filesystem — they pull
unit payloads from ``POST /fabric/lease`` and push result records to
``POST /fabric/complete``, and the endpoint appends them to the shared
:class:`~repro.store.TrialStore` on their behalf.

Routes (JSON in/out, errors as ``{"error": ...}`` with 4xx):

==========================  ==========================================
``POST /fabric/lease``      ``{worker, ttl?}`` → ``{unit, finished}``
``POST /fabric/complete``   ``{worker, unit, records}`` → ``{done}``
``POST /fabric/heartbeat``  ``{worker, ttl?}`` → ``{extended}``
``POST /fabric/release``    ``{worker, unit}`` → ``{}``
``GET  /fabric/status``     → queue snapshot (counts, workers, finished)
==========================  ==========================================

Integrity: a completion may only commit records whose keys belong to
the named unit (each unit's key set is fixed at extraction), so a
confused or malicious worker cannot poison unrelated store entries;
values are committed verbatim — content addressing makes a wrong value
under a right key detectable only by recompute, which is why keys are
derived server-side, never trusted from the wire.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..errors import FabricError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .coordinator import FabricCoordinator

__all__ = ["FabricEndpoint"]

#: Bounds on worker-supplied lease TTLs (seconds): long enough for a
#: slow unit between heartbeats, short enough that a dead worker's
#: units come back promptly.
_MIN_TTL, _MAX_TTL = 0.1, 3600.0


class FabricEndpoint:
    """Request handlers for ``/fabric/*`` over one coordinator's sweep."""

    def __init__(
        self, coordinator: "FabricCoordinator", *, metrics: Any = None
    ) -> None:
        self.coordinator = coordinator
        self.queue = coordinator.queue
        self.store = coordinator.store
        self._unit_docs: dict[str, dict[str, Any]] = {}
        self._unit_keys: dict[str, frozenset[str]] = {}
        from .units import unit_to_dict

        for unit in coordinator.units:
            self._unit_docs[unit.unit_id] = unit_to_dict(unit)
            self._unit_keys[unit.unit_id] = frozenset(unit.keys)
        self.metrics = metrics
        if metrics is not None and hasattr(
            metrics, "set_fabric_status_provider"
        ):
            metrics.set_fabric_status_provider(self.queue.snapshot)

    # ------------------------------------------------------------------
    def handle(
        self, method: str, path: str, doc: Any
    ) -> tuple[int, dict[str, Any]]:
        """Dispatch one ``/fabric/*`` request; returns (status, body).

        :class:`FabricError` means a bad request (the HTTP layer maps
        it to 400); unknown routes return 404 here so the front end
        stays route-agnostic.
        """
        if method == "GET" and path == "/fabric/status":
            return 200, self.queue.snapshot().to_dict()
        if method == "POST" and path == "/fabric/lease":
            return self._lease(self._as_doc(doc))
        if method == "POST" and path == "/fabric/complete":
            return self._complete(self._as_doc(doc))
        if method == "POST" and path == "/fabric/heartbeat":
            return self._heartbeat(self._as_doc(doc))
        if method == "POST" and path == "/fabric/release":
            return self._release(self._as_doc(doc))
        return 404, {"error": f"unknown fabric route {method} {path}"}

    # ------------------------------------------------------------------
    @staticmethod
    def _as_doc(doc: Any) -> dict[str, Any]:
        if not isinstance(doc, dict):
            raise FabricError("fabric request body must be a JSON object")
        return doc

    @staticmethod
    def _worker_of(doc: dict[str, Any]) -> str:
        worker = doc.get("worker")
        if not isinstance(worker, str) or not worker:
            raise FabricError("request needs a non-empty 'worker' id")
        return worker

    def _ttl_of(self, doc: dict[str, Any]) -> float:
        ttl = doc.get("ttl", self.coordinator.lease_ttl)
        try:
            ttl = float(ttl)
        except (TypeError, ValueError):
            raise FabricError(f"bad lease ttl {ttl!r}") from None
        return min(max(ttl, _MIN_TTL), _MAX_TTL)

    # ------------------------------------------------------------------
    def _lease(self, doc: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        worker = self._worker_of(doc)
        ttl = self._ttl_of(doc)
        unit_id = self.queue.lease(worker, ttl)
        if unit_id is None:
            return 200, {"unit": None, "finished": self.queue.finished()}
        if self.metrics is not None:
            self.metrics.fabric_leases.inc(worker=worker)
        return 200, {"unit": self._unit_docs[unit_id], "finished": False}

    def _complete(self, doc: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        worker = self._worker_of(doc)
        unit_id = doc.get("unit")
        allowed = self._unit_keys.get(unit_id or "")
        if allowed is None:
            raise FabricError(f"unknown unit {str(unit_id)[:12]!r}...")
        raw = doc.get("records", [])
        if not isinstance(raw, list):
            raise FabricError("'records' must be a list of [key, value]")
        records: list[tuple[str, Any]] = []
        for entry in raw:
            if not (isinstance(entry, (list, tuple)) and len(entry) == 2):
                raise FabricError("'records' must be a list of [key, value]")
            key, value = entry
            if key not in allowed:
                raise FabricError(
                    f"record key {str(key)[:12]!r}... does not belong to "
                    f"unit {str(unit_id)[:12]}..."
                )
            records.append((key, value))
        appended = self.store.put_many(records)
        transition = self.queue.complete(worker, unit_id)
        if self.metrics is not None:
            if transition:
                self.metrics.fabric_completions.inc()
            if appended:
                self.metrics.fabric_records.inc(appended)
        return 200, {
            "done": transition,
            "appended": appended,
            "finished": self.queue.finished(),
        }

    def _heartbeat(self, doc: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        worker = self._worker_of(doc)
        extended = self.queue.heartbeat(worker, self._ttl_of(doc))
        return 200, {"extended": extended}

    def _release(self, doc: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        worker = self._worker_of(doc)
        unit_id = doc.get("unit")
        if unit_id not in self._unit_keys:
            raise FabricError(f"unknown unit {str(unit_id)[:12]!r}...")
        self.queue.release(worker, unit_id)
        return 200, {}
