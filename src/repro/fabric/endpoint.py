"""HTTP face of the fabric: lease/commit endpoints for remote workers.

Mounted on the :mod:`repro.service` front end (``create_server(...,
fabric=endpoint)``), this turns the coordinator's store directory into
a *served store*: remote workers never see the filesystem — they pull
unit payloads from ``POST /fabric/lease`` and push result records to
``POST /fabric/complete``, and the endpoint appends them to the shared
:class:`~repro.store.TrialStore` on their behalf.

Routes (JSON in/out, errors as ``{"error": ...}`` with 4xx):

==========================  ==========================================
``POST /fabric/lease``      ``{worker, ttl?, max?}`` →
                            ``{units, unit, finished}`` — up to ``max``
                            unit payloads per call (batched leasing);
                            ``unit`` carries the first payload for
                            pre-batch clients
``POST /fabric/complete``   ``{worker, units | unit, records}`` →
                            ``{done}`` — one group commit for a whole
                            batch: records append before any done mark
``POST /fabric/heartbeat``  ``{worker, ttl?}`` → ``{extended}``
``POST /fabric/release``    ``{worker, units | unit}`` → ``{}``
``GET  /fabric/status``     → queue snapshot (counts, workers, finished)
==========================  ==========================================

Integrity: a completion may only commit records whose keys belong to
the named unit (each unit's key set is fixed at extraction), so a
confused or malicious worker cannot poison unrelated store entries;
values are committed verbatim — content addressing makes a wrong value
under a right key detectable only by recompute, which is why keys are
derived server-side, never trusted from the wire.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..errors import FabricError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .coordinator import FabricCoordinator

__all__ = ["FabricEndpoint"]

#: Bounds on worker-supplied lease TTLs (seconds): long enough for a
#: slow unit between heartbeats, short enough that a dead worker's
#: units come back promptly.
_MIN_TTL, _MAX_TTL = 0.1, 3600.0

#: Cap on units per lease reply — bounds reply size and keeps one
#: worker from draining a whole sweep in a single call.
_MAX_BATCH = 256


class FabricEndpoint:
    """Request handlers for ``/fabric/*`` over one coordinator's sweep."""

    def __init__(
        self, coordinator: "FabricCoordinator", *, metrics: Any = None
    ) -> None:
        self.coordinator = coordinator
        self.queue = coordinator.queue
        self.store = coordinator.store
        self._unit_docs: dict[str, dict[str, Any]] = {}
        self._unit_keys: dict[str, frozenset[str]] = {}
        from .units import unit_to_dict

        for unit in coordinator.units:
            self._unit_docs[unit.unit_id] = unit_to_dict(unit)
            self._unit_keys[unit.unit_id] = frozenset(unit.keys)
        self.metrics = metrics
        if metrics is not None and hasattr(
            metrics, "set_fabric_status_provider"
        ):
            metrics.set_fabric_status_provider(self.queue.snapshot)

    # ------------------------------------------------------------------
    def handle(
        self, method: str, path: str, doc: Any
    ) -> tuple[int, dict[str, Any]]:
        """Dispatch one ``/fabric/*`` request; returns (status, body).

        :class:`FabricError` means a bad request (the HTTP layer maps
        it to 400); unknown routes return 404 here so the front end
        stays route-agnostic.
        """
        if method == "GET" and path == "/fabric/status":
            return 200, self.queue.snapshot().to_dict()
        if method == "POST" and path == "/fabric/lease":
            return self._lease(self._as_doc(doc))
        if method == "POST" and path == "/fabric/complete":
            return self._complete(self._as_doc(doc))
        if method == "POST" and path == "/fabric/heartbeat":
            return self._heartbeat(self._as_doc(doc))
        if method == "POST" and path == "/fabric/release":
            return self._release(self._as_doc(doc))
        return 404, {"error": f"unknown fabric route {method} {path}"}

    # ------------------------------------------------------------------
    @staticmethod
    def _as_doc(doc: Any) -> dict[str, Any]:
        if not isinstance(doc, dict):
            raise FabricError("fabric request body must be a JSON object")
        return doc

    @staticmethod
    def _worker_of(doc: dict[str, Any]) -> str:
        worker = doc.get("worker")
        if not isinstance(worker, str) or not worker:
            raise FabricError("request needs a non-empty 'worker' id")
        return worker

    def _ttl_of(self, doc: dict[str, Any]) -> float:
        ttl = doc.get("ttl", self.coordinator.lease_ttl)
        try:
            ttl = float(ttl)
        except (TypeError, ValueError):
            raise FabricError(f"bad lease ttl {ttl!r}") from None
        return min(max(ttl, _MIN_TTL), _MAX_TTL)

    def _units_of(self, doc: dict[str, Any]) -> list[str]:
        """The unit ids a complete/release names (batch or legacy form)."""
        if "units" in doc:
            unit_ids = doc["units"]
            if not isinstance(unit_ids, list) or not all(
                isinstance(uid, str) for uid in unit_ids
            ):
                raise FabricError("'units' must be a list of unit ids")
        else:
            unit_ids = [doc.get("unit")]
        for unit_id in unit_ids:
            if unit_id not in self._unit_keys:
                raise FabricError(f"unknown unit {str(unit_id)[:12]!r}...")
        return unit_ids

    # ------------------------------------------------------------------
    def _lease(self, doc: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        worker = self._worker_of(doc)
        ttl = self._ttl_of(doc)
        k = doc.get("max", 1)
        if not isinstance(k, int) or k < 1:
            raise FabricError(f"bad lease batch size {k!r}")
        unit_ids = self.queue.lease_batch(worker, min(k, _MAX_BATCH), ttl)
        if not unit_ids:
            return 200, {
                "units": [],
                "unit": None,
                "finished": self.queue.finished(),
            }
        if self.metrics is not None:
            self.metrics.fabric_leases.inc(len(unit_ids), worker=worker)
        docs = [self._unit_docs[uid] for uid in unit_ids]
        # "unit" duplicates the first payload for pre-batch clients.
        return 200, {"units": docs, "unit": docs[0], "finished": False}

    def _complete(self, doc: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        worker = self._worker_of(doc)
        unit_ids = self._units_of(doc)
        allowed = frozenset().union(
            *(self._unit_keys[uid] for uid in unit_ids)
        )
        raw = doc.get("records", [])
        if not isinstance(raw, list):
            raise FabricError("'records' must be a list of [key, value]")
        records: list[tuple[str, Any]] = []
        for entry in raw:
            if not (isinstance(entry, (list, tuple)) and len(entry) == 2):
                raise FabricError("'records' must be a list of [key, value]")
            key, value = entry
            if key not in allowed:
                raise FabricError(
                    f"record key {str(key)[:12]!r}... does not belong to "
                    "the completed unit(s)"
                )
            records.append((key, value))
        # Group commit: the batch's records land before any done mark.
        appended = self.store.put_many(records)
        transitions = self.queue.complete_batch(worker, unit_ids)
        if self.metrics is not None:
            if transitions:
                self.metrics.fabric_completions.inc(transitions)
            if appended:
                self.metrics.fabric_records.inc(appended)
        # Legacy single-"unit" clients read "done" as a bool; batch
        # clients get the transition count.
        done: int | bool = transitions if "units" in doc else bool(transitions)
        return 200, {
            "done": done,
            "appended": appended,
            "finished": self.queue.finished(),
        }

    def _heartbeat(self, doc: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        worker = self._worker_of(doc)
        extended = self.queue.heartbeat(worker, self._ttl_of(doc))
        return 200, {"extended": extended}

    def _release(self, doc: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        worker = self._worker_of(doc)
        for unit_id in self._units_of(doc):
            self.queue.release(worker, unit_id)
        return 200, {}
