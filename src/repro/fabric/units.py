"""Work units of a distributed sweep (extraction, identity, compute).

The fabric's unit of distribution is exactly the paired engine's unit
of parallelism: one ``(x_index, seed-chunk)`` block covering *every*
series of a sweep point.  A :class:`WorkUnit` carries the concrete
:class:`~repro.experiments.spec.TrialConfig` of each series plus the
chunk's seed block, so a worker needs no access to the experiment
spec's config factory — units are plain data, picklable and
JSON-serializable (the HTTP transport ships them as documents).

Identity is content-addressed all the way down: every series of a unit
has its :func:`~repro.experiments.runner.cell_chunk_key` (the store
address of its partial result), the unit id is a digest over those
keys, and the sweep id is a digest over the ordered unit ids.  Two
coordinators extracting the same experiment therefore derive the same
unit ids and can share one queue; a worker that recomputes an
already-stored unit appends nothing new (the store skips present
keys); and a finished sweep's merge is simply a warm
``run_experiment(cache=store)`` — bit-identical to a single-process
run by the store's own contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..errors import ExperimentError, FabricError
from ..experiments.runner import (
    _cell_seeds,
    cell_chunk_key,
    run_paired_cells,
)
from ..experiments.spec import ExperimentSpec, TrialConfig
from ..store import TrialStore, store_key

__all__ = [
    "WorkUnit",
    "extract_units",
    "sweep_id",
    "unit_to_dict",
    "unit_from_dict",
    "unit_is_stored",
    "compute_unit",
]


@dataclass(frozen=True)
class WorkUnit:
    """One distributable block: every series of one (x, seed-chunk).

    ``keys[i]`` is the store address of the partial result of
    ``cells[i]`` over ``seeds`` — committing those records *is*
    completing the unit, as far as the merge is concerned.
    """

    unit_id: str
    x_index: int
    cells: tuple[tuple[int, TrialConfig], ...]
    seeds: tuple[int, ...]
    keys: tuple[str, ...]


def _unit_id(keys: Sequence[str]) -> str:
    return store_key("fabric-unit", list(keys))


def extract_units(
    spec: ExperimentSpec,
    *,
    trials: int,
    seed: int,
    chunk_size: int = 32,
) -> list[WorkUnit]:
    """Shard *spec* into the paired engine's work units, in merge order.

    The enumeration (x-major, seed-chunk-minor) matches
    ``_run_paired_units`` exactly, so a merge that restores these units
    from the store walks the same order as an uncached run.
    """
    if trials < 1:
        raise FabricError("trials must be at least 1")
    if chunk_size < 1:
        raise FabricError(f"chunk_size must be at least 1, got {chunk_size}")
    units: list[WorkUnit] = []
    for xi, _x, group in spec.cells_by_x():
        cells = tuple((si, config) for si, _label, config in group)
        seeds = _cell_seeds(seed, xi, trials)
        for lo in range(0, trials, chunk_size):
            chunk = tuple(seeds[lo : lo + chunk_size])
            keys = tuple(
                cell_chunk_key(config, chunk) for _si, config in cells
            )
            units.append(
                WorkUnit(
                    unit_id=_unit_id(keys),
                    x_index=xi,
                    cells=cells,
                    seeds=chunk,
                    keys=keys,
                )
            )
    return units


def sweep_id(
    spec_name: str,
    units: Sequence[WorkUnit],
    *,
    trials: int,
    seed: int,
    chunk_size: int,
) -> str:
    """Content address of one sweep: its ordered unit ids plus shape.

    Everything that determines the merge is covered (units already
    digest the configs and seed blocks), so equal sweep ids mean
    interchangeable manifests — the resume check the work queue makes.
    """
    return store_key(
        "fabric-sweep",
        {
            "name": spec_name,
            "trials": trials,
            "seed": seed,
            "chunk_size": chunk_size,
            "units": [u.unit_id for u in units],
        },
    )


def unit_to_dict(unit: WorkUnit) -> dict[str, Any]:
    """JSON document of one unit (the wire/disk format)."""
    return {
        "unit": unit.unit_id,
        "x_index": unit.x_index,
        "cells": [[si, config.to_dict()] for si, config in unit.cells],
        "seeds": list(unit.seeds),
    }


def unit_from_dict(doc: dict[str, Any]) -> WorkUnit:
    """Rebuild a unit from its document, verifying its content address.

    The chunk keys are *recomputed* from the decoded configs and seeds
    and the unit id is recomputed from those keys; a mismatch with the
    document's claimed id means the payload was corrupted or produced
    by incompatible code (a different :data:`~repro.store.CODE_SALT`),
    and computing it would commit records under wrong addresses.
    """
    try:
        cells = tuple(
            (int(si), TrialConfig.from_dict(config_doc))
            for si, config_doc in doc["cells"]
        )
        seeds = tuple(int(s) for s in doc["seeds"])
        claimed = doc["unit"]
        x_index = int(doc["x_index"])
    except (KeyError, TypeError, ValueError, ExperimentError) as exc:
        raise FabricError(f"malformed work-unit document: {exc}") from exc
    keys = tuple(cell_chunk_key(config, seeds) for _si, config in cells)
    unit_id = _unit_id(keys)
    if unit_id != claimed:
        raise FabricError(
            f"work-unit document id mismatch: claims {claimed[:12]}..., "
            f"content addresses to {unit_id[:12]}... (corrupt payload or "
            "incompatible code salt)"
        )
    return WorkUnit(
        unit_id=unit_id, x_index=x_index, cells=cells, seeds=seeds, keys=keys
    )


def unit_is_stored(store: TrialStore, unit: WorkUnit) -> bool:
    """True when every series' partial of *unit* is already in *store*."""
    return all(key in store for key in unit.keys)


def compute_unit(
    unit: WorkUnit,
    use_kernel: bool | None = None,
    use_vec: bool | None = None,
) -> list[tuple[str, dict[str, Any]]]:
    """Judge one unit; returns its ``(store key, record)`` pairs.

    Exactly the paired engine's arithmetic
    (:func:`~repro.experiments.runner.run_paired_cells` on the same
    cells and seed block), so the committed records are the ones a
    single-process run would have produced.  ``use_kernel``/``use_vec``
    pin the fast-path tiers; the defaults defer to the worker's
    ``REPRO_KERNEL``/``REPRO_VEC`` environment — either way the records
    are bit-identical, a unit is free to be judged by a vectorized
    worker and merged next to scalar ones.
    """
    partials = run_paired_cells(
        list(unit.cells), list(unit.seeds), use_kernel, use_vec
    )
    return [
        (unit.keys[i], cell.to_dict())
        for i, (_si, cell) in enumerate(partials)
    ]
