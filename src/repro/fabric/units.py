"""Work units of a distributed sweep (extraction, identity, compute).

The fabric's unit of distribution is exactly the paired engine's unit
of parallelism: one ``(x_index, seed-chunk)`` block covering *every*
series of a sweep point.  A :class:`WorkUnit` carries the concrete
:class:`~repro.experiments.spec.TrialConfig` of each series plus the
chunk's seed block, so a worker needs no access to the experiment
spec's config factory — units are plain data, picklable and
JSON-serializable (the HTTP transport ships them as documents).

Identity is content-addressed all the way down: every series of a unit
has its :func:`~repro.experiments.runner.cell_chunk_key` (the store
address of its partial result), the unit id is a digest over those
keys, and the sweep id is a digest over the ordered unit ids.  Two
coordinators extracting the same experiment therefore derive the same
unit ids and can share one queue; a worker that recomputes an
already-stored unit appends nothing new (the store skips present
keys); and a finished sweep's merge is simply a warm
``run_experiment(cache=store)`` — bit-identical to a single-process
run by the store's own contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..errors import ExperimentError, FabricError
from ..experiments.context import TrialContext
from ..experiments.runner import (
    _cell_seeds,
    _CellAccumulator,
    cell_chunk_key,
    run_paired_cells,
)
from ..experiments.spec import ExperimentSpec, TrialConfig
from ..kernel.vec import (
    VEC_MIN_LANES,
    batch_supported,
    vec_available,
    vec_enabled,
    vec_mode,
)
from ..store import TrialStore, store_key

__all__ = [
    "WorkUnit",
    "auto_chunk_size",
    "extract_units",
    "sweep_id",
    "unit_to_dict",
    "unit_from_dict",
    "unit_is_stored",
    "compute_unit",
    "compute_units",
]


@dataclass(frozen=True)
class WorkUnit:
    """One distributable block: every series of one (x, seed-chunk).

    ``keys[i]`` is the store address of the partial result of
    ``cells[i]`` over ``seeds`` — committing those records *is*
    completing the unit, as far as the merge is concerned.
    """

    unit_id: str
    x_index: int
    cells: tuple[tuple[int, TrialConfig], ...]
    seeds: tuple[int, ...]
    keys: tuple[str, ...]


def _unit_id(keys: Sequence[str]) -> str:
    return store_key("fabric-unit", list(keys))


def auto_chunk_size(trials: int) -> int:
    """Vec-aware default seed-chunk width for one work unit.

    A unit is both the granule of distribution *and* the seed batch the
    vectorized kernel gets to fill with lanes, so sizing it too small
    (the historical ``chunk_size=2`` crumbs) starves the batch path and
    multiplies per-unit protocol overhead.  With the vec tier able to
    engage (mode not ``off``, NumPy importable) a unit gets up to 64
    seeds — comfortably past :data:`~repro.kernel.vec.VEC_MIN_LANES`
    with amortization headroom but still fine-grained enough to steal;
    otherwise 32, the paired engine's classic chunk.  Never more than
    *trials* (a chunk cannot outgrow its cell).
    """
    if trials < 1:
        raise FabricError("trials must be at least 1")
    width = 64 if (vec_enabled() and vec_available()) else 32
    return min(trials, width)


def extract_units(
    spec: ExperimentSpec,
    *,
    trials: int,
    seed: int,
    chunk_size: int = 32,
) -> list[WorkUnit]:
    """Shard *spec* into the paired engine's work units, in merge order.

    The enumeration (x-major, seed-chunk-minor) matches
    ``_run_paired_units`` exactly, so a merge that restores these units
    from the store walks the same order as an uncached run.
    """
    if trials < 1:
        raise FabricError("trials must be at least 1")
    if chunk_size < 1:
        raise FabricError(f"chunk_size must be at least 1, got {chunk_size}")
    units: list[WorkUnit] = []
    for xi, _x, group in spec.cells_by_x():
        cells = tuple((si, config) for si, _label, config in group)
        seeds = _cell_seeds(seed, xi, trials)
        for lo in range(0, trials, chunk_size):
            chunk = tuple(seeds[lo : lo + chunk_size])
            keys = tuple(
                cell_chunk_key(config, chunk) for _si, config in cells
            )
            units.append(
                WorkUnit(
                    unit_id=_unit_id(keys),
                    x_index=xi,
                    cells=cells,
                    seeds=chunk,
                    keys=keys,
                )
            )
    return units


def sweep_id(
    spec_name: str,
    units: Sequence[WorkUnit],
    *,
    trials: int,
    seed: int,
    chunk_size: int,
) -> str:
    """Content address of one sweep: its ordered unit ids plus shape.

    Everything that determines the merge is covered (units already
    digest the configs and seed blocks), so equal sweep ids mean
    interchangeable manifests — the resume check the work queue makes.
    """
    return store_key(
        "fabric-sweep",
        {
            "name": spec_name,
            "trials": trials,
            "seed": seed,
            "chunk_size": chunk_size,
            "units": [u.unit_id for u in units],
        },
    )


def unit_to_dict(unit: WorkUnit) -> dict[str, Any]:
    """JSON document of one unit (the wire/disk format)."""
    return {
        "unit": unit.unit_id,
        "x_index": unit.x_index,
        "cells": [[si, config.to_dict()] for si, config in unit.cells],
        "seeds": list(unit.seeds),
    }


def unit_from_dict(doc: dict[str, Any]) -> WorkUnit:
    """Rebuild a unit from its document, verifying its content address.

    The chunk keys are *recomputed* from the decoded configs and seeds
    and the unit id is recomputed from those keys; a mismatch with the
    document's claimed id means the payload was corrupted or produced
    by incompatible code (a different :data:`~repro.store.CODE_SALT`),
    and computing it would commit records under wrong addresses.
    """
    try:
        cells = tuple(
            (int(si), TrialConfig.from_dict(config_doc))
            for si, config_doc in doc["cells"]
        )
        seeds = tuple(int(s) for s in doc["seeds"])
        claimed = doc["unit"]
        x_index = int(doc["x_index"])
    except (KeyError, TypeError, ValueError, ExperimentError) as exc:
        raise FabricError(f"malformed work-unit document: {exc}") from exc
    keys = tuple(cell_chunk_key(config, seeds) for _si, config in cells)
    unit_id = _unit_id(keys)
    if unit_id != claimed:
        raise FabricError(
            f"work-unit document id mismatch: claims {claimed[:12]}..., "
            f"content addresses to {unit_id[:12]}... (corrupt payload or "
            "incompatible code salt)"
        )
    return WorkUnit(
        unit_id=unit_id, x_index=x_index, cells=cells, seeds=seeds, keys=keys
    )


def unit_is_stored(store: TrialStore, unit: WorkUnit) -> bool:
    """True when every series' partial of *unit* is already in *store*."""
    return all(key in store for key in unit.keys)


def compute_unit(
    unit: WorkUnit,
    use_kernel: bool | None = None,
    use_vec: bool | None = None,
) -> list[tuple[str, dict[str, Any]]]:
    """Judge one unit; returns its ``(store key, record)`` pairs.

    Exactly the paired engine's arithmetic
    (:func:`~repro.experiments.runner.run_paired_cells` on the same
    cells and seed block), so the committed records are the ones a
    single-process run would have produced.  ``use_kernel``/``use_vec``
    pin the fast-path tiers; the defaults defer to the worker's
    ``REPRO_KERNEL``/``REPRO_VEC`` environment — either way the records
    are bit-identical, a unit is free to be judged by a vectorized
    worker and merged next to scalar ones.
    """
    partials = run_paired_cells(
        list(unit.cells), list(unit.seeds), use_kernel, use_vec
    )
    return [
        (unit.keys[i], cell.to_dict())
        for i, (_si, cell) in enumerate(partials)
    ]


def compute_units(
    units: Sequence[WorkUnit],
    use_kernel: bool | None = None,
    use_vec: bool | None = None,
) -> list[tuple[str, dict[str, Any]]]:
    """Judge a batch of units; returns all their ``(key, record)`` pairs.

    Runs of consecutive units that share one cell tuple (seed chunks of
    the same sweep point — exactly what batched leasing hands out,
    since units are enumerated x-major) are coalesced into a single
    vectorized seed batch: one :func:`~repro.kernel.vec.paired_outcomes`
    array pass covers every lane of every unit in the run, and each
    unit's records are then aggregated from its own lanes through the
    shared :class:`~repro.experiments.runner._CellAccumulator`.  Lanes
    are computed independently in the batch driver and the aggregation
    is the very code :func:`run_paired_cells` uses, so the records are
    bit-identical to computing each unit alone — batching changes the
    protocol cost, never the bytes.  Groups too narrow for the vec tier
    (or with it unavailable/off) fall back to per-unit
    :func:`compute_unit`.
    """
    pinned = use_vec is True or vec_mode() == "on"
    use_v = use_vec if use_vec is not None else vec_enabled()
    if use_kernel is False:
        use_v = False
    min_lanes = 2 if pinned else VEC_MIN_LANES
    results: list[tuple[str, dict[str, Any]]] = []
    i = 0
    while i < len(units):
        group = [units[i]]
        while (
            i + len(group) < len(units)
            and units[i + len(group)].cells == group[0].cells
        ):
            group.append(units[i + len(group)])
        i += len(group)
        cells = list(group[0].cells)
        lanes = sum(len(u.seeds) for u in group)
        if (
            len(group) > 1
            and use_v
            and vec_available()
            and lanes >= min_lanes
            and len({config.workload for _si, config in cells}) == 1
            and any(batch_supported(config) for _si, config in cells)
        ):
            from ..kernel.vec import paired_outcomes

            seeds = [s for u in group for s in u.seeds]
            contexts = TrialContext.from_seeds(cells[0][1].workload, seeds)
            outcomes = paired_outcomes(cells, seeds, contexts, use_kernel)
            offset = 0
            for unit in group:
                n = len(unit.seeds)
                accs = {si: _CellAccumulator() for si, _ in cells}
                for sp in range(offset, offset + n):
                    for si, _config in cells:
                        accs[si].add(outcomes[(si, sp)])
                offset += n
                results.extend(
                    (unit.keys[j], accs[si].result(n).to_dict())
                    for j, (si, _config) in enumerate(cells)
                )
        else:
            for unit in group:
                results.extend(compute_unit(unit, use_kernel, use_vec))
    return results
