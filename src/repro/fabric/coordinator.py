"""The sweep coordinator: shard, fan out, survive crashes, merge.

:func:`run_sweep` is the one-call form — shard an experiment into
units, run them on N local worker processes against one shared store,
and merge the committed partials back into a normal
:class:`~repro.experiments.runner.ExperimentResult`:

* **bit-identity** — the merge is a warm
  ``run_experiment(cache=store)``: with every unit's records in the
  store, it restores the exact aggregates a single-process run would
  have computed and merges them in the same order, so the result is
  bit-identical at any worker count (the store tier's existing
  contract, extended across hosts);
* **crash recovery** — a worker that dies holding leases stops
  heartbeating; survivors steal the expired leases.  If *every*
  worker dies (or ``workers=0``), the coordinator finishes the
  remaining units inline, so ``run_sweep`` always terminates with a
  complete result;
* **resume** — the sweep's queue directory is keyed by the sweep's
  content address inside the store directory; a re-run finds done
  units done (and pre-marks units whose records already sit in the
  store, e.g. from an overlapping earlier sweep) and computes only the
  remainder.

:class:`FabricCoordinator` is the composable form the CLI's ``--serve``
mode uses: it exposes the queue/units/store so an HTTP endpoint
(:class:`repro.fabric.endpoint.FabricEndpoint`) can hand leases to
remote workers while local workers (if any) drain the same queue.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, MutableMapping

from ..errors import FabricError
from ..experiments.runner import ExperimentResult, run_experiment
from ..experiments.spec import ExperimentSpec
from ..store import TrialStore
from .queue import QueueSnapshot, WorkQueue
from .transport import LocalTransport, write_units_file
from .units import auto_chunk_size, extract_units, sweep_id, unit_is_stored
from .worker import DEFAULT_BATCH, local_worker_entry, worker_loop

__all__ = ["FabricCoordinator", "SweepReport", "SweepOutcome", "run_sweep"]


@dataclass(frozen=True)
class SweepReport:
    """What one sweep execution did (the operator-facing summary)."""

    sweep: str
    fabric_root: str
    units: int
    prestored_units: int
    leases: int
    completions: int
    reissues: int
    workers_spawned: int
    elapsed_seconds: float
    #: Wall-clock split of this run, e.g. ``{"shard": ..., "execute":
    #: ..., "merge": ...}`` from :func:`run_sweep`, optionally joined by
    #: the inline worker's ``lease``/``compute``/``commit`` seconds.
    phase_seconds: Mapping[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        phases = ""
        if self.phase_seconds:
            split = ", ".join(
                f"{name} {secs:.2f}s"
                for name, secs in self.phase_seconds.items()
            )
            phases = f" [{split}]"
        return (
            f"fabric: {self.units} units ({self.prestored_units} already "
            f"stored), {self.completions} completed over {self.leases} "
            f"leases ({self.reissues} re-issued), "
            f"{self.workers_spawned} local worker(s), "
            f"{self.elapsed_seconds:.2f}s{phases}; "
            f"state in {self.fabric_root}"
        )


@dataclass(frozen=True)
class SweepOutcome:
    """Result + execution report of one :func:`run_sweep` call."""

    result: ExperimentResult
    report: SweepReport


class FabricCoordinator:
    """Owns one sweep's units, queue, and merge.

    Parameters mirror :func:`~repro.experiments.runner.run_experiment`
    where they overlap (``trials``/``seed``/``chunk_size`` shape the
    very same units; ``chunk_size=None`` — the default — auto-sizes
    units to fill the vec tier's batch lanes, see
    :func:`~repro.fabric.units.auto_chunk_size`), plus the fabric
    knobs: ``lease_ttl`` is how long a silent worker keeps its units
    before they are stolen, ``batch`` how many units a worker leases
    and group-commits per protocol round trip.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        *,
        trials: int = 1024,
        seed: int = 2026,
        chunk_size: int | None = None,
        store: TrialStore | str | Path,
        fabric_root: str | Path | None = None,
        lease_ttl: float = 30.0,
        batch: int = DEFAULT_BATCH,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if lease_ttl <= 0:
            raise FabricError(f"lease_ttl must be positive, got {lease_ttl}")
        if batch < 1:
            raise FabricError(f"batch must be >= 1, got {batch}")
        if chunk_size is None:
            chunk_size = auto_chunk_size(trials)
        self.spec = spec
        self.trials = trials
        self.seed = seed
        self.chunk_size = chunk_size
        self.lease_ttl = lease_ttl
        self.batch = batch
        self._owns_store = not isinstance(store, TrialStore)
        self.store = store if isinstance(store, TrialStore) else TrialStore(store)
        self.units = extract_units(
            spec, trials=trials, seed=seed, chunk_size=chunk_size
        )
        self.sweep = sweep_id(
            spec.name,
            self.units,
            trials=trials,
            seed=seed,
            chunk_size=chunk_size,
        )
        self.root = (
            Path(fabric_root)
            if fabric_root is not None
            else self.store.root / "fabric" / self.sweep[:12]
        )
        self.root.mkdir(parents=True, exist_ok=True)
        write_units_file(self.root, self.sweep, self.units)
        prestored = [
            u.unit_id for u in self.units if unit_is_stored(self.store, u)
        ]
        self.prestored = len(prestored)
        self.queue = WorkQueue.create(
            self.root,
            self.sweep,
            [u.unit_id for u in self.units],
            done=prestored,
            clock=clock,
        )
        self.workers_spawned = 0
        # Resumed manifests carry lifetime counters; the report shows
        # this run's activity as deltas against the resume point.
        self._base_snapshot = self.queue.snapshot()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def spawn_workers(self, n: int) -> list[multiprocessing.Process]:
        """Start *n* local worker processes against this sweep's queue.

        Spawn (not fork): workers import :mod:`repro` fresh and receive
        only paths and floats, so the coordinator's open file handles,
        locks, and threads never leak into them.
        """
        ctx = multiprocessing.get_context("spawn")
        procs = []
        for i in range(n):
            proc = ctx.Process(
                target=local_worker_entry,
                args=(
                    str(self.store.root),
                    str(self.root),
                    f"local-{os.getpid()}-{i}",
                    self.lease_ttl,
                    0.2,
                    self.batch,
                ),
                daemon=True,
                name=f"repro-fabric-worker-{i}",
            )
            proc.start()
            procs.append(proc)
        self.workers_spawned += n
        return procs

    def run_inline(
        self,
        *,
        poll: float = 0.2,
        worker: str | None = None,
        stats: MutableMapping[str, float] | None = None,
    ) -> int:
        """Drain the queue in this process (the worker-of-last-resort).

        ``stats`` is handed through to the worker loop — the fabric
        bench uses it to split the inline leg's wall clock into
        lease/compute/commit seconds.
        """
        transport = LocalTransport(self.store, self.root)
        return worker_loop(
            transport,
            worker or f"coordinator-{os.getpid()}",
            lease_ttl=self.lease_ttl,
            poll=poll,
            batch=self.batch,
            stats=stats,
        )

    def execute(
        self,
        *,
        workers: int | None = None,
        poll: float = 0.2,
        on_workers: Callable[[list[int]], None] | None = None,
        inline_fallback: bool = True,
    ) -> None:
        """Run until every unit is done.

        ``workers`` local processes are spawned (default: CPU count,
        clamped to the number of units still outstanding; 0 computes
        inline only).  ``on_workers`` receives their PIDs — the chaos
        hook the kill tests use.  With ``inline_fallback`` (default)
        the coordinator finishes remaining units itself once no local
        worker is left alive; ``--serve``-only coordinators pass
        ``False`` to wait for remote workers instead.
        """
        snapshot = self.queue.snapshot()
        if snapshot.finished:
            return
        outstanding = snapshot.total - snapshot.done
        n = workers if workers is not None else (os.cpu_count() or 1)
        n = min(n, outstanding)
        procs = self.spawn_workers(n) if n > 0 else []
        if on_workers is not None:
            on_workers([p.pid for p in procs if p.pid is not None])
        try:
            while not self.queue.finished():
                if not any(p.is_alive() for p in procs):
                    if inline_fallback:
                        self.run_inline(poll=poll)
                    else:
                        time.sleep(poll)
                else:
                    time.sleep(poll)
        finally:
            deadline = time.monotonic() + max(5.0, 2.0 * self.lease_ttl)
            for proc in procs:
                proc.join(timeout=max(0.1, deadline - time.monotonic()))
            for proc in procs:
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Merge / reporting
    # ------------------------------------------------------------------
    def merge(self) -> ExperimentResult:
        """Fold the store's partials into a normal experiment result.

        A warm single-process ``run_experiment`` over the shared store:
        every chunk restores from disk and merges in canonical order,
        so the result is bit-identical to an uncached single-process
        run.  (Were any chunk somehow missing, it would be computed
        here rather than fail — the merge is self-healing.)
        """
        return run_experiment(
            self.spec,
            trials=self.trials,
            seed=self.seed,
            jobs=1,
            chunk_size=self.chunk_size,
            engine="paired",
            cache=self.store,
        )

    def report(
        self,
        elapsed_seconds: float = 0.0,
        phase_seconds: Mapping[str, float] | None = None,
    ) -> SweepReport:
        snapshot: QueueSnapshot = self.queue.snapshot()
        base = self._base_snapshot
        return SweepReport(
            sweep=self.sweep,
            fabric_root=str(self.root),
            units=snapshot.total,
            prestored_units=base.done,
            leases=snapshot.leases - base.leases,
            completions=snapshot.completions - base.completions,
            reissues=snapshot.reissues - base.reissues,
            workers_spawned=self.workers_spawned,
            elapsed_seconds=elapsed_seconds,
            phase_seconds=dict(phase_seconds or {}),
        )

    def endpoint(self, metrics: Any = None):
        """A ``/fabric/*`` HTTP endpoint over this sweep (served store)."""
        from .endpoint import FabricEndpoint

        return FabricEndpoint(self, metrics=metrics)

    def close(self) -> None:
        if self._owns_store:
            self.store.close()


def run_sweep(
    spec: ExperimentSpec,
    *,
    trials: int = 1024,
    seed: int = 2026,
    workers: int | None = None,
    chunk_size: int | None = None,
    store: TrialStore | str | Path,
    fabric_root: str | Path | None = None,
    lease_ttl: float = 30.0,
    batch: int = DEFAULT_BATCH,
    poll: float = 0.2,
    on_workers: Callable[[list[int]], None] | None = None,
) -> SweepOutcome:
    """Shard *spec*, execute on *workers* local processes, merge.

    The distributed counterpart of
    :func:`~repro.experiments.runner.run_experiment`: same result, bit
    for bit, any worker count, and it survives killed workers and
    resumes partial sweeps (see :class:`FabricCoordinator`).  The
    report carries a shard/execute/merge wall-clock split in
    ``phase_seconds``.
    """
    start = time.perf_counter()
    coordinator = FabricCoordinator(
        spec,
        trials=trials,
        seed=seed,
        chunk_size=chunk_size,
        store=store,
        fabric_root=fabric_root,
        lease_ttl=lease_ttl,
        batch=batch,
    )
    shard_done = time.perf_counter()
    try:
        coordinator.execute(workers=workers, poll=poll, on_workers=on_workers)
        execute_done = time.perf_counter()
        result = coordinator.merge()
        merge_done = time.perf_counter()
        report = coordinator.report(
            merge_done - start,
            phase_seconds={
                "shard": shard_done - start,
                "execute": execute_done - shard_done,
                "merge": merge_done - execute_done,
            },
        )
    finally:
        coordinator.close()
    return SweepOutcome(result=result, report=report)
