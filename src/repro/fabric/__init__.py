"""Distributed sweep fabric: coordinator/worker execution over the store.

The experiment grid (metric × estimator × platform × CCR × load) is
embarrassingly parallel in content-addressed ``(cell, seed-chunk)``
units; this package turns those units into a durable work queue and
fans them out — across processes on one host (``repro sweep --workers
N``) or across hosts over HTTP (``repro sweep --serve`` + ``repro
sweep --connect URL``) — with lease/heartbeat crash recovery, work
stealing, resumable manifests, and a merge that is bit-identical to a
single-process :func:`~repro.experiments.runner.run_experiment`.

Layering: :mod:`.units` (what to compute), :mod:`.queue` (who computes
it, durably), :mod:`.transport`/:mod:`.endpoint` (how workers reach
the queue and the store), :mod:`.worker` (the drain loop),
:mod:`.coordinator` (shard → execute → merge).
"""

from .coordinator import (
    FabricCoordinator,
    SweepOutcome,
    SweepReport,
    run_sweep,
)
from .endpoint import FabricEndpoint
from .queue import QueueSnapshot, WorkQueue
from .transport import HTTPTransport, LocalTransport
from .units import (
    WorkUnit,
    auto_chunk_size,
    compute_unit,
    compute_units,
    extract_units,
    sweep_id,
    unit_from_dict,
    unit_is_stored,
    unit_to_dict,
)
from .worker import DEFAULT_BATCH, worker_loop

__all__ = [
    "run_sweep",
    "SweepOutcome",
    "SweepReport",
    "FabricCoordinator",
    "FabricEndpoint",
    "WorkQueue",
    "QueueSnapshot",
    "LocalTransport",
    "HTTPTransport",
    "worker_loop",
    "DEFAULT_BATCH",
    "WorkUnit",
    "auto_chunk_size",
    "extract_units",
    "sweep_id",
    "unit_to_dict",
    "unit_from_dict",
    "unit_is_stored",
    "compute_unit",
    "compute_units",
]
