"""Worker-side transports: how a worker reaches the queue and the store.

Two ways for a worker to participate in a sweep:

* :class:`LocalTransport` — the worker shares the coordinator's
  filesystem: it opens the same store directory (appends go through
  the store's ``fcntl`` file lock) and the same queue directory
  (manifest mutations go through the queue's lock).  This is the
  ``repro sweep --workers N`` mode: N worker processes, one store.

* :class:`HTTPTransport` — the worker only reaches the coordinator
  over HTTP: leases are pulled from and results pushed to the
  ``/fabric/*`` endpoints that the coordinator mounts on the
  :mod:`repro.service` front end (the *served store*: remote workers
  never touch the store directory, the coordinator commits on their
  behalf).  This is the ``repro sweep --connect URL`` mode.

Both expose the same verbs — the batched ``lease_batch`` /
``complete_batch`` the worker loop drives (one lock acquisition or
HTTP round trip per *batch* of units), their singular ``lease`` /
``complete`` forms, ``heartbeat`` / ``release`` / ``finished``, and
``stored`` (a pre-compute shortcut only the local transport can
answer) — so :func:`repro.fabric.worker.worker_loop` is
transport-agnostic.  Group commit keeps the per-unit ordering
contract batch-wide: *all* of a batch's records land in the store
before *any* of its units is marked done.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any

from ..errors import FabricError
from ..store import TrialStore
from .queue import WorkQueue
from .units import WorkUnit, unit_from_dict, unit_is_stored, unit_to_dict

__all__ = [
    "LocalTransport",
    "HTTPTransport",
    "UNITS_FORMAT",
    "write_units_file",
    "load_units_file",
]

UNITS_FORMAT = "repro.fabric-units/1"


def write_units_file(root: str | Path, sweep: str, units: list[WorkUnit]) -> Path:
    """Persist the sweep's unit payloads next to its queue (atomic).

    Written once by the coordinator; workers and resumed coordinators
    only read it.  Content is deterministic for a given sweep id, so
    an overwrite by a concurrent coordinator of the same sweep is a
    byte-identical no-op.
    """
    path = Path(root) / "UNITS.json"
    doc = {
        "format": UNITS_FORMAT,
        "sweep": sweep,
        "units": [unit_to_dict(u) for u in units],
    }
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(doc) + "\n")
    os.replace(tmp, path)
    return path


def load_units_file(root: str | Path) -> tuple[str, dict[str, dict[str, Any]]]:
    """Read the unit payloads; returns ``(sweep_id, unit_id -> document)``.

    Documents are decoded to :class:`WorkUnit` lazily (on lease) —
    decoding re-verifies each unit's content address, and a worker only
    ever touches a few units of a large sweep.
    """
    path = Path(root) / "UNITS.json"
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise FabricError(f"no units file at {path}") from None
    except ValueError as exc:
        raise FabricError(f"unreadable units file {path}: {exc}") from exc
    if doc.get("format") != UNITS_FORMAT:
        raise FabricError(
            f"units file {path} has format {doc.get('format')!r}; "
            f"this code reads {UNITS_FORMAT!r}"
        )
    by_id: dict[str, dict[str, Any]] = {}
    for entry in doc.get("units", ()):
        by_id[entry["unit"]] = entry
    return doc.get("sweep", ""), by_id


class LocalTransport:
    """Shared-filesystem transport: one store + queue directory.

    ``store`` may be an already-open :class:`TrialStore` (the
    coordinator finishing inline reuses its own) or a path; only a
    store opened here is closed by :meth:`close`.
    """

    def __init__(
        self,
        store: TrialStore | str | Path,
        fabric_root: str | Path,
    ) -> None:
        self._owns_store = not isinstance(store, TrialStore)
        self.store = store if isinstance(store, TrialStore) else TrialStore(store)
        self.fabric_root = Path(fabric_root)
        self.queue = WorkQueue(self.fabric_root)
        self._sweep, self._unit_docs = load_units_file(self.fabric_root)

    def lease_batch(self, worker: str, k: int, ttl: float) -> list[WorkUnit]:
        unit_ids = self.queue.lease_batch(worker, k, ttl)
        units: list[WorkUnit] = []
        for unit_id in unit_ids:
            doc = self._unit_docs.get(unit_id)
            if doc is None:
                # Manifest and units file disagree — corrupt state; put
                # every lease of this batch back so other workers are
                # not starved by it.
                for uid in unit_ids:
                    self.queue.release(worker, uid)
                raise FabricError(
                    f"unit {unit_id[:12]}... is in the queue but not in "
                    "the units file"
                )
            units.append(unit_from_dict(doc))
        return units

    def lease(self, worker: str, ttl: float) -> WorkUnit | None:
        batch = self.lease_batch(worker, 1, ttl)
        return batch[0] if batch else None

    def heartbeat(self, worker: str, ttl: float) -> None:
        self.queue.heartbeat(worker, ttl)

    def stored(self, unit: WorkUnit) -> bool:
        return unit_is_stored(self.store, unit)

    def complete_batch(
        self,
        worker: str,
        units: list[WorkUnit],
        records: list[tuple[str, Any]],
    ) -> None:
        # Records first, then the done marks: a crash in between
        # re-issues units whose recompute commits nothing new (the
        # store skips present keys) — never a done unit without records.
        self.store.put_many(records)
        self.queue.complete_batch(worker, [u.unit_id for u in units])

    def complete(
        self,
        worker: str,
        unit: WorkUnit,
        records: list[tuple[str, Any]],
    ) -> None:
        self.complete_batch(worker, [unit], records)

    def release(self, worker: str, unit: WorkUnit) -> None:
        self.queue.release(worker, unit.unit_id)

    def finished(self) -> bool:
        return self.queue.finished()

    def close(self) -> None:
        if self._owns_store:
            self.store.close()


class HTTPTransport:
    """Remote-worker transport speaking to a coordinator's ``/fabric/*``.

    Stateless besides the base URL; every call is one JSON POST (or
    GET for status).  Non-2xx replies surface as :class:`FabricError` —
    the worker loop treats them as fatal.  Connection-level failures
    are fatal only before the first successful exchange (a bad URL
    should fail loudly); afterwards an unreachable coordinator reads
    as "sweep over" — the coordinator tears its server down the moment
    the queue finishes, so a lease poll racing the shutdown must not
    crash the worker.  A worker is never mid-``complete`` at that
    point: the queue cannot finish until the last completion lands.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self._finished = False
        self._connected = False

    # ------------------------------------------------------------------
    def _request(
        self,
        path: str,
        doc: dict[str, Any] | None = None,
        *,
        graceful: bool = False,
    ) -> dict[str, Any] | None:
        """One exchange; ``graceful`` turns post-connection outages
        (coordinator shut down after finishing) into ``None``."""
        url = f"{self.base_url}{path}"
        if doc is None:
            req = urllib.request.Request(url, method="GET")
        else:
            body = json.dumps(doc).encode()
            req = urllib.request.Request(
                url,
                data=body,
                method="POST",
                headers={"Content-Type": "application/json"},
            )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                payload = json.loads(resp.read().decode() or "null")
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode()).get("error", "")
            except Exception:  # noqa: BLE001 - best-effort error body
                detail = ""
            raise FabricError(
                f"coordinator rejected {path}: HTTP {exc.code} {detail}"
            ) from exc
        except (urllib.error.URLError, OSError, ValueError) as exc:
            if graceful and self._connected:
                self._finished = True
                return None
            raise FabricError(
                f"cannot reach coordinator at {url}: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise FabricError(f"malformed coordinator reply on {path}")
        self._connected = True
        return payload

    # ------------------------------------------------------------------
    def lease_batch(self, worker: str, k: int, ttl: float) -> list[WorkUnit]:
        reply = self._request(
            "/fabric/lease",
            {"worker": worker, "ttl": ttl, "max": k},
            graceful=True,
        )
        if reply is None:
            return []
        self._finished = bool(reply.get("finished"))
        unit_docs = reply.get("units")
        if unit_docs is None:
            # Pre-batch coordinator: a single "unit" field (or null).
            unit_docs = [reply["unit"]] if reply.get("unit") else []
        return [unit_from_dict(doc) for doc in unit_docs]

    def lease(self, worker: str, ttl: float) -> WorkUnit | None:
        batch = self.lease_batch(worker, 1, ttl)
        return batch[0] if batch else None

    def heartbeat(self, worker: str, ttl: float) -> None:
        self._request(
            "/fabric/heartbeat", {"worker": worker, "ttl": ttl}, graceful=True
        )

    def stored(self, unit: WorkUnit) -> bool:
        return False  # only the coordinator can see the store

    def complete_batch(
        self,
        worker: str,
        units: list[WorkUnit],
        records: list[tuple[str, Any]],
    ) -> None:
        self._request(
            "/fabric/complete",
            {
                "worker": worker,
                "units": [u.unit_id for u in units],
                "records": [[k, v] for k, v in records],
            },
        )

    def complete(
        self,
        worker: str,
        unit: WorkUnit,
        records: list[tuple[str, Any]],
    ) -> None:
        self.complete_batch(worker, [unit], records)

    def release(self, worker: str, unit: WorkUnit) -> None:
        self._request(
            "/fabric/release", {"worker": worker, "unit": unit.unit_id}
        )

    def finished(self) -> bool:
        if self._finished:
            return True
        reply = self._request("/fabric/status", graceful=True)
        if reply is None:
            return True
        self._finished = bool(reply.get("finished"))
        return self._finished

    def close(self) -> None:
        pass
