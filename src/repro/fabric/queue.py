"""Durable work queue: the sweep fabric's coordinator-owned state.

One sweep's execution state lives in a small directory next to the
trial store::

    <store>/fabric/<sweep12>/
      MANIFEST.json     # periodic snapshot of unit states (atomic rename)
      JOURNAL.jsonl     # fsync'd append-only log of state transitions
      UNITS.json        # the unit payloads (written once, read-only)
      .lock             # cross-process FileLock guarding queue mutations

Every unit runs the same state machine::

    pending ──lease──▶ leased ──complete──▶ done
       ▲                 │
       └──expiry/steal───┘   (attempts += 1, reissues += 1)

**Journaled commits.**  A state transition is an O(1) append of one
JSON line to ``JOURNAL.jsonl`` under the :class:`~repro.store.FileLock`
— not a rewrite of the whole manifest (the v1 format's whole-document
commit made a sweep's queue I/O O(units²) in total).  The authoritative
state is *snapshot + journal suffix*: each journal record carries a
monotone sequence number ``q``, the snapshot records the last sequence
folded into it, and every reader replays only the records with
``q > snapshot.seq``.  Once the journal outgrows ``compact_bytes`` the
holder of the lock compacts: it writes a fresh snapshot and truncates
the journal (snapshot first, so a crash between the two steps merely
leaves already-folded records to be skipped by the sequence guard).

**Crash safety.**  Journal appends are flushed and (by default)
fsync'd before the lock is released.  A writer SIGKILLed mid-append
leaves a torn final line; the next process to take the lock heals it
by terminating the file with a newline — a torn line that decodes
(the writer died between ``write`` and ``fsync`` return) is replayed
exactly once thanks to the sequence guard, and undecodable torn bytes
are skipped as their own garbage line, exactly like the
:class:`~repro.store.TrialStore` segment tail.  Since every mutation
happened under the exclusive lock, everything before the torn tail is
intact whole lines.

**Batched verbs.**  :meth:`WorkQueue.lease_batch` hands up to *k* units
to a worker in one lock acquisition and one journal append, and
:meth:`WorkQueue.complete_batch` marks a worker's whole batch done the
same way — the per-unit protocol cost is amortized across the batch.
:meth:`WorkQueue.heartbeat` extends all of a worker's leases in one
append, and *skips the commit entirely* when the worker holds no lease
(nothing changed, so nothing is written).  Completions stay idempotent
— a stolen unit completed by both the thief and a resurrected original
holder counts once, and the records they commit are content-addressed
so double commits are no-ops.

**Migration.**  A v1 whole-document ``MANIFEST.json`` loads and
upgrades in place on first contact: the document becomes the v2
snapshot (at sequence 0) and subsequent transitions append to a fresh
journal — resume semantics, counters, and done units all carry over.

Resume: re-creating a queue over an existing manifest with the same
sweep id keeps every ``done`` unit (nothing is recomputed) and leaves
live leases to expire naturally; a different sweep id is an error —
sweep directories are keyed by the sweep's content address, so this
only happens when state is corrupted or mixed by hand.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from ..errors import FabricError
from ..store import FileLock

__all__ = ["WorkQueue", "QueueSnapshot", "QUEUE_FORMAT", "QUEUE_FORMAT_V1"]

QUEUE_FORMAT = "repro.fabric-queue/2"
#: The pre-journal whole-document format, still readable (upgraded in
#: place on first contact).
QUEUE_FORMAT_V1 = "repro.fabric-queue/1"

_STATES = ("pending", "leased", "done")

#: Journal size (bytes) past which the next mutation compacts the queue
#: (snapshot rewrite + journal truncation, both under the lock).
_DEFAULT_COMPACT_BYTES = 256 * 1024


@dataclass(frozen=True)
class QueueSnapshot:
    """Point-in-time counts of one queue (the observability surface)."""

    sweep: str
    pending: int
    leased: int
    done: int
    leases: int
    completions: int
    reissues: int
    #: worker id → last heartbeat/lease timestamp (queue clock).
    workers: Mapping[str, float] = field(default_factory=dict)
    #: worker id → number of live leases it currently holds.
    leased_by: Mapping[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.pending + self.leased + self.done

    @property
    def finished(self) -> bool:
        return self.total > 0 and self.done == self.total

    def live_workers(self, now: float, window: float) -> int:
        """Workers heard from within *window* seconds of *now*."""
        return sum(1 for seen in self.workers.values() if now - seen <= window)

    def to_dict(self) -> dict[str, object]:
        return {
            "sweep": self.sweep,
            "pending": self.pending,
            "leased": self.leased,
            "done": self.done,
            "total": self.total,
            "finished": self.finished,
            "leases": self.leases,
            "completions": self.completions,
            "reissues": self.reissues,
            "workers": dict(self.workers),
            "leased_by": dict(self.leased_by),
        }


class WorkQueue:
    """Durable, multi-process work queue over one sweep's units.

    Every operation synchronizes with the on-disk state under the file
    lock — any number of worker processes (and the coordinator) can
    share one queue directory.  Within a process the snapshot and the
    consumed journal prefix are cached, so a quiet queue costs one
    ``stat`` per operation, and a busy one reads only the journal
    lines it has not seen yet; the cache is invalidated whenever
    another process compacts (the snapshot's inode changes).
    ``clock`` is injectable for tests — both ends of a lease comparison
    go through it.  ``fsync`` (default on) forces each journal append
    to stable storage before the lock is released; ``compact_bytes``
    bounds the journal's size between snapshots.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        clock: Callable[[], float] = time.time,
        fsync: bool = True,
        compact_bytes: int = _DEFAULT_COMPACT_BYTES,
    ) -> None:
        self.root = Path(root)
        self.path = self.root / "MANIFEST.json"
        self.journal_path = self.root / "JOURNAL.jsonl"
        self._lock = FileLock(self.root / ".lock")
        self._mutex = threading.RLock()
        self._clock = clock
        self._fsync = fsync
        self.compact_bytes = max(1, int(compact_bytes))
        # Per-process cache: the snapshot+journal state already folded
        # in, and the identity of the snapshot file it came from.
        self._doc: dict | None = None
        self._snap_sig: tuple[int, int, int] | None = None
        self._journal_offset = 0

    # ------------------------------------------------------------------
    # Creation / load
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: str | Path,
        sweep: str,
        unit_ids: Iterable[str],
        *,
        done: Iterable[str] = (),
        clock: Callable[[], float] = time.time,
        fsync: bool = True,
        compact_bytes: int = _DEFAULT_COMPACT_BYTES,
    ) -> "WorkQueue":
        """Create (or resume) the queue for *sweep* in *root*.

        *done* pre-marks units whose results already sit in the store —
        the warm-start path.  On resume (an existing manifest with the
        same sweep id), previously ``done`` units stay done and leases
        are left to expire; pre-marked done units are unioned in.
        """
        queue = cls(
            root, clock=clock, fsync=fsync, compact_bytes=compact_bytes
        )
        queue.root.mkdir(parents=True, exist_ok=True)
        ids = list(unit_ids)
        if len(set(ids)) != len(ids):
            raise FabricError("duplicate unit ids in sweep")
        done_set = set(done)
        unknown = done_set - set(ids)
        if unknown:
            raise FabricError(
                f"{len(unknown)} pre-done unit(s) not in the sweep"
            )
        with queue._mutex, queue._lock:
            existing = queue._sync_locked(missing_ok=True)
            if existing is not None:
                if existing.get("sweep") != sweep:
                    raise FabricError(
                        f"queue at {queue.root} belongs to sweep "
                        f"{str(existing.get('sweep'))[:12]}..., not "
                        f"{sweep[:12]}..."
                    )
                units = existing["units"]
                if set(units) != set(ids):
                    raise FabricError(
                        f"queue at {queue.root} has a different unit set "
                        "than this sweep (corrupt manifest?)"
                    )
                fresh = sorted(
                    uid for uid in done_set if units[uid]["state"] != "done"
                )
                if fresh:
                    queue._append_locked({"op": "predone", "us": fresh})
                return queue
            doc = {
                "format": QUEUE_FORMAT,
                "sweep": sweep,
                "seq": 0,
                "units": {
                    uid: {
                        "state": "done" if uid in done_set else "pending",
                        "worker": None,
                        "expires": 0.0,
                        "attempts": 0,
                    }
                    for uid in ids
                },
                "leases": 0,
                "completions": 0,
                "reissues": 0,
                "workers": {},
            }
            queue._doc = doc
            queue._install_snapshot_locked()
        return queue

    # ------------------------------------------------------------------
    # Snapshot + journal plumbing (every method below holds the lock)
    # ------------------------------------------------------------------
    def _load_snapshot(self) -> dict:
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            raise FabricError(f"no work queue at {self.root}") from None
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise FabricError(
                f"unreadable queue manifest {self.path}: {exc}"
            ) from exc
        fmt = doc.get("format")
        if fmt == QUEUE_FORMAT_V1:
            # In-place upgrade: the whole document *is* the snapshot —
            # stamp it v2 at sequence 0 and persist, so every later
            # transition appends instead of rewriting.  Any journal
            # lying next to a v1 manifest is foreign state: drop it.
            doc["format"] = QUEUE_FORMAT
            doc["seq"] = 0
            self._doc = doc
            self._install_snapshot_locked()
            return doc
        if fmt != QUEUE_FORMAT:
            raise FabricError(
                f"queue manifest {self.path} has format {fmt!r}; this "
                f"code reads {QUEUE_FORMAT!r} (or upgrades "
                f"{QUEUE_FORMAT_V1!r})"
            )
        return doc

    def _sync_locked(self, *, missing_ok: bool = False) -> dict | None:
        """Fold any unseen on-disk state into the cached document.

        One ``stat`` of the snapshot detects compaction by another
        process (``os.replace`` changes the inode), in which case the
        snapshot is reloaded and the journal re-consumed from the top;
        otherwise only the journal's unseen tail is read and replayed.
        """
        try:
            st = os.stat(self.path)
        except FileNotFoundError:
            if missing_ok:
                return None
            raise FabricError(f"no work queue at {self.root}") from None
        sig = (st.st_ino, st.st_mtime_ns, st.st_size)
        if self._doc is None or sig != self._snap_sig:
            doc = self._load_snapshot()
            self._doc = doc
            self._journal_offset = 0
            # _load_snapshot may itself have rewritten the file (the
            # v1 upgrade path); record the identity we will trust.
            st = os.stat(self.path)
            self._snap_sig = (st.st_ino, st.st_mtime_ns, st.st_size)
        self._replay_locked()
        return self._doc

    def _replay_locked(self) -> None:
        """Apply the journal's unseen suffix, healing a torn tail.

        We hold the exclusive lock, so a file that does not end in a
        newline means its last writer died mid-append — never that a
        write is in flight.  Terminating it isolates the torn bytes
        into their own line: if they decode, the record's content hit
        the disk and it replays exactly once (the sequence guard
        forbids a second application); if not, the garbage line is
        skipped, exactly like a torn trial-store segment tail.
        """
        doc = self._doc
        assert doc is not None
        try:
            size = self.journal_path.stat().st_size
        except FileNotFoundError:
            return
        if size <= self._journal_offset:
            return
        with open(self.journal_path, "rb") as fh:
            fh.seek(self._journal_offset)
            data = fh.read()
        if data and not data.endswith(b"\n"):
            with open(self.journal_path, "ab") as fh:
                fh.write(b"\n")
            data += b"\n"
        for line in data.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # healed torn garbage: its op never happened
            if not isinstance(record, dict):
                continue
            seq = record.get("q")
            if not isinstance(seq, int) or seq <= doc["seq"]:
                continue
            self._apply(doc, record)
        self._journal_offset += len(data)

    @staticmethod
    def _apply(doc: dict, record: dict) -> None:
        """Fold one journal record into *doc* (writer and replayer)."""
        op = record.get("op")
        units = doc["units"]
        worker = record.get("w")
        if op == "lease":
            for uid, stolen in record["us"]:
                entry = units[uid]
                entry.update(
                    state="leased",
                    worker=worker,
                    expires=record["exp"],
                    attempts=entry["attempts"] + 1,
                )
                doc["leases"] += 1
                if stolen:
                    doc["reissues"] += 1
            doc["workers"][worker] = record["t"]
        elif op == "hb":
            for entry in units.values():
                if entry["state"] == "leased" and entry["worker"] == worker:
                    entry["expires"] = record["exp"]
            doc["workers"][worker] = record["t"]
        elif op == "done":
            for uid in record["us"]:
                entry = units[uid]
                if entry["state"] != "done":
                    entry.update(state="done", worker=None, expires=0.0)
                    doc["completions"] += 1
            doc["workers"][worker] = record["t"]
        elif op == "rel":
            for uid in record["us"]:
                entry = units.get(uid)
                if (
                    entry is not None
                    and entry["state"] == "leased"
                    and entry["worker"] == worker
                ):
                    entry.update(state="pending", worker=None, expires=0.0)
        elif op == "predone":
            # Resume warm-start: done without a completion (the records
            # were computed by an earlier sweep, not this one).
            for uid in record["us"]:
                entry = units[uid]
                if entry["state"] != "done":
                    entry.update(state="done", worker=None, expires=0.0)
        # Unknown ops are tolerated (forward compatibility) but still
        # advance the sequence, so writer-assigned numbers stay unique.
        doc["seq"] = record["q"]

    def _append_locked(self, body: dict) -> None:
        """Journal one transition: apply in memory, append, maybe compact."""
        doc = self._doc
        assert doc is not None
        record = {"q": doc["seq"] + 1, **body}
        self._apply(doc, record)
        line = (json.dumps(record, separators=(",", ":")) + "\n").encode()
        # The tail was healed by _sync_locked at the top of this
        # operation, so the append starts on a fresh line.
        with open(self.journal_path, "ab") as fh:
            fh.write(line)
            fh.flush()
            if self._fsync:
                os.fsync(fh.fileno())
        self._journal_offset += len(line)
        if self._journal_offset >= self.compact_bytes:
            self._install_snapshot_locked()

    def _install_snapshot_locked(self) -> None:
        """Write the cached document as the snapshot; truncate the journal.

        Snapshot first: a crash before the truncation leaves journal
        records whose sequence numbers the fresh snapshot already
        covers — replay skips them.  Both writes go through temp file +
        ``os.replace`` so readers never see a torn file.
        """
        doc = self._doc
        assert doc is not None
        tmp = self.path.with_name(self.path.name + f".tmp.{os.getpid()}")
        with open(tmp, "w") as fh:
            fh.write(json.dumps(doc, separators=(",", ":")) + "\n")
            fh.flush()
            if self._fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        jtmp = self.journal_path.with_name(
            self.journal_path.name + f".tmp.{os.getpid()}"
        )
        jtmp.write_bytes(b"")
        os.replace(jtmp, self.journal_path)
        self._journal_offset = 0
        st = os.stat(self.path)
        self._snap_sig = (st.st_ino, st.st_mtime_ns, st.st_size)

    def compact(self) -> None:
        """Fold the journal into a fresh snapshot now (maintenance)."""
        with self._mutex, self._lock:
            self._sync_locked()
            self._install_snapshot_locked()

    # ------------------------------------------------------------------
    # Worker operations
    # ------------------------------------------------------------------
    def lease_batch(self, worker: str, k: int, ttl: float) -> list[str]:
        """Lease up to *k* units to *worker* in one commit.

        Pending units go first (FIFO in manifest order — consecutive
        units of one sweep share a sweep point, which lets the worker
        coalesce their seed lanes into one vectorized batch); with none
        left, the oldest *expired* leases are stolen and re-issued.  An
        empty return writes nothing to disk and does not mean the sweep
        is finished — live leases may still fail and come back; pair it
        with :meth:`snapshot` (see the worker loop).
        """
        if k < 1:
            raise FabricError(f"lease batch size must be >= 1, got {k}")
        now = self._clock()
        with self._mutex, self._lock:
            doc = self._sync_locked()
            units = doc["units"]
            chosen: list[tuple[str, int]] = []
            for uid, entry in units.items():
                if len(chosen) >= k:
                    break
                if entry["state"] == "pending":
                    chosen.append((uid, 0))
            if len(chosen) < k:
                expired = sorted(
                    (entry["expires"], uid)
                    for uid, entry in units.items()
                    if entry["state"] == "leased" and entry["expires"] <= now
                )
                for _expiry, uid in expired[: k - len(chosen)]:
                    chosen.append((uid, 1))
            if not chosen:
                return []
            self._append_locked(
                {
                    "op": "lease",
                    "w": worker,
                    "t": now,
                    "exp": now + ttl,
                    "us": chosen,
                }
            )
            return [uid for uid, _stolen in chosen]

    def lease(self, worker: str, ttl: float) -> str | None:
        """Lease one unit to *worker* for *ttl* seconds; ``None`` if none."""
        batch = self.lease_batch(worker, 1, ttl)
        return batch[0] if batch else None

    def heartbeat(self, worker: str, ttl: float) -> int:
        """Extend every lease *worker* holds by *ttl*; returns how many.

        A worker holding no lease is a no-op — nothing changed, so
        nothing is read-modify-written and nothing touches the disk
        beyond the sync itself.
        """
        now = self._clock()
        with self._mutex, self._lock:
            doc = self._sync_locked()
            extended = sum(
                1
                for entry in doc["units"].values()
                if entry["state"] == "leased" and entry["worker"] == worker
            )
            if extended == 0:
                return 0
            self._append_locked(
                {"op": "hb", "w": worker, "t": now, "exp": now + ttl}
            )
        return extended

    def complete_batch(self, worker: str, unit_ids: Sequence[str]) -> int:
        """Mark a batch of units done in one commit; returns transitions.

        Idempotent and accepted from any worker, lease or not: the
        units' records are content-addressed, so whoever computed them
        computed *the* records — a thief and a slow original holder
        completing the same unit is the expected race, not an error.
        A batch that transitions nothing (all duplicates) writes
        nothing.
        """
        now = self._clock()
        with self._mutex, self._lock:
            doc = self._sync_locked()
            units = doc["units"]
            for uid in unit_ids:
                if uid not in units:
                    raise FabricError(
                        f"unknown unit {str(uid)[:12]}... completed by "
                        f"{worker!r}"
                    )
            transitions = [
                uid for uid in unit_ids if units[uid]["state"] != "done"
            ]
            if not transitions:
                return 0
            self._append_locked(
                {"op": "done", "w": worker, "t": now, "us": transitions}
            )
            return len(transitions)

    def complete(self, worker: str, unit_id: str) -> bool:
        """Mark *unit_id* done.  Idempotent; returns True on transition."""
        return self.complete_batch(worker, [unit_id]) == 1

    def release(self, worker: str, unit_id: str) -> None:
        """Return a leased unit to pending (worker bailing out cleanly)."""
        with self._mutex, self._lock:
            doc = self._sync_locked()
            entry = doc["units"].get(unit_id)
            if (
                entry is not None
                and entry["state"] == "leased"
                and entry["worker"] == worker
            ):
                self._append_locked({"op": "rel", "w": worker, "us": [unit_id]})

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def snapshot(self) -> QueueSnapshot:
        with self._mutex, self._lock:
            doc = self._sync_locked()
            counts = {state: 0 for state in _STATES}
            leased_by: dict[str, int] = {}
            for entry in doc["units"].values():
                counts[entry["state"]] += 1
                if entry["state"] == "leased":
                    holder = entry["worker"]
                    leased_by[holder] = leased_by.get(holder, 0) + 1
            return QueueSnapshot(
                sweep=doc["sweep"],
                pending=counts["pending"],
                leased=counts["leased"],
                done=counts["done"],
                leases=doc["leases"],
                completions=doc["completions"],
                reissues=doc["reissues"],
                workers=dict(doc["workers"]),
                leased_by=leased_by,
            )

    def finished(self) -> bool:
        return self.snapshot().finished
