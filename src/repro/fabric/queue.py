"""Durable work queue: the sweep fabric's coordinator-owned state.

One sweep's execution state lives in a small directory next to the
trial store::

    <store>/fabric/<sweep12>/
      MANIFEST.json     # unit states (atomic rename, see below)
      UNITS.json        # the unit payloads (written once, read-only)
      .lock             # cross-process FileLock guarding MANIFEST.json

``MANIFEST.json`` maps every unit id to its state machine::

    pending ──lease──▶ leased ──complete──▶ done
       ▲                 │
       └──expiry/steal───┘   (attempts += 1, reissues += 1)

Every mutation is a read-modify-write of the whole document under the
same :class:`~repro.store.FileLock` tier the store uses, committed via
temp-file + ``os.replace`` — concurrent workers (processes on one
host, or the coordinator's HTTP endpoint serving remote ones) each see
a consistent manifest and never tear it.  A worker holds a *lease*
with an expiry timestamp; :meth:`WorkQueue.heartbeat` extends it, and
a lease whose expiry passes (the holder was SIGKILLed, wedged, or
partitioned) becomes stealable: the next idle worker's
:meth:`WorkQueue.lease` re-issues it.  Completions are idempotent —
a stolen unit completed by both the thief and a resurrected original
holder counts once, and the records they commit are content-addressed
so double commits are no-ops.

Resume: re-creating a queue over an existing manifest with the same
sweep id keeps every ``done`` unit (nothing is recomputed) and leaves
live leases to expire naturally; a different sweep id is an error —
sweep directories are keyed by the sweep's content address, so this
only happens when state is corrupted or mixed by hand.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping

from ..errors import FabricError
from ..store import FileLock

__all__ = ["WorkQueue", "QueueSnapshot", "QUEUE_FORMAT"]

QUEUE_FORMAT = "repro.fabric-queue/1"

_STATES = ("pending", "leased", "done")


@dataclass(frozen=True)
class QueueSnapshot:
    """Point-in-time counts of one queue (the observability surface)."""

    sweep: str
    pending: int
    leased: int
    done: int
    leases: int
    completions: int
    reissues: int
    #: worker id → last heartbeat/lease timestamp (queue clock).
    workers: Mapping[str, float] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.pending + self.leased + self.done

    @property
    def finished(self) -> bool:
        return self.total > 0 and self.done == self.total

    def live_workers(self, now: float, window: float) -> int:
        """Workers heard from within *window* seconds of *now*."""
        return sum(1 for seen in self.workers.values() if now - seen <= window)

    def to_dict(self) -> dict[str, object]:
        return {
            "sweep": self.sweep,
            "pending": self.pending,
            "leased": self.leased,
            "done": self.done,
            "total": self.total,
            "finished": self.finished,
            "leases": self.leases,
            "completions": self.completions,
            "reissues": self.reissues,
            "workers": dict(self.workers),
        }


class WorkQueue:
    """Durable, multi-process work queue over one sweep's units.

    Every operation re-reads the manifest under the file lock, so any
    number of worker processes (and the coordinator) can share one
    queue directory; there is no in-memory authoritative copy.
    ``clock`` is injectable for tests — both ends of a lease comparison
    go through it.
    """

    def __init__(
        self, root: str | Path, *, clock: Callable[[], float] = time.time
    ) -> None:
        self.root = Path(root)
        self.path = self.root / "MANIFEST.json"
        self._lock = FileLock(self.root / ".lock")
        self._clock = clock

    # ------------------------------------------------------------------
    # Creation / load
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: str | Path,
        sweep: str,
        unit_ids: Iterable[str],
        *,
        done: Iterable[str] = (),
        clock: Callable[[], float] = time.time,
    ) -> "WorkQueue":
        """Create (or resume) the queue for *sweep* in *root*.

        *done* pre-marks units whose results already sit in the store —
        the warm-start path.  On resume (an existing manifest with the
        same sweep id), previously ``done`` units stay done and leases
        are left to expire; pre-marked done units are unioned in.
        """
        queue = cls(root, clock=clock)
        queue.root.mkdir(parents=True, exist_ok=True)
        ids = list(unit_ids)
        if len(set(ids)) != len(ids):
            raise FabricError("duplicate unit ids in sweep")
        done_set = set(done)
        unknown = done_set - set(ids)
        if unknown:
            raise FabricError(
                f"{len(unknown)} pre-done unit(s) not in the sweep"
            )
        with queue._lock:
            existing = queue._load_locked(missing_ok=True)
            if existing is not None:
                if existing.get("sweep") != sweep:
                    raise FabricError(
                        f"queue at {queue.root} belongs to sweep "
                        f"{str(existing.get('sweep'))[:12]}..., not "
                        f"{sweep[:12]}..."
                    )
                units = existing["units"]
                if set(units) != set(ids):
                    raise FabricError(
                        f"queue at {queue.root} has a different unit set "
                        "than this sweep (corrupt manifest?)"
                    )
                for uid in done_set:
                    entry = units[uid]
                    if entry["state"] != "done":
                        entry.update(state="done", worker=None, expires=0.0)
                queue._write_locked(existing)
                return queue
            doc = {
                "format": QUEUE_FORMAT,
                "sweep": sweep,
                "units": {
                    uid: {
                        "state": "done" if uid in done_set else "pending",
                        "worker": None,
                        "expires": 0.0,
                        "attempts": 0,
                    }
                    for uid in ids
                },
                "leases": 0,
                "completions": 0,
                "reissues": 0,
                "workers": {},
            }
            queue._write_locked(doc)
        return queue

    def _load_locked(self, *, missing_ok: bool = False) -> dict | None:
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            if missing_ok:
                return None
            raise FabricError(f"no work queue at {self.root}") from None
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise FabricError(
                f"unreadable queue manifest {self.path}: {exc}"
            ) from exc
        if doc.get("format") != QUEUE_FORMAT:
            raise FabricError(
                f"queue manifest {self.path} has format "
                f"{doc.get('format')!r}; this code reads {QUEUE_FORMAT!r}"
            )
        return doc

    def _write_locked(self, doc: dict) -> None:
        tmp = self.path.with_name(self.path.name + f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, indent=1) + "\n")
        os.replace(tmp, self.path)

    # ------------------------------------------------------------------
    # Worker operations
    # ------------------------------------------------------------------
    def lease(self, worker: str, ttl: float) -> str | None:
        """Lease one unit to *worker* for *ttl* seconds; ``None`` if none.

        Pending units go first (FIFO in manifest order); with none
        left, the oldest *expired* lease is stolen and re-issued.  A
        ``None`` return does not mean the sweep is finished — live
        leases may still fail and come back; pair it with
        :meth:`snapshot` (see the worker loop).
        """
        now = self._clock()
        with self._lock:
            doc = self._load_locked()
            units = doc["units"]
            chosen = None
            stolen = False
            for uid, entry in units.items():
                if entry["state"] == "pending":
                    chosen = uid
                    break
            if chosen is None:
                best_expiry = None
                for uid, entry in units.items():
                    if entry["state"] == "leased" and entry["expires"] <= now:
                        if best_expiry is None or entry["expires"] < best_expiry:
                            chosen, best_expiry = uid, entry["expires"]
                stolen = chosen is not None
            doc["workers"][worker] = now
            if chosen is None:
                self._write_locked(doc)
                return None
            entry = units[chosen]
            entry.update(
                state="leased",
                worker=worker,
                expires=now + ttl,
                attempts=entry["attempts"] + 1,
            )
            doc["leases"] += 1
            if stolen:
                doc["reissues"] += 1
            self._write_locked(doc)
            return chosen

    def heartbeat(self, worker: str, ttl: float) -> int:
        """Extend every lease *worker* holds by *ttl*; returns how many."""
        now = self._clock()
        extended = 0
        with self._lock:
            doc = self._load_locked()
            for entry in doc["units"].values():
                if entry["state"] == "leased" and entry["worker"] == worker:
                    entry["expires"] = now + ttl
                    extended += 1
            doc["workers"][worker] = now
            self._write_locked(doc)
        return extended

    def complete(self, worker: str, unit_id: str) -> bool:
        """Mark *unit_id* done.  Idempotent; returns True on transition.

        Accepted from any worker, lease or not: the unit's records are
        content-addressed, so whoever computed them computed *the*
        records — a thief and a slow original holder completing the
        same unit is the expected race, not an error.
        """
        now = self._clock()
        with self._lock:
            doc = self._load_locked()
            try:
                entry = doc["units"][unit_id]
            except KeyError:
                raise FabricError(
                    f"unknown unit {unit_id[:12]}... completed by {worker!r}"
                ) from None
            transition = entry["state"] != "done"
            if transition:
                entry.update(state="done", worker=None, expires=0.0)
                doc["completions"] += 1
            doc["workers"][worker] = now
            self._write_locked(doc)
            return transition

    def release(self, worker: str, unit_id: str) -> None:
        """Return a leased unit to pending (worker bailing out cleanly)."""
        with self._lock:
            doc = self._load_locked()
            entry = doc["units"].get(unit_id)
            if (
                entry is not None
                and entry["state"] == "leased"
                and entry["worker"] == worker
            ):
                entry.update(state="pending", worker=None, expires=0.0)
                self._write_locked(doc)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def snapshot(self) -> QueueSnapshot:
        with self._lock:
            doc = self._load_locked()
        counts = {state: 0 for state in _STATES}
        for entry in doc["units"].values():
            counts[entry["state"]] += 1
        return QueueSnapshot(
            sweep=doc["sweep"],
            pending=counts["pending"],
            leased=counts["leased"],
            done=counts["done"],
            leases=doc["leases"],
            completions=doc["completions"],
            reissues=doc["reissues"],
            workers=dict(doc["workers"]),
        )

    def finished(self) -> bool:
        return self.snapshot().finished
