"""The fabric worker loop: lease → compute → commit, until the sweep ends.

Transport-agnostic (see :mod:`repro.fabric.transport`): the same loop
drives a local worker process sharing the coordinator's store directory
and a remote worker pulling leases over HTTP.

**Batched protocol.**  A worker leases up to ``batch`` units in one
round trip (:meth:`Transport.lease_batch`), computes them as one
coalesced seed batch (:func:`~repro.fabric.units.compute_units` — the
vec tier gets every lane at once), and group-commits: all the batch's
trial records flush to the store in one append, then every unit is
marked done in one :meth:`Transport.complete_batch`.  The ordering
contract is per *batch* what it was per unit — records are durably
committed before any of their units is reported done, so a crash
between the two steps re-issues units whose records already landed and
the next holder completes them without recomputation.

Liveness protocol:

* while computing, a daemon thread heartbeats at a third of the lease
  TTL — one call extends *all* of the worker's leases, so slow batches
  never expire out from under a live worker;
* a worker that dies silently (SIGKILL, OOM, power) simply stops
  heartbeating — its leases expire and other workers steal them;
* a worker that *fails* computing releases every lease of the batch
  explicitly (no TTL wait) and re-raises, so a poisoned unit surfaces
  instead of bouncing between workers forever;
* an idle worker (no leasable unit, sweep unfinished) naps ``poll``
  seconds and retries — this is where stolen work comes from.

Workers exit when the queue reports the sweep finished.
"""

from __future__ import annotations

import threading
import time
from typing import Any, MutableMapping, Protocol

from .units import WorkUnit, compute_units

__all__ = ["DEFAULT_BATCH", "worker_loop", "local_worker_entry"]

#: Default units per lease round trip.  Big enough to amortize the
#: lock/HTTP protocol cost and feed the vec tier multi-unit seed
#: batches, small enough that a dying worker's re-issued backlog stays
#: cheap and stealable.
DEFAULT_BATCH = 16


class Transport(Protocol):  # pragma: no cover - typing aid
    def lease(self, worker: str, ttl: float) -> WorkUnit | None: ...
    def lease_batch(
        self, worker: str, k: int, ttl: float
    ) -> list[WorkUnit]: ...
    def heartbeat(self, worker: str, ttl: float) -> None: ...
    def stored(self, unit: WorkUnit) -> bool: ...
    def complete(
        self, worker: str, unit: WorkUnit, records: list[tuple[str, Any]]
    ) -> None: ...
    def complete_batch(
        self,
        worker: str,
        units: list[WorkUnit],
        records: list[tuple[str, Any]],
    ) -> None: ...
    def release(self, worker: str, unit: WorkUnit) -> None: ...
    def finished(self) -> bool: ...


class _Heartbeat:
    """Daemon thread renewing one worker's leases while it computes."""

    def __init__(self, transport: Transport, worker: str, ttl: float) -> None:
        self._transport = transport
        self._worker = worker
        self._ttl = ttl
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        interval = max(self._ttl / 3.0, 0.05)
        while not self._stop.wait(interval):
            try:
                self._transport.heartbeat(self._worker, self._ttl)
            except Exception:  # noqa: BLE001 - heartbeat is best-effort
                return  # the lease will expire and be re-issued

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)


def worker_loop(
    transport: Transport,
    worker: str,
    *,
    lease_ttl: float = 30.0,
    poll: float = 0.2,
    batch: int = DEFAULT_BATCH,
    use_kernel: bool | None = None,
    use_vec: bool | None = None,
    max_units: int | None = None,
    stats: MutableMapping[str, float] | None = None,
) -> int:
    """Drain the sweep through *transport*; returns units completed.

    ``batch`` caps the units leased (and group-committed) per round
    trip; ``max_units`` bounds this worker's total share (tests and
    canary runs) — the loop otherwise runs until
    :meth:`Transport.finished`.  ``use_kernel``/``use_vec`` pin the
    fast-path tiers per worker; the defaults defer to the inherited
    ``REPRO_KERNEL``/``REPRO_VEC`` environment, and records commit
    bit-identically either way.  ``stats``, when given, accumulates the
    per-phase wall-clock split — ``lease_seconds`` (protocol: leasing),
    ``compute_seconds`` (trial arithmetic), ``commit_seconds``
    (protocol: records + done marks) and ``units`` — the breakdown the
    fabric bench reports.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    completed = 0
    while max_units is None or completed < max_units:
        k = batch if max_units is None else min(batch, max_units - completed)
        t0 = time.perf_counter()
        units = transport.lease_batch(worker, k, lease_ttl)
        t1 = time.perf_counter()
        if stats is not None:
            stats["lease_seconds"] = stats.get("lease_seconds", 0.0) + (t1 - t0)
        if not units:
            if transport.finished():
                break
            time.sleep(poll)
            continue
        try:
            with _Heartbeat(transport, worker, lease_ttl):
                # Re-issued units whose records already landed (the
                # holder died after commit, before the done mark) are
                # completed without recomputation.
                todo = [u for u in units if not transport.stored(u)]
                t2 = time.perf_counter()
                records = compute_units(todo, use_kernel, use_vec)
                t3 = time.perf_counter()
            transport.complete_batch(worker, units, records)
            t4 = time.perf_counter()
            if stats is not None:
                stats["compute_seconds"] = (
                    stats.get("compute_seconds", 0.0) + (t3 - t2)
                )
                stats["commit_seconds"] = (
                    stats.get("commit_seconds", 0.0) + (t4 - t3)
                )
                stats["units"] = stats.get("units", 0) + len(units)
        except BaseException:
            for unit in units:
                try:
                    transport.release(worker, unit)
                except Exception:  # noqa: BLE001 - the lease expires anyway
                    pass
            raise
        completed += len(units)
    return completed


def local_worker_entry(
    store_root: str,
    fabric_root: str,
    worker: str,
    lease_ttl: float,
    poll: float,
    batch: int = DEFAULT_BATCH,
) -> None:
    """Process entry point of one ``repro sweep --workers N`` worker.

    Spawn-safe: arguments are plain strings/floats, every object is
    reconstructed here.  The kernel and vectorized-tier choices
    deliberately defer to the ``REPRO_KERNEL``/``REPRO_VEC``
    environment the worker inherited, exactly like a single-process
    run's pool workers.
    """
    from .transport import LocalTransport

    transport = LocalTransport(store_root, fabric_root)
    try:
        worker_loop(
            transport, worker, lease_ttl=lease_ttl, poll=poll, batch=batch
        )
    finally:
        transport.close()
