"""The fabric worker loop: lease → compute → commit, until the sweep ends.

Transport-agnostic (see :mod:`repro.fabric.transport`): the same loop
drives a local worker process sharing the coordinator's store directory
and a remote worker pulling leases over HTTP.  Liveness protocol:

* while computing a unit, a daemon thread heartbeats at a third of the
  lease TTL, so slow units never expire out from under a live worker;
* a worker that dies silently (SIGKILL, OOM, power) simply stops
  heartbeating — its leases expire and other workers steal them;
* a worker that *fails* computing a unit releases the lease explicitly
  (no TTL wait) and re-raises, so a poisoned unit surfaces instead of
  bouncing between workers forever;
* an idle worker (no leasable unit, sweep unfinished) naps ``poll``
  seconds and retries — this is where stolen work comes from.

Workers exit when the queue reports the sweep finished.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Protocol

from .units import WorkUnit, compute_unit

__all__ = ["worker_loop", "local_worker_entry"]


class Transport(Protocol):  # pragma: no cover - typing aid
    def lease(self, worker: str, ttl: float) -> WorkUnit | None: ...
    def heartbeat(self, worker: str, ttl: float) -> None: ...
    def stored(self, unit: WorkUnit) -> bool: ...
    def complete(
        self, worker: str, unit: WorkUnit, records: list[tuple[str, Any]]
    ) -> None: ...
    def release(self, worker: str, unit: WorkUnit) -> None: ...
    def finished(self) -> bool: ...


class _Heartbeat:
    """Daemon thread renewing one worker's leases while it computes."""

    def __init__(self, transport: Transport, worker: str, ttl: float) -> None:
        self._transport = transport
        self._worker = worker
        self._ttl = ttl
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        interval = max(self._ttl / 3.0, 0.05)
        while not self._stop.wait(interval):
            try:
                self._transport.heartbeat(self._worker, self._ttl)
            except Exception:  # noqa: BLE001 - heartbeat is best-effort
                return  # the lease will expire and be re-issued

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)


def worker_loop(
    transport: Transport,
    worker: str,
    *,
    lease_ttl: float = 30.0,
    poll: float = 0.2,
    use_kernel: bool | None = None,
    use_vec: bool | None = None,
    max_units: int | None = None,
) -> int:
    """Drain the sweep through *transport*; returns units completed.

    ``max_units`` bounds this worker's share (tests and canary runs);
    the loop otherwise runs until :meth:`Transport.finished`.
    ``use_kernel``/``use_vec`` pin the fast-path tiers per worker; the
    defaults defer to the inherited ``REPRO_KERNEL``/``REPRO_VEC``
    environment, and records commit bit-identically either way.
    """
    completed = 0
    while max_units is None or completed < max_units:
        unit = transport.lease(worker, lease_ttl)
        if unit is None:
            if transport.finished():
                break
            time.sleep(poll)
            continue
        try:
            with _Heartbeat(transport, worker, lease_ttl):
                # A re-issued unit whose records already landed (the
                # holder died after commit, before the done mark) is
                # completed without recomputation.
                records: list[tuple[str, Any]] = []
                if not transport.stored(unit):
                    records = compute_unit(unit, use_kernel, use_vec)
            transport.complete(worker, unit, records)
        except BaseException:
            try:
                transport.release(worker, unit)
            except Exception:  # noqa: BLE001 - the lease expires anyway
                pass
            raise
        completed += 1
    return completed


def local_worker_entry(
    store_root: str,
    fabric_root: str,
    worker: str,
    lease_ttl: float,
    poll: float,
) -> None:
    """Process entry point of one ``repro sweep --workers N`` worker.

    Spawn-safe: arguments are plain strings/floats, every object is
    reconstructed here.  The kernel and vectorized-tier choices
    deliberately defer to the ``REPRO_KERNEL``/``REPRO_VEC``
    environment the worker inherited, exactly like a single-process
    run's pool workers.
    """
    from .transport import LocalTransport

    transport = LocalTransport(store_root, fabric_root)
    try:
        worker_loop(
            transport, worker, lease_ttl=lease_ttl, poll=poll
        )
    finally:
        transport.close()
