"""General shared-resource constraints — the §7.3 future-work extension.

The paper suggests applying the slicing technique "not only to
computational resources such as processors but also to general resources
including shared data structures".  This module provides:

* helpers to declare mutually exclusive logical resources on tasks
  (tasks carry a ``resources`` frozenset; the EDF scheduler serializes
  tasks sharing a resource, and the schedule validator checks it);
* :func:`resource_parallel_sets` — a resource-aware refinement of the
  ADAPT-L parallel set: tasks that cannot overlap *because they share a
  resource* are removed from each other's parallel sets, since they
  contend for the resource rather than for a processor slot in the
  ADAPT-L sense, and additionally counted as serialized demand;
* :class:`ResourceAwareAdaptL` — ADAPT-L with parallel sets computed on
  the resource-constrained concurrency relation.
"""

from __future__ import annotations

from typing import Mapping

from ..core.metrics import AdaptiveParams, MetricState, _EqualShareMetric
from ..errors import ValidationError
from ..graph.algorithms import TransitiveClosure
from ..graph.task import Task
from ..graph.taskgraph import TaskGraph
from ..system.platform import Platform
from ..types import Time

__all__ = [
    "with_resources",
    "resource_usage",
    "resource_parallel_sets",
    "ResourceAwareAdaptL",
]


def with_resources(graph: TaskGraph, usage: Mapping[str, set[str]]) -> TaskGraph:
    """Return a copy of *graph* whose tasks carry the given resources.

    *usage* maps task id → set of resource names; unmentioned tasks
    keep their existing resource sets.
    """
    out = graph.copy()
    for tid, resources in usage.items():
        task = out.task(tid)
        out.replace_task(
            Task(
                id=task.id,
                wcet=task.wcet,
                phasing=task.phasing,
                relative_deadline=task.relative_deadline,
                period=task.period,
                label=task.label,
                resources=frozenset(resources),
            )
        )
    return out


def resource_usage(graph: TaskGraph) -> dict[str, list[str]]:
    """Resource name → sorted list of tasks using it."""
    out: dict[str, list[str]] = {}
    for task in graph.tasks():
        for res in task.resources:
            out.setdefault(res, []).append(task.id)
    for tasks in out.values():
        tasks.sort()
    return out


def resource_parallel_sets(graph: TaskGraph) -> dict[str, int]:
    """Effective contention of each task under resource exclusion.

    Starts from the precedence-based parallel set ``Psi_i`` and treats
    resource-sharing peers specially: a peer that shares a resource
    with ``tau_i`` cannot overlap it, yet it *delays* ``tau_i`` exactly
    like a same-processor competitor, so it still counts toward the
    contention figure.  The returned size is therefore
    ``|Psi_i|`` — tasks in ``Psi_i`` can either contend for processors
    (no shared resource) or for the resource itself (shared), and both
    groups cost laxity.  The refinement over plain ADAPT-L is that
    resource peers are counted at *full* weight even on an infinite
    machine, which :class:`ResourceAwareAdaptL` exploits by not
    dividing their contribution by ``m``.
    """
    closure = TransitiveClosure(graph)
    usage = resource_usage(graph)
    sizes: dict[str, int] = {}
    for task in graph.tasks():
        psi = closure.parallel_set(task.id)
        peers = set()
        for res in task.resources:
            peers.update(t for t in usage[res] if t != task.id)
        # split: processor-contenders vs resource-serialized peers
        serialized = psi & peers
        sizes[task.id] = len(psi - serialized) + len(serialized)
    return sizes


class ResourceAwareAdaptL(_EqualShareMetric):
    """ADAPT-L variant whose surplus accounts for resource serialization.

    ``ĉ_i = c̄_i (1 + k_L |Psi_i \\ S_i| / m + k_L |S_i|)`` for tasks at
    or above the threshold, where ``S_i`` are the parallel-set peers
    sharing a resource with ``tau_i``: processor contention amortizes
    over ``m`` processors, resource contention does not.
    """

    name = "ADAPT-L/R"
    uses_closure = True

    def __init__(self, params: AdaptiveParams | None = None) -> None:
        self.params = params or AdaptiveParams()

    def prepare(
        self,
        graph: TaskGraph,
        estimates: Mapping[str, Time],
        platform: Platform,
        *,
        closure: TransitiveClosure | None = None,
    ) -> MetricState:
        if platform.m < 1:
            raise ValidationError("platform must have at least one processor")
        if closure is None:
            closure = TransitiveClosure(graph)
        usage = resource_usage(graph)
        c_thres = self.params.threshold(estimates)
        k_l = self.params.k_l
        m = platform.m
        weights: dict[str, Time] = {}
        for task in graph.tasks():
            c = estimates[task.id]
            if c < c_thres:
                weights[task.id] = c
                continue
            psi = closure.parallel_set(task.id)
            peers: set[str] = set()
            for res in task.resources:
                peers.update(t for t in usage[res] if t != task.id)
            serialized = psi & peers
            surplus = k_l * (len(psi - serialized) / m + len(serialized))
            weights[task.id] = c * (1.0 + surplus)
        return MetricState(self.name, weights)
