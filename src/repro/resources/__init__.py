"""Shared-resource constraint extension (§7.3 future work)."""

from .model import (
    ResourceAwareAdaptL,
    resource_parallel_sets,
    resource_usage,
    with_resources,
)

__all__ = [
    "with_resources",
    "resource_usage",
    "resource_parallel_sets",
    "ResourceAwareAdaptL",
]
