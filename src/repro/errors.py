"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate the precise failure mode.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "CycleError",
    "ValidationError",
    "PlatformError",
    "EligibilityError",
    "DistributionError",
    "MetricError",
    "SchedulingError",
    "InfeasibleError",
    "WorkloadError",
    "ExperimentError",
    "SerializationError",
    "ServiceOverloadError",
    "StoreError",
    "FabricError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A task-graph structural operation failed."""


class CycleError(GraphError):
    """The task graph contains a precedence cycle (it must be a DAG)."""


class ValidationError(ReproError):
    """A model object failed validation against its invariants."""


class PlatformError(ReproError):
    """A platform/architecture model operation failed."""


class EligibilityError(PlatformError):
    """A task has no eligible processor class on the given platform."""


class DistributionError(ReproError):
    """The deadline-distribution (slicing) algorithm failed."""


class MetricError(ReproError):
    """A critical-path metric was configured or evaluated incorrectly."""


class SchedulingError(ReproError):
    """The scheduler was invoked on inconsistent inputs."""


class InfeasibleError(SchedulingError):
    """No feasible schedule exists for the given assignment.

    Raised only by APIs documented to raise on infeasibility; the
    standard scheduling entry points return a result object with
    ``feasible=False`` instead.
    """


class WorkloadError(ReproError):
    """The random workload generator received inconsistent parameters."""


class ExperimentError(ReproError):
    """An experiment specification or run failed."""


class SerializationError(ReproError):
    """(De)serialization of a model object failed."""


class ServiceOverloadError(ReproError):
    """The service's bounded work queue rejected a submission.

    Raised by :class:`repro.service.MicroBatcher` when its in-flight
    item budget (``max_queue``) is exhausted, and surfaced by the HTTP
    layer as ``429 Too Many Requests`` with a ``Retry-After`` header —
    the backpressure contract: shed load at the door instead of
    building an unbounded backlog.
    """


class StoreError(ReproError):
    """The persistent result store is malformed or was misused."""


class FabricError(ReproError):
    """The distributed sweep fabric (queue, lease, transport) failed."""
