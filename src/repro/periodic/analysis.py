"""Utilization analysis for periodic task sets (§3.3 substrate).

Quick capacity arithmetic for periodic workloads, preceding any
scheduling attempt:

* :func:`task_set_utilization` — ``U = Σ c̄_i / T_i`` (with ``c̄``
  the estimation-strategy summary of the WCET vector);
* :func:`utilization_bound_satisfied` — the necessary condition
  ``U ≤ m``: no platform of ``m`` processors can sustain a periodic
  set whose long-run demand rate exceeds its capacity, regardless of
  scheduler (preemptive or not);
* :func:`per_rate_breakdown` — demand per distinct period, the view a
  rate-monotonic-style design review starts from.
"""

from __future__ import annotations

from ..core.estimation import WCET_AVG, WcetEstimator, get_estimator
from ..errors import ValidationError
from ..graph.taskgraph import TaskGraph
from ..system.platform import Platform

__all__ = [
    "task_set_utilization",
    "utilization_bound_satisfied",
    "per_rate_breakdown",
]


def task_set_utilization(
    graph: TaskGraph,
    *,
    estimator: WcetEstimator | str = WCET_AVG,
    platform: Platform | None = None,
) -> float:
    """Long-run processor demand ``U = Σ c̄_i / T_i`` of a periodic set."""
    est = get_estimator(estimator)
    total = 0.0
    for task in graph.tasks():
        if task.period is None:
            raise ValidationError(
                f"task {task.id!r} is aperiodic; utilization is defined "
                "for periodic task sets"
            )
        total += est.estimate(task, platform) / task.period
    return total


def utilization_bound_satisfied(
    graph: TaskGraph,
    platform: Platform,
    *,
    estimator: WcetEstimator | str = WCET_AVG,
) -> bool:
    """The necessary condition ``U <= m`` (capacity, any scheduler).

    Uses the *optimistic* per-task summary (WCET-MIN would be the
    loosest necessary test; the default WCET-AVG is the paper's working
    estimate).  A ``False`` here means the periodic set overloads the
    machine in the long run; ``True`` guarantees nothing.
    """
    return task_set_utilization(
        graph, estimator=estimator, platform=platform
    ) <= platform.m + 1e-9


def per_rate_breakdown(
    graph: TaskGraph,
    *,
    estimator: WcetEstimator | str = WCET_AVG,
    platform: Platform | None = None,
) -> dict[float, float]:
    """Utilization contributed by each distinct period (rate group)."""
    est = get_estimator(estimator)
    out: dict[float, float] = {}
    for task in graph.tasks():
        if task.period is None:
            raise ValidationError(
                f"task {task.id!r} is aperiodic; rate breakdown is "
                "defined for periodic task sets"
            )
        out[task.period] = out.get(task.period, 0.0) + (
            est.estimate(task, platform) / task.period
        )
    return dict(sorted(out.items()))
