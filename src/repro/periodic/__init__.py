"""Periodic task-system machinery (§3.3) and jitter analysis (§1, I2)."""

from .analysis import (
    per_rate_breakdown,
    task_set_utilization,
    utilization_bound_satisfied,
)
from .jitter import JitterReport, precedence_release_bounds, start_jitter
from .planning import (
    Invocation,
    PlanningCycle,
    expand_multirate_graph,
    expand_periodic_graph,
    hyperperiod,
    invocations_within,
    planning_cycle,
)

__all__ = [
    "hyperperiod",
    "planning_cycle",
    "PlanningCycle",
    "Invocation",
    "invocations_within",
    "expand_periodic_graph",
    "expand_multirate_graph",
    "JitterReport",
    "start_jitter",
    "precedence_release_bounds",
    "task_set_utilization",
    "utilization_bound_satisfied",
    "per_rate_breakdown",
]
