"""Release-jitter analysis (implication I2, §1).

With conventional deadline assignment, a task's effective release time
depends on when its predecessors *actually* finish, which varies between
invocations and processors — release jitter.  The slicing technique
pins each task's arrival to its predecessor's absolute deadline, so the
release instant is a static quantity and precedence-induced jitter is
eliminated by construction.

This module quantifies both sides:

* :func:`start_jitter` — how far each task's actual start drifted past
  its assigned (static) arrival in a concrete schedule;
* :func:`precedence_release_bounds` — the spread between the
  earliest-possible and latest-possible data-ready time of each task if
  releases were driven by predecessor completions instead of slices
  (the jitter a non-slicing assignment would expose).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.assignment import DeadlineAssignment
from ..graph.taskgraph import TaskGraph
from ..sched.schedule import Schedule
from ..types import Time

__all__ = ["JitterReport", "start_jitter", "precedence_release_bounds"]


@dataclass(frozen=True)
class JitterReport:
    """Per-task jitter figures plus their maximum."""

    per_task: dict[str, Time]

    @property
    def maximum(self) -> Time:
        return max(self.per_task.values(), default=0.0)

    @property
    def mean(self) -> Time:
        if not self.per_task:
            return 0.0
        return sum(self.per_task.values()) / len(self.per_task)


def start_jitter(
    schedule: Schedule, assignment: DeadlineAssignment
) -> JitterReport:
    """Start drift ``s_i − a_i`` of every scheduled task.

    Under slicing this is bounded by the task's laxity; it measures
    contention-induced queueing, not precedence-induced release jitter
    (which slicing removes).
    """
    out: dict[str, Time] = {}
    for entry in schedule:
        if entry.task_id in assignment:
            out[entry.task_id] = entry.start - assignment.arrival(entry.task_id)
    return JitterReport(out)


def precedence_release_bounds(
    graph: TaskGraph,
    *,
    optimistic_cost: str = "min",
    pessimistic_cost: str = "max",
) -> JitterReport:
    """Release-jitter *potential* of each task without slicing.

    For every task, computes the spread between the earliest possible
    data-ready time (all ancestors run their fastest WCETs back to back)
    and the latest (all ancestors run their slowest WCETs sequentially
    along the longest chain).  This is the release window a
    completion-driven (non-slicing) design would have to absorb, and is
    zero exactly for input tasks.
    """

    def cost(tid: str, kind: str) -> Time:
        task = graph.task(tid)
        return task.min_wcet() if kind == "min" else task.max_wcet()

    earliest: dict[str, Time] = {}
    latest: dict[str, Time] = {}
    spread: dict[str, Time] = {}
    for tid in graph.topological_order():
        preds = graph.predecessors(tid)
        if not preds:
            earliest[tid] = graph.task(tid).phasing
            latest[tid] = graph.task(tid).phasing
        else:
            earliest[tid] = max(
                earliest[p] + cost(p, optimistic_cost) for p in preds
            )
            latest[tid] = max(
                latest[p] + cost(p, pessimistic_cost) for p in preds
            )
        spread[tid] = latest[tid] - earliest[tid]
    return JitterReport(spread)
