"""Planning-cycle (hyperperiod) analysis for periodic task systems (§3.3).

A periodic task system repeats; scheduling only needs to cover one
*planning cycle*:

* identical arrival times: ``P = [0, L)`` with ``L = lcm{T_i}``;
* arbitrary arrival times: ``P = [0, a + 2L)`` with
  ``a = max_i a_i`` (after normalizing ``min_i a_i = 0``).

Periods are handled as exact rationals (:class:`fractions.Fraction`), so
non-integer periods such as 2.5 still yield an exact LCM.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Iterable, Sequence

from ..errors import ValidationError
from ..graph.task import Task
from ..graph.taskgraph import TaskGraph
from ..types import Time

__all__ = [
    "hyperperiod",
    "planning_cycle",
    "PlanningCycle",
    "Invocation",
    "invocations_within",
    "expand_periodic_graph",
    "expand_multirate_graph",
]


def _to_fraction(value: float) -> Fraction:
    """Exact rational for a period value (tolerant of float literals)."""
    frac = Fraction(value).limit_denominator(10**9)
    if frac <= 0:
        raise ValidationError(f"period {value!r} must be positive")
    return frac


def _lcm_fractions(values: Iterable[Fraction]) -> Fraction:
    """LCM of rationals: lcm(numerators) / gcd(denominators)."""
    nums: list[int] = []
    dens: list[int] = []
    for v in values:
        nums.append(v.numerator)
        dens.append(v.denominator)
    if not nums:
        raise ValidationError("hyperperiod of an empty period set is undefined")
    num = nums[0]
    for n in nums[1:]:
        num = num * n // gcd(num, n)
    den = dens[0]
    for d in dens[1:]:
        den = gcd(den, d)
    return Fraction(num, den)


def hyperperiod(periods: Sequence[Time]) -> Time:
    """``L = lcm{T_i}`` for the given (positive, rational) periods."""
    return float(_lcm_fractions(_to_fraction(p) for p in periods))


@dataclass(frozen=True)
class PlanningCycle:
    """The interval ``[0, length)`` whose schedule repeats forever."""

    length: Time
    hyperperiod: Time
    max_arrival: Time

    @property
    def interval(self) -> tuple[Time, Time]:
        return (0.0, self.length)


def planning_cycle(tasks: Iterable[Task]) -> PlanningCycle:
    """Planning cycle of a periodic task set (§3.3).

    All tasks must be periodic.  Arrival times (phasings) are assumed
    normalized so the earliest is zero; callers with a nonzero origin
    should shift phasings first.
    """
    tasks = list(tasks)
    if not tasks:
        raise ValidationError("planning cycle of an empty task set is undefined")
    periods = []
    arrivals = []
    for t in tasks:
        if t.period is None:
            raise ValidationError(
                f"task {t.id!r} is aperiodic; the planning cycle is "
                "defined for periodic task sets"
            )
        periods.append(t.period)
        arrivals.append(t.phasing)
    lo = min(arrivals)
    if lo > 0.0:
        raise ValidationError(
            "phasings must be normalized so that min(a_i) == 0 "
            f"(got minimum {lo:g})"
        )
    L = hyperperiod(periods)
    a = max(arrivals)
    length = L if a == 0.0 else a + 2.0 * L
    return PlanningCycle(length=length, hyperperiod=L, max_arrival=a)


@dataclass(frozen=True)
class Invocation:
    """The ``k``-th instance of a periodic task within the planning cycle."""

    task_id: str
    k: int
    arrival: Time
    absolute_deadline: Time | None

    @property
    def uid(self) -> str:
        """Unique id of this instance, ``<task>#<k>``."""
        return f"{self.task_id}#{self.k}"


def invocations_within(task: Task, horizon: Time) -> list[Invocation]:
    """All invocations of *task* arriving in ``[0, horizon)``.

    ``a_i^k = phi_i + T_i (k−1)``; deadlines are ``a_i^k + d_i`` when
    the task has a relative deadline, else ``None``.
    """
    if horizon <= 0.0:
        return []
    out: list[Invocation] = []
    k = 1
    while True:
        a = task.arrival_of(k)
        if a >= horizon:
            break
        d = (
            a + task.relative_deadline
            if task.relative_deadline is not None
            else None
        )
        out.append(Invocation(task.id, k, a, d))
        if task.period is None:
            break
        k += 1
    return out


def expand_periodic_graph(graph: TaskGraph, horizon: Time) -> TaskGraph:
    """Unroll a single-rate periodic task graph over ``[0, horizon)``.

    Every task must share one common period (a *single-rate* system, the
    standard model for precedence-constrained periodic applications —
    precedence between different invocation indices is not defined).
    Invocation ``k`` of the whole graph is a copy whose tasks are named
    ``<task>#<k>``, with phasing shifted by ``(k−1)·T`` and all arcs and
    E-T-E pair deadlines replicated.  The copies form one aperiodic
    graph that the slicing + EDF pipeline can process directly.
    """
    tasks = list(graph.tasks())
    if not tasks:
        raise ValidationError("cannot expand an empty task graph")
    periods = {t.period for t in tasks}
    if len(periods) != 1 or None in periods:
        raise ValidationError(
            "expand_periodic_graph requires a single-rate system "
            f"(found periods {sorted(str(p) for p in periods)})"
        )
    period = tasks[0].period
    assert period is not None

    out = TaskGraph()
    k = 1
    while graph.task(tasks[0].id).phasing + period * (k - 1) < horizon:
        shift = period * (k - 1)
        for t in tasks:
            out.add_task(
                Task(
                    id=f"{t.id}#{k}",
                    wcet=t.wcet,
                    phasing=t.phasing + shift,
                    relative_deadline=t.relative_deadline,
                    period=None,
                    label=t.label,
                    resources=t.resources,
                )
            )
        for src, dst, size in graph.edges():
            out.add_edge(f"{src}#{k}", f"{dst}#{k}", size)
        for (a1, a2), d in graph.e2e_deadlines().items():
            out.set_e2e_deadline(f"{a1}#{k}", f"{a2}#{k}", d)
        k += 1
    return out


def expand_multirate_graph(
    graph: TaskGraph, horizon: Time | None = None
) -> TaskGraph:
    """Unroll a multi-rate periodic task set over ``[0, horizon)``.

    Generalizes :func:`expand_periodic_graph` to task sets whose
    *connected components* each run at a single rate (precedence arcs
    between tasks of different periods have no standard invocation
    semantics and are rejected).  Components unroll independently:
    component ``C`` with period ``T_C`` contributes ``horizon / T_C``
    copies.  *horizon* defaults to the task set's hyperperiod, giving
    one full planning cycle for identical arrival times.
    """
    tasks = list(graph.tasks())
    if not tasks:
        raise ValidationError("cannot expand an empty task graph")
    for t in tasks:
        if t.period is None:
            raise ValidationError(
                f"task {t.id!r} is aperiodic; multi-rate expansion needs "
                "periods on every task"
            )
    for src, dst, _ in graph.edges():
        if graph.task(src).period != graph.task(dst).period:
            raise ValidationError(
                f"arc ({src!r}, {dst!r}) connects tasks with different "
                "periods; cross-rate precedence is not defined"
            )

    if horizon is None:
        horizon = hyperperiod([t.period for t in tasks])

    # Partition into weakly connected components.
    component: dict[str, int] = {}
    next_id = 0
    for tid in graph.task_ids():
        if tid in component:
            continue
        stack = [tid]
        component[tid] = next_id
        while stack:
            node = stack.pop()
            for nbr in graph.successors(node) + graph.predecessors(node):
                if nbr not in component:
                    component[nbr] = next_id
                    stack.append(nbr)
        next_id += 1

    members: dict[int, list[str]] = {}
    for tid, comp in component.items():
        members.setdefault(comp, []).append(tid)

    out = TaskGraph()
    for comp_ids in members.values():
        sub = graph.subgraph(comp_ids)
        expanded = expand_periodic_graph(sub, horizon)
        for t in expanded.tasks():
            out.add_task(t)
        for src, dst, size in expanded.edges():
            out.add_edge(src, dst, size)
        for (a1, a2), d in expanded.e2e_deadlines().items():
            out.set_e2e_deadline(a1, a2, d)
    return out
