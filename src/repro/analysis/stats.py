"""Statistics for success-ratio experiments.

The paper's primary measure is the *success ratio* — the fraction of
randomly generated task sets that could be feasibly scheduled (§4.2).
That is a binomial proportion, so results carry Wilson score intervals:
unlike the normal approximation, Wilson behaves sensibly at ratios near
0 and 1, exactly where the interesting curves live (Figs. 2–4 span the
whole [0, 1] range).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["BinomialEstimate", "wilson_interval", "mean_std"]


def wilson_interval(
    successes: int, trials: int, *, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns the default 95% interval (``z = 1.96``) as ``(low, high)``.
    An empty sample yields the uninformative interval ``(0, 1)``.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(
            f"invalid binomial sample: {successes} successes in {trials} trials"
        )
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = p + z2 / (2.0 * trials)
    margin = z * math.sqrt(
        (p * (1.0 - p) + z2 / (4.0 * trials)) / trials
    )
    low = (centre - margin) / denom
    high = (centre + margin) / denom
    return (max(0.0, low), min(1.0, high))


@dataclass(frozen=True)
class BinomialEstimate:
    """A success-ratio estimate with its 95% Wilson interval."""

    successes: int
    trials: int

    def __post_init__(self) -> None:
        if not (0 <= self.successes <= self.trials):
            raise ValueError(
                f"invalid binomial sample: {self.successes}/{self.trials}"
            )

    @property
    def ratio(self) -> float:
        """Point estimate (0 for an empty sample)."""
        return self.successes / self.trials if self.trials else 0.0

    @property
    def interval(self) -> tuple[float, float]:
        return wilson_interval(self.successes, self.trials)

    def merged(self, other: "BinomialEstimate") -> "BinomialEstimate":
        """Pool two independent samples of the same proportion."""
        return BinomialEstimate(
            self.successes + other.successes, self.trials + other.trials
        )

    def __str__(self) -> str:
        lo, hi = self.interval
        return (
            f"{self.ratio:.3f} [{lo:.3f}, {hi:.3f}] "
            f"({self.successes}/{self.trials})"
        )


def mean_std(values: list[float]) -> tuple[float, float]:
    """Sample mean and (n−1) standard deviation; (nan, nan) when empty."""
    n = len(values)
    if n == 0:
        return (float("nan"), float("nan"))
    mean = sum(values) / n
    if n == 1:
        return (mean, 0.0)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return (mean, math.sqrt(var))
