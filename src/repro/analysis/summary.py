"""Structural summaries of workloads (diagnostics for experiments/docs).

:func:`summarize_workload` condenses a (graph, platform) pair into the
quantities that drive the paper's dynamics: size, depth, the level
width profile (whose burstiness is what separates the adaptive metrics
— see DESIGN.md §3a), the average parallelism ξ, workload totals and
communication intensity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.estimation import WCET_AVG, estimate_map
from ..graph.algorithms import (
    average_parallelism,
    graph_depth,
    level_assignment,
    longest_path_length,
)
from ..graph.taskgraph import TaskGraph
from ..system.platform import Platform
from .tables import format_table

__all__ = ["WorkloadSummary", "summarize_workload", "format_summary"]


@dataclass(frozen=True)
class WorkloadSummary:
    """Derived structural facts about one workload."""

    n_tasks: int
    n_edges: int
    depth: int
    level_widths: tuple[int, ...]
    total_workload: float
    longest_path: float
    parallelism: float
    mean_wcet: float
    mean_message_size: float
    n_inputs: int
    n_outputs: int
    m: int | None = None
    m_e: int | None = None
    ineligible_pairs: int = 0
    e2e_deadlines: tuple[float, ...] = field(default_factory=tuple)

    @property
    def max_width(self) -> int:
        return max(self.level_widths, default=0)

    @property
    def olr_estimate(self) -> float:
        """Observed deadline / total-workload ratio (cf. §5.2's OLR)."""
        if not self.e2e_deadlines or self.total_workload <= 0.0:
            return float("nan")
        return min(self.e2e_deadlines) / self.total_workload


def summarize_workload(
    graph: TaskGraph, platform: Platform | None = None
) -> WorkloadSummary:
    """Compute a :class:`WorkloadSummary` for *graph* (and *platform*)."""
    estimates = estimate_map(graph, WCET_AVG, platform)
    cost = lambda tid: estimates[tid]

    levels = level_assignment(graph)
    depth = graph_depth(graph)
    widths = [0] * depth
    for level in levels.values():
        widths[level] += 1

    sizes = [size for _, _, size in graph.edges()]
    ineligible = 0
    if platform is not None:
        used = set(platform.used_class_ids())
        for task in graph.tasks():
            ineligible += len(used - task.eligible_classes())

    return WorkloadSummary(
        n_tasks=graph.n_tasks,
        n_edges=graph.n_edges,
        depth=depth,
        level_widths=tuple(widths),
        total_workload=sum(estimates.values()),
        longest_path=longest_path_length(graph, cost),
        parallelism=average_parallelism(graph, cost),
        mean_wcet=sum(estimates.values()) / max(1, graph.n_tasks),
        mean_message_size=(sum(sizes) / len(sizes)) if sizes else 0.0,
        n_inputs=len(graph.input_tasks()),
        n_outputs=len(graph.output_tasks()),
        m=platform.m if platform is not None else None,
        m_e=platform.m_e if platform is not None else None,
        ineligible_pairs=ineligible,
        e2e_deadlines=tuple(sorted(graph.e2e_deadlines().values())),
    )


def format_summary(summary: WorkloadSummary) -> str:
    """Human-readable rendering of a :class:`WorkloadSummary`."""
    rows = [
        ["tasks", summary.n_tasks],
        ["edges", summary.n_edges],
        ["inputs / outputs", f"{summary.n_inputs} / {summary.n_outputs}"],
        ["depth (levels)", summary.depth],
        ["level widths", " ".join(str(w) for w in summary.level_widths)],
        ["max width", summary.max_width],
        ["total workload (c̄)", f"{summary.total_workload:.1f}"],
        ["longest path (c̄)", f"{summary.longest_path:.1f}"],
        ["avg parallelism ξ", f"{summary.parallelism:.2f}"],
        ["mean c̄", f"{summary.mean_wcet:.2f}"],
        ["mean message size", f"{summary.mean_message_size:.2f}"],
    ]
    if summary.m is not None:
        rows.append(["processors (m)", summary.m])
        rows.append(["classes (m_e)", summary.m_e])
        rows.append(["ineligible (task,class)", summary.ineligible_pairs])
    if summary.e2e_deadlines:
        rows.append(
            ["E-T-E deadline(s)",
             f"{summary.e2e_deadlines[0]:.1f}"
             + (f" .. {summary.e2e_deadlines[-1]:.1f}"
                if len(set(summary.e2e_deadlines)) > 1 else "")]
        )
        rows.append(["observed OLR", f"{summary.olr_estimate:.2f}"])
    return format_table(["property", "value"], rows)
