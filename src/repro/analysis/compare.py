"""Paired statistical comparison of two trial configurations.

The harness evaluates all series on the *same* workloads, so "is metric
A better than metric B?" is a paired question: only the *discordant*
workloads (A succeeds where B fails, or vice versa) carry information.
The exact sign test (the binomial special case of McNemar's test) gives
a p-value from those discordant counts alone — far more sensitive than
comparing two independent Wilson intervals, and exact at any sample
size.

Usage::

    from repro.analysis import paired_comparison
    from repro.experiments import TrialConfig
    from repro.experiments.runner import _cell_seeds

    seeds = _cell_seeds(2026, 0, 256)
    out = paired_comparison(config_adapt_l, config_pure, seeds)
    print(out.summary())
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.spec import TrialConfig

__all__ = ["PairedComparison", "paired_comparison", "sign_test_p_value"]


def sign_test_p_value(wins_a: int, wins_b: int) -> float:
    """Two-sided exact sign test on discordant pairs.

    Under the null (no difference), each discordant pair is a fair coin
    flip; the p-value is the probability of a split at least this
    extreme.  With no discordant pairs the test is uninformative (1.0).
    """
    if wins_a < 0 or wins_b < 0:
        raise ValueError("discordant counts must be non-negative")
    n = wins_a + wins_b
    if n == 0:
        return 1.0
    k = min(wins_a, wins_b)
    tail = sum(math.comb(n, i) for i in range(0, k + 1))
    p = 2.0 * tail / (2.0**n)
    return min(1.0, p)


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired A-vs-B success comparison."""

    label_a: str
    label_b: str
    trials: int
    both_succeed: int
    both_fail: int
    only_a: int  # A succeeds where B fails
    only_b: int  # B succeeds where A fails

    @property
    def ratio_a(self) -> float:
        return (self.both_succeed + self.only_a) / self.trials

    @property
    def ratio_b(self) -> float:
        return (self.both_succeed + self.only_b) / self.trials

    @property
    def discordant(self) -> int:
        return self.only_a + self.only_b

    @property
    def p_value(self) -> float:
        """Exact two-sided sign test on the discordant pairs."""
        return sign_test_p_value(self.only_a, self.only_b)

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the difference is significant at level *alpha*."""
        return self.p_value < alpha

    def summary(self) -> str:
        direction = (
            f"{self.label_a} > {self.label_b}"
            if self.only_a >= self.only_b
            else f"{self.label_b} > {self.label_a}"
        )
        return (
            f"{self.label_a}: {self.ratio_a:.3f}  "
            f"{self.label_b}: {self.ratio_b:.3f}  "
            f"(discordant {self.only_a}:{self.only_b}, "
            f"sign test p={self.p_value:.2g}, {direction})"
        )


def paired_comparison(
    config_a: "TrialConfig",
    config_b: "TrialConfig",
    seeds: Sequence[int],
    *,
    label_a: str | None = None,
    label_b: str | None = None,
) -> PairedComparison:
    """Run both configurations on the same seeds and compare success.

    The two configurations must not change workload *generation*
    differently (same `workload` parameters) for the pairing to be
    meaningful; the harness's own series obey this by construction, and
    this function checks it.
    """
    from ..errors import ExperimentError
    from ..experiments.runner import run_trial

    if config_a.workload != config_b.workload:
        raise ExperimentError(
            "paired comparison requires identical workload parameters "
            "(the pairing is over generated workloads)"
        )
    if not seeds:
        raise ExperimentError("need at least one seed")

    both = neither = only_a = only_b = 0
    for seed in seeds:
        a = run_trial(config_a, seed).success
        b = run_trial(config_b, seed).success
        if a and b:
            both += 1
        elif a:
            only_a += 1
        elif b:
            only_b += 1
        else:
            neither += 1
    return PairedComparison(
        label_a=label_a or config_a.metric,
        label_b=label_b or config_b.metric,
        trials=len(seeds),
        both_succeed=both,
        both_fail=neither,
        only_a=only_a,
        only_b=only_b,
    )
