"""Result statistics and report formatting."""

from .bounds import (
    InfeasibilityWitness,
    find_infeasibility,
    is_certainly_infeasible,
)
from .compare import PairedComparison, paired_comparison, sign_test_p_value
from .series import ascii_chart
from .stats import BinomialEstimate, mean_std, wilson_interval
from .summary import WorkloadSummary, format_summary, summarize_workload
from .tables import format_markdown_table, format_table

__all__ = [
    "BinomialEstimate",
    "wilson_interval",
    "mean_std",
    "format_table",
    "format_markdown_table",
    "ascii_chart",
    "WorkloadSummary",
    "summarize_workload",
    "format_summary",
    "InfeasibilityWitness",
    "find_infeasibility",
    "is_certainly_infeasible",
    "PairedComparison",
    "paired_comparison",
    "sign_test_p_value",
]
