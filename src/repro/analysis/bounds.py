"""Analytical necessary conditions for window feasibility.

Quick infeasibility screens for a deadline assignment, all *necessary*
conditions: when any of them fails, **no** non-preemptive (indeed, no
preemptive) schedule can meet every window on the platform, so the
branch-and-bound search must also prove infeasibility — a cross-check
the test suite exercises.  When all pass, feasibility is still not
guaranteed (the conditions ignore non-preemption and task shapes).

Checks, in increasing cost:

1. **window fit** — every task's window must cover its fastest
   execution: `d_i ≥ min_k c_i[e_k]` over eligible classes present on
   the platform;
2. **precedence fit** — along every arc, the successor's deadline must
   leave room after the predecessor's earliest possible finish (with
   zero communication, the optimistic case);
3. **interval demand** — for every critical interval `[s, t]` (formed
   by arrival/deadline pairs), the work that *must* execute inside it
   (tasks with `[a_i, D_i] ⊆ [s, t]`, counted at their fastest rate)
   cannot exceed the platform capacity `m · (t − s)`.  This is the
   classical demand-bound/load argument adapted to windows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.assignment import DeadlineAssignment
from ..errors import SchedulingError
from ..graph.taskgraph import TaskGraph
from ..system.platform import Platform
from ..types import Time

__all__ = ["InfeasibilityWitness", "find_infeasibility", "is_certainly_infeasible"]


@dataclass(frozen=True)
class InfeasibilityWitness:
    """A proof that no schedule can meet the windows."""

    kind: str  # "window-fit" | "precedence-fit" | "interval-demand"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}: {self.detail}"


def find_infeasibility(
    graph: TaskGraph,
    platform: Platform,
    assignment: DeadlineAssignment,
) -> InfeasibilityWitness | None:
    """Return a witness of certain infeasibility, or ``None``.

    ``None`` means "not provably infeasible by these tests", not
    "feasible".
    """
    used = set(platform.used_class_ids())
    fastest: dict[str, Time] = {}
    for task in graph.tasks():
        times = [c for cls, c in task.wcet.items() if cls in used]
        if not times:
            return InfeasibilityWitness(
                "window-fit",
                f"task {task.id!r} has no eligible processor class",
            )
        fastest[task.id] = min(times)

    # 1. Window fit.
    for tid in graph.task_ids():
        if tid not in assignment:
            raise SchedulingError(f"task {tid!r} has no assigned window")
        w = assignment.window(tid)
        if fastest[tid] > w.relative_deadline + 1e-9:
            return InfeasibilityWitness(
                "window-fit",
                f"task {tid!r} needs {fastest[tid]:g} but its window is "
                f"{w.relative_deadline:g} long",
            )

    # 2. Precedence fit (optimistic earliest finishes, zero comm).
    earliest_finish: dict[str, Time] = {}
    for tid in graph.topological_order():
        w = assignment.window(tid)
        start = w.arrival
        for pred in graph.predecessors(tid):
            if earliest_finish[pred] > start:
                start = earliest_finish[pred]
        finish = start + fastest[tid]
        earliest_finish[tid] = finish
        if finish > w.absolute_deadline + 1e-9:
            return InfeasibilityWitness(
                "precedence-fit",
                f"task {tid!r} cannot finish before {finish:g} even with "
                f"fastest predecessors, but its deadline is "
                f"{w.absolute_deadline:g}",
            )

    # 3. Interval demand.
    arrivals = sorted({assignment.arrival(t) for t in graph.task_ids()})
    deadlines = sorted(
        {assignment.absolute_deadline(t) for t in graph.task_ids()}
    )
    m = platform.m
    tasks = [
        (assignment.arrival(t), assignment.absolute_deadline(t), fastest[t], t)
        for t in graph.task_ids()
    ]
    for s in arrivals:
        for t in deadlines:
            if t <= s:
                continue
            demand = 0.0
            for a, d, c, _tid in tasks:
                if a >= s - 1e-9 and d <= t + 1e-9:
                    demand += c
            if demand > m * (t - s) + 1e-6:
                return InfeasibilityWitness(
                    "interval-demand",
                    f"interval [{s:g}, {t:g}] must absorb {demand:g} work "
                    f"but offers only {m * (t - s):g} processor time",
                )
    return None


def is_certainly_infeasible(
    graph: TaskGraph,
    platform: Platform,
    assignment: DeadlineAssignment,
) -> bool:
    """Whether the windows are provably unschedulable on the platform."""
    return find_infeasibility(graph, platform, assignment) is not None
