"""ASCII rendering of success-ratio curves (Figs. 2–6 in the terminal)."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_chart"]

_MARKS = "ox+*#@%&"


def ascii_chart(
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    height: int = 16,
    y_label: str = "success ratio",
    y_max: float = 1.0,
) -> str:
    """Plot one or more series over a shared categorical x axis.

    Values are clipped to ``[0, y_max]``.  Each series gets a marker
    from a fixed cycle; collisions at the same cell show the later
    series' marker.  This is a reporting aid, not used by any algorithm.
    """
    if height < 2:
        raise ValueError("chart height must be at least 2")
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points for "
                f"{len(x_values)} x values"
            )
    n = len(x_values)
    if n == 0:
        return "(no data)"
    col_w = max(3, max(len(str(x)) for x in x_values) + 1)
    grid = [[" "] * (n * col_w) for _ in range(height)]
    for si, name in enumerate(names):
        mark = _MARKS[si % len(_MARKS)]
        for xi, v in enumerate(series[name]):
            vv = min(max(v, 0.0), y_max)
            row = height - 1 - int(round(vv / y_max * (height - 1)))
            col = xi * col_w + col_w // 2
            grid[row][col] = mark
    lines = []
    for ri, row in enumerate(grid):
        frac = (height - 1 - ri) / (height - 1) * y_max
        prefix = f"{frac:4.2f} |"
        lines.append(prefix + "".join(row).rstrip())
    lines.append("     +" + "-" * (n * col_w))
    axis = "      "
    for x in x_values:
        axis += str(x).center(col_w)
    lines.append(axis.rstrip())
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(names)
    )
    lines.append(f"      [{y_label}]  {legend}")
    return "\n".join(lines)
