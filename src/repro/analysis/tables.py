"""Plain-text and Markdown table formatting for experiment reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_markdown_table"]


def _stringify(rows: Sequence[Sequence[object]]) -> list[list[str]]:
    return [[_cell(c) for c in row] for row in rows]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width text table with a header rule."""
    srows = _stringify(rows)
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in srows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """GitHub-flavoured Markdown table."""
    srows = _stringify(rows)
    for row in srows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in srows:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)
