"""repro — reproduction of Jonsson's adaptive deadline-assignment paper.

A full implementation of the slicing technique for distributing
end-to-end deadlines over precedence-constrained tasks in heterogeneous
distributed hard real-time systems, with the four critical-path metrics
(PURE, NORM, ADAPT-G, ADAPT-L), the WCET estimation strategies, the
baseline non-preemptive EDF list scheduler, the random workload
generator and the full experiment harness of:

    Jan Jonsson, "A Robust Adaptive Metric for Deadline Assignment in
    Heterogeneous Distributed Real-Time Systems", IPPS 1999.

Quick start::

    from repro import (
        GraphBuilder, identical_platform, distribute_deadlines, schedule_edf,
    )

    graph = (GraphBuilder()
             .task("a", 10).task("b", 20).task("c", 15)
             .edge("a", "b").edge("b", "c")
             .e2e("a", "c", 90)
             .build())
    platform = identical_platform(2)
    assignment = distribute_deadlines(graph, platform, metric="ADAPT-L")
    schedule = schedule_edf(graph, platform, assignment)
    assert schedule.feasible
"""

from .core import (
    METRIC_NAMES,
    WCET_AVG,
    WCET_MAX,
    WCET_MIN,
    AdaptGMetric,
    AdaptiveParams,
    AdaptLMetric,
    DeadlineAssignment,
    NormMetric,
    PureMetric,
    TaskWindow,
    distribute_deadlines,
    estimate_map,
    get_estimator,
    get_metric,
)
from .errors import ReproError
from .graph import (
    GraphBuilder,
    Task,
    TaskGraph,
    chain_graph,
    diamond_graph,
    fork_join_graph,
)
from .sched import (
    EdfListScheduler,
    Schedule,
    render_gantt,
    schedule_edf,
    validate_schedule,
)
from .system import (
    ContentionBus,
    Platform,
    Processor,
    ProcessorClass,
    SharedBus,
    identical_platform,
)
from .workload import WorkloadParams, generate_workload, paper_defaults

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # graph
    "Task",
    "TaskGraph",
    "GraphBuilder",
    "chain_graph",
    "fork_join_graph",
    "diamond_graph",
    # system
    "Platform",
    "Processor",
    "ProcessorClass",
    "SharedBus",
    "ContentionBus",
    "identical_platform",
    # core
    "distribute_deadlines",
    "DeadlineAssignment",
    "TaskWindow",
    "AdaptiveParams",
    "PureMetric",
    "NormMetric",
    "AdaptGMetric",
    "AdaptLMetric",
    "get_metric",
    "METRIC_NAMES",
    "WCET_AVG",
    "WCET_MAX",
    "WCET_MIN",
    "get_estimator",
    "estimate_map",
    # sched
    "EdfListScheduler",
    "schedule_edf",
    "Schedule",
    "validate_schedule",
    "render_gantt",
    # workload
    "WorkloadParams",
    "generate_workload",
    "paper_defaults",
]
