"""Command-line entry point: figures (default) and the online service.

Two subcommands share one ``repro`` entry point:

* ``figures`` (the default when the first argument is not a subcommand
  name, so every historical invocation keeps working)::

      repro-figures --list
      repro-figures fig2 --trials 256 --jobs 8
      python -m repro --all --trials 1024 --out results/
      python -m repro figures fig3 fig4

* ``serve`` — run the online deadline-assignment HTTP service::

      python -m repro serve --port 8077
      curl -s localhost:8077/healthz

Each figures run prints the success-ratio table and an ASCII chart,
and — when ``--out`` is given — writes ``<figure>.json``,
``<figure>.csv`` and ``<figure>.md`` into the output directory.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..errors import ReproError
from ..experiments.figures import FIGURES, get_figure_spec
from ..experiments.report import (
    render_report,
    result_markdown,
    save_csv,
    save_json,
)
from ..experiments.runner import run_experiment

__all__ = [
    "main",
    "build_parser",
    "build_serve_parser",
    "figures_main",
    "serve_main",
]

#: First-argument tokens routed to a dedicated subcommand parser.
#: ``experiment`` is an alias of ``figures`` — the subcommand runs any
#: experiment (declarative --config documents included), not only the
#: paper's figures.
SUBCOMMANDS = ("figures", "experiment", "serve", "sweep", "store")


def build_parser() -> argparse.ArgumentParser:
    """The ``figures`` subcommand parser (also the historical CLI)."""
    parser = argparse.ArgumentParser(
        prog="repro-figures",
        description=(
            "Reproduce the evaluation figures of 'A Robust Adaptive "
            "Metric for Deadline Assignment in Heterogeneous Distributed "
            "Real-Time Systems' (Jonsson, IPPS 1999)."
        ),
        epilog=(
            "Subcommands: 'figures' (this, the default), 'serve' (online "
            "deadline-assignment HTTP service), 'sweep' (distributed "
            "multi-worker experiment execution) and 'store' (result-store "
            "inspection/repair); see 'python -m repro <cmd> --help'."
        ),
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help=f"experiment ids to run (available: {', '.join(sorted(FIGURES))})",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every registered experiment"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--config",
        type=Path,
        action="append",
        default=[],
        metavar="FILE",
        help="run a declarative experiment from a JSON document "
        "(repeatable; see repro.experiments.config)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=1024,
        help="trials per cell (paper: 1024 task graphs; default 1024)",
    )
    parser.add_argument(
        "--seed", type=int, default=2026, help="experiment root seed"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: CPU count; 1 = serial)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=32,
        help="trials per worker unit (default 32; results are invariant)",
    )
    parser.add_argument(
        "--engine",
        choices=("paired", "paired-ref", "percell"),
        default="paired",
        help="execution engine: 'paired' generates each workload once per "
        "sweep point and judges it with every series (default); "
        "'paired-ref' is the same engine pinned to the string-keyed "
        "reference pipeline instead of the compiled kernel (the oracle; "
        "see also REPRO_KERNEL=0); 'percell' is the historical "
        "one-unit-per-cell engine (results are bit-identical either way)",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        metavar="DIR",
        help="persistent result store: completed (cell, seed-chunk) "
        "partials are restored instead of recomputed, so warm re-runs, "
        "resumed sweeps and added series skip finished work (results "
        "are bit-identical to uncached runs)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for JSON/CSV/Markdown result files",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="after running, fold every result in --out into REPORT.md",
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``serve`` subcommand parser."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the online deadline-assignment service: POST /assign "
            "(slices + optional admission verdict), GET /healthz, "
            "GET /metrics (Prometheus text)."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8077,
        help="TCP port (0 picks a free port; default 8077)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="LRU budget for cached assignments (default 1024)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="persist computed assignments to a result store in DIR; a "
        "restarted service pointed at the same directory starts warm",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help="largest micro-batch handed to the worker pool (default 8)",
    )
    parser.add_argument(
        "--batch-wait",
        type=float,
        default=0.002,
        help="max seconds a batch waits for more requests (default 0.002)",
    )
    # Imported lazily everywhere else, but the parser default must be
    # computed at build time so --help shows the real value.
    from ..service.pool import default_workers

    parser.add_argument(
        "--workers",
        type=int,
        default=default_workers(),
        help="worker processes serving assignments (default "
        "min(cpu_count, 4)); 1 runs the in-process single-server path",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=4,
        help="micro-batcher threads per worker process (default 4)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=0,
        help="bound on in-flight computations before requests are shed "
        "with 429 (0 = unbounded, the default)",
    )
    parser.add_argument(
        "--retry-after",
        type=int,
        default=1,
        help="Retry-After seconds advertised on 429 responses (default 1)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="seconds to wait for in-flight requests on shutdown before "
        "failing them (default 5.0)",
    )
    return parser


def serve_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro serve``.

    ``--workers 1`` serves in-process on the stdlib threading server
    (today's exact path); ``--workers N`` pre-forks N assignment worker
    processes behind the asyncio front end.  Service knobs are
    validated up front in either case, so a bad ``--cache-size`` fails
    fast instead of inside a spawned worker.
    """
    args = build_serve_parser().parse_args(argv)
    from ..service import DeadlineAssignmentService, create_server

    if args.workers < 1:
        print(
            f"error: --workers must be at least 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    max_queue = args.max_queue if args.max_queue > 0 else None
    try:
        service = DeadlineAssignmentService(
            cache_size=args.cache_size,
            batch_size=args.batch_size,
            batch_wait=args.batch_wait,
            workers=args.threads,
            max_queue=max_queue,
            cache_dir=args.cache_dir,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.workers > 1:
        service.close()
        return _serve_pooled(args, max_queue)
    try:
        server = create_server(
            args.host, args.port, service, retry_after=args.retry_after
        )
    except OSError as exc:
        print(
            f"error: cannot bind {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        service.close()
        return 1
    host, port = server.server_address[:2]
    print(
        f"repro deadline-assignment service on http://{host}:{port} "
        "(POST /assign, GET /healthz, GET /metrics; Ctrl-C to stop)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
        service.close(timeout=args.drain_timeout)
    return 0


def _serve_pooled(args, max_queue: int | None) -> int:
    """Run the asyncio front end over a pre-forked worker pool."""
    import threading

    from ..service import PooledFrontend, WorkerPool

    pool = WorkerPool(
        args.workers,
        cache_size=args.cache_size,
        batch_size=args.batch_size,
        batch_wait=args.batch_wait,
        threads=args.threads,
        max_queue=max_queue,
        cache_dir=args.cache_dir,
    )
    frontend = PooledFrontend(
        pool,
        host=args.host,
        port=args.port,
        retry_after=args.retry_after,
    )
    try:
        frontend.start()
    except OSError as exc:
        print(
            f"error: cannot bind {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    host, port = frontend.address
    print(
        f"repro deadline-assignment service on http://{host}:{port} "
        f"({args.workers} worker processes; POST /assign, GET /healthz, "
        "GET /metrics; Ctrl-C to stop)"
    )
    try:
        threading.Event().wait()  # serve until interrupted
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        frontend.close(timeout=args.drain_timeout)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Dispatch to a subcommand; bare arguments run ``figures``."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "sweep":
        from .sweep_tool import sweep_main

        return sweep_main(argv[1:])
    if argv and argv[0] == "store":
        from .store_tool import store_main

        return store_main(argv[1:])
    if argv and argv[0] in ("figures", "experiment"):
        argv = argv[1:]
    return figures_main(argv)


def _cache_summary(stats) -> str:
    """One-line result-store summary printed under each experiment report.

    Surfaces reuse without making anyone read JSON: how many chunk
    partials were restored vs. computed this run, and the store's
    resulting size.
    """
    return (
        f"cache: {stats.hits} restored / {stats.misses} computed "
        f"chunk partials ({stats.hit_rate:.0%} hit rate), "
        f"{stats.appends} appended; store now {stats.records} records, "
        f"{stats.bytes / 1024:.1f} KiB"
    )


def figures_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``figures`` subcommand."""
    args = build_parser().parse_args(argv)

    if args.list:
        for name in sorted(FIGURES):
            spec = get_figure_spec(name)
            print(f"{name:10s} {spec.title} ({spec.paper_reference})")
        return 0

    names: list[object] = list(
        sorted(FIGURES) if args.all else args.figures
    )
    names.extend(args.config)
    if not names:
        print(
            "nothing to do: name experiments, use --config, or --all / --list",
            file=sys.stderr,
        )
        return 2

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    store = None
    if args.cache is not None:
        from ..store import TrialStore

        try:
            store = TrialStore(args.cache)
        except ReproError as exc:
            print(f"error opening cache {args.cache}: {exc}", file=sys.stderr)
            return 2

    status = 0
    for name in names:
        try:
            if isinstance(name, Path):
                from ..experiments.config import load_spec

                spec = load_spec(name)
                name = spec.name
            else:
                spec = get_figure_spec(name)
            result = run_experiment(
                spec,
                trials=args.trials,
                seed=args.seed,
                jobs=args.jobs,
                chunk_size=args.chunk_size,
                engine=args.engine,
                cache=store,
            )
        except ReproError as exc:
            print(f"error running {name!r}: {exc}", file=sys.stderr)
            status = 1
            continue
        print(render_report(result))
        if result.cache_stats is not None:
            print(_cache_summary(result.cache_stats))
        print()
        if args.out is not None:
            save_json(result, args.out / f"{name}.json")
            save_csv(result, args.out / f"{name}.csv")
            (args.out / f"{name}.md").write_text(
                f"### {result.title}\n\n{result_markdown(result)}\n"
            )
    if store is not None:
        store.close()

    if args.report:
        if args.out is None:
            print("--report requires --out", file=sys.stderr)
            return 2
        from ..experiments.reportcard import build_report

        try:
            report = build_report(args.out)
        except ReproError as exc:
            print(f"error building report: {exc}", file=sys.stderr)
            return 1
        (args.out / "REPORT.md").write_text(report + "\n")
        print(f"wrote combined report to {args.out / 'REPORT.md'}")
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
