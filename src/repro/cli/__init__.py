"""Command-line interfaces (``repro-figures``, ``repro-workload``,
``repro serve``, ``repro sweep``, ``repro store``)."""

from .main import build_parser, build_serve_parser, figures_main, main, serve_main
from .store_tool import build_store_parser, store_main
from .sweep_tool import build_sweep_parser, sweep_main
from .workload_tool import build_parser as build_workload_parser
from .workload_tool import main as workload_main

__all__ = [
    "main",
    "build_parser",
    "build_serve_parser",
    "build_store_parser",
    "build_sweep_parser",
    "figures_main",
    "serve_main",
    "store_main",
    "sweep_main",
    "workload_main",
    "build_workload_parser",
]
