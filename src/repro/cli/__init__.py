"""Command-line interfaces (``repro-figures``, ``repro-workload``)."""

from .main import build_parser, main
from .workload_tool import build_parser as build_workload_parser
from .workload_tool import main as workload_main

__all__ = ["main", "build_parser", "workload_main", "build_workload_parser"]
