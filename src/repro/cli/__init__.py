"""Command-line interfaces (``repro-figures``, ``repro-workload``, ``repro serve``)."""

from .main import build_parser, build_serve_parser, figures_main, main, serve_main
from .workload_tool import build_parser as build_workload_parser
from .workload_tool import main as workload_main

__all__ = [
    "main",
    "build_parser",
    "build_serve_parser",
    "figures_main",
    "serve_main",
    "workload_main",
    "build_workload_parser",
]
