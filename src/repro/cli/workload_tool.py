"""``repro-workload`` — inspect one random workload end to end.

A debugging/teaching companion to ``repro-figures``: generates a single
workload from the paper's generator (or loads a task-graph JSON),
prints its structural summary, runs the chosen metric's deadline
distribution, schedules it with the EDF baseline, and renders the
result — with optional JSON/DOT/trace exports.

Usage::

    repro-workload --seed 7 --m 3 --metric ADAPT-L
    repro-workload --seed 7 --olr 0.6 --all-metrics
    repro-workload --graph app.json --m 4 --out-dir dump/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..analysis import (
    find_infeasibility,
    format_summary,
    format_table,
    summarize_workload,
)
from ..core import METRIC_NAMES, distribute_deadlines, estimate_map
from ..errors import ReproError
from ..graph import load_graph, save_graph, to_dot
from ..rng import make_rng
from ..sched import render_gantt, save_trace_csv, schedule_edf
from ..workload import WorkloadParams, generate_platform, generate_workload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-workload",
        description="Generate, slice, schedule and inspect one workload.",
    )
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--m", type=int, default=3, help="processors")
    parser.add_argument("--olr", type=float, default=0.8)
    parser.add_argument("--etd", type=float, default=0.25)
    parser.add_argument("--ccr", type=float, default=0.1)
    parser.add_argument(
        "--graph",
        type=Path,
        default=None,
        help="load this task-graph JSON instead of generating one",
    )
    parser.add_argument(
        "--metric",
        default="ADAPT-L",
        help="critical-path metric (PURE/NORM/ADAPT-G/ADAPT-L)",
    )
    parser.add_argument(
        "--all-metrics",
        action="store_true",
        help="compare all four metrics instead of scheduling one",
    )
    parser.add_argument(
        "--estimator", default="WCET-AVG", help="WCET estimation strategy"
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=None,
        help="write graph.json, graph.dot and schedule.csv here",
    )
    parser.add_argument(
        "--gantt-width", type=int, default=72, help="Gantt chart width"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _run(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run(args: argparse.Namespace) -> int:
    params = WorkloadParams(
        m=args.m, olr=args.olr, etd=args.etd, ccr=args.ccr
    )
    rng = make_rng(args.seed)
    if args.graph is not None:
        graph = load_graph(args.graph)
        platform = generate_platform(params, rng)
    else:
        workload = generate_workload(params, rng)
        graph, platform = workload.graph, workload.platform

    print(format_summary(summarize_workload(graph, platform)))
    print()

    if args.all_metrics:
        estimates = estimate_map(graph, args.estimator, platform)
        rows = []
        for metric in METRIC_NAMES:
            assignment = distribute_deadlines(
                graph, platform, metric,
                estimator=args.estimator, estimates=estimates,
            )
            schedule = schedule_edf(graph, platform, assignment)
            witness = find_infeasibility(graph, platform, assignment)
            rows.append(
                [
                    metric,
                    "yes" if schedule.feasible else "NO",
                    f"{assignment.min_laxity(estimates):.1f}",
                    "yes" if witness else "no",
                ]
            )
        print(
            format_table(
                ["metric", "feasible", "min laxity", "provably infeasible"],
                rows,
            )
        )
        return 0

    assignment = distribute_deadlines(
        graph, platform, args.metric, estimator=args.estimator
    )
    witness = find_infeasibility(graph, platform, assignment)
    if witness is not None:
        print(f"analytical screen: {witness}")
    schedule = schedule_edf(graph, platform, assignment)
    print(render_gantt(schedule, platform, width=args.gantt_width))

    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)
        save_graph(graph, args.out_dir / "graph.json")
        (args.out_dir / "graph.dot").write_text(
            to_dot(
                graph,
                windows={
                    tid: (w.arrival, w.absolute_deadline)
                    for tid, w in assignment.windows.items()
                },
            )
        )
        save_trace_csv(schedule, args.out_dir / "schedule.csv")
        print(f"\nwrote graph.json, graph.dot, schedule.csv to {args.out_dir}")
    return 0 if schedule.feasible else 3


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
