"""``repro store`` — operator tooling for shared result stores.

Distributed sweeps leave many processes (and hosts) appending to one
store directory; this subcommand lets an operator inspect and repair
that store without writing Python::

    repro store stats DIR              # record/byte counts per store
    repro store verify DIR             # line-level integrity scan
    repro store compact DIR            # dedupe + drop torn lines
    repro store compact DIR --max-bytes 10000000   # ...and evict to fit

``verify`` exits non-zero only on *real* corruption (undecodable
interior lines); torn tails and duplicates are normal post-crash /
pre-compaction states and are reported without failing, so the command
can gate cron jobs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..errors import ReproError
from ..store import TrialStore

__all__ = ["build_store_parser", "store_main"]


def build_store_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro store",
        description=(
            "Inspect and repair a persistent result store "
            "(the --cache / --store directory of sweeps and the service)."
        ),
    )
    sub = parser.add_subparsers(dest="action", required=True)

    stats = sub.add_parser("stats", help="record and byte counts")
    stats.add_argument("root", type=Path, help="store directory")

    verify = sub.add_parser("verify", help="line-level integrity scan")
    verify.add_argument("root", type=Path, help="store directory")

    compact = sub.add_parser(
        "compact",
        help="rewrite segments deduplicated; optionally evict to a budget",
    )
    compact.add_argument("root", type=Path, help="store directory")
    compact.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="evict oldest records until the store fits in N bytes",
    )
    return parser


def _open(root: Path) -> TrialStore:
    if not (root / "MANIFEST.json").exists():
        raise ReproError(
            f"{root} is not a result store (no MANIFEST.json); "
            "refusing to create one implicitly"
        )
    return TrialStore(root)


def store_main(argv: list[str] | None = None) -> int:
    args = build_store_parser().parse_args(argv)
    try:
        store = _open(args.root)
        if args.action == "stats":
            report = store.verify()
            print(f"store: {args.root}")
            print(
                f"  {report['unique']} unique records in "
                f"{report['shards']} segment(s), "
                f"{report['bytes'] / 1024:.1f} KiB"
            )
            overhead = (
                report["duplicates"] + report["torn"] + report["invalid"]
            )
            if overhead:
                print(
                    f"  {report['duplicates']} duplicate / "
                    f"{report['torn']} torn / {report['invalid']} invalid "
                    "line(s) — 'repro store compact' reclaims them"
                )
            return 0
        if args.action == "verify":
            report = store.verify()
            for field in (
                "shards",
                "bytes",
                "records",
                "unique",
                "duplicates",
                "misplaced",
                "torn",
                "invalid",
            ):
                print(f"{field:12s} {report[field]}")
            if report["invalid"] or report["misplaced"]:
                print(
                    "CORRUPT: store has invalid or misplaced records",
                    file=sys.stderr,
                )
                return 1
            return 0
        # compact
        before = store.total_bytes()
        evicted = store.compact(max_bytes=args.max_bytes)
        after = store.total_bytes()
        print(
            f"compacted {args.root}: {before} -> {after} bytes "
            f"({evicted} record(s) evicted)"
        )
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(store_main())
