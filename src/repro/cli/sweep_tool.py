"""``repro sweep`` — distributed experiment execution (the fabric CLI).

Coordinator (shards the experiment, runs local workers, merges)::

    repro sweep fig2 --trials 1024 --store results.store --workers 8

Coordinator that also serves remote workers over HTTP::

    repro sweep fig2 --store results.store --workers 2 \\
        --serve --port 8078

Remote worker (any host that can reach the coordinator)::

    repro sweep --connect http://coordinator:8078 --workers 3

The merged result is bit-identical to a single-process
``repro experiment`` run; killed workers are survived via lease
expiry, and re-running the same sweep against the same store resumes
instead of recomputing (see :mod:`repro.fabric`).
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
from pathlib import Path

from ..errors import ReproError

__all__ = ["build_sweep_parser", "sweep_main"]


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description=(
            "Run an experiment sweep on the distributed fabric: a "
            "coordinator shards (cell, seed-chunk) units into a durable "
            "queue over a shared result store; workers lease, compute, "
            "and commit them.  Results are bit-identical to "
            "single-process 'repro experiment' runs."
        ),
    )
    parser.add_argument(
        "figure",
        nargs="?",
        default=None,
        metavar="FIGURE",
        help="experiment id to sweep (e.g. fig2); omit with --config "
        "or --connect",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        metavar="FILE",
        help="declarative experiment JSON instead of a figure id",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="DIR",
        help="shared result store; the sweep's queue lives in "
        "DIR/fabric/<sweep-id> (required unless --connect)",
    )
    parser.add_argument(
        "--trials", type=int, default=1024, help="trials per cell"
    )
    parser.add_argument(
        "--seed", type=int, default=2026, help="experiment root seed"
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="trials per work unit (default: auto — sized to fill the "
        "vectorized kernel's batch lanes; results are invariant)",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=None,
        help="units a worker leases and group-commits per protocol "
        "round trip (default 16)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="local worker processes (default: CPU count; 0 = none — "
        "compute inline, or with --serve wait for remote workers). "
        "In --connect mode: worker threads",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="seconds a silent worker keeps its leases before they are "
        "re-issued (default 30)",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.2,
        help="idle-worker / coordinator poll interval in seconds",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="also serve /fabric/* lease endpoints for remote workers",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address for --serve"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8078,
        help="TCP port for --serve (0 picks a free port; default 8078)",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="URL",
        help="run as a remote worker against a serving coordinator "
        "instead of coordinating",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="worker name for --connect (default: host-pid derived)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for JSON/CSV/Markdown result files",
    )
    return parser


def _worker_main(args: argparse.Namespace) -> int:
    """Remote-worker mode: drain leases from a serving coordinator."""
    from ..fabric import DEFAULT_BATCH, HTTPTransport, worker_loop

    base = args.worker_id or f"http-{os.uname().nodename}-{os.getpid()}"
    threads_n = args.workers if args.workers and args.workers > 0 else 1
    batch = args.batch if args.batch is not None else DEFAULT_BATCH
    completed = [0] * threads_n
    errors: list[BaseException] = []

    def drain(i: int) -> None:
        transport = HTTPTransport(args.connect)
        try:
            completed[i] = worker_loop(
                transport,
                f"{base}-{i}" if threads_n > 1 else base,
                lease_ttl=args.lease_ttl,
                poll=args.poll,
                batch=batch,
            )
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [
        threading.Thread(target=drain, args=(i,), daemon=True)
        for i in range(threads_n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    print(
        f"worker {base}: completed {sum(completed)} unit(s) "
        f"on {threads_n} thread(s)"
    )
    if errors:
        print(f"error: {errors[0]}", file=sys.stderr)
        return 1
    return 0


def sweep_main(argv: list[str] | None = None) -> int:
    args = build_sweep_parser().parse_args(argv)

    if args.connect is not None:
        try:
            return _worker_main(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    # ------------------------------------------------------------- spec
    if (args.figure is None) == (args.config is None):
        print(
            "error: name exactly one experiment (a figure id or --config "
            "FILE), or use --connect to join a sweep as a worker",
            file=sys.stderr,
        )
        return 2
    if args.store is None:
        print(
            "error: --store DIR is required (the shared result store the "
            "sweep commits to)",
            file=sys.stderr,
        )
        return 2
    try:
        if args.config is not None:
            from ..experiments.config import load_spec

            spec = load_spec(args.config)
        else:
            from ..experiments.figures import get_figure_spec

            spec = get_figure_spec(args.figure)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    from ..experiments.report import (
        render_report,
        result_markdown,
        save_csv,
        save_json,
    )
    from ..fabric import FabricCoordinator

    start = time.perf_counter()
    server = None
    server_thread = None
    service = None
    try:
        coordinator_kwargs = {}
        if args.batch is not None:
            coordinator_kwargs["batch"] = args.batch
        coordinator = FabricCoordinator(
            spec,
            trials=args.trials,
            seed=args.seed,
            chunk_size=args.chunk_size,
            store=args.store,
            lease_ttl=args.lease_ttl,
            **coordinator_kwargs,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    shard_done = time.perf_counter()
    try:
        if args.serve:
            from ..service import DeadlineAssignmentService, create_server

            service = DeadlineAssignmentService(cache_size=8)
            try:
                server = create_server(
                    args.host,
                    args.port,
                    service,
                    fabric=coordinator.endpoint(metrics=service.metrics),
                )
            except OSError as exc:
                print(
                    f"error: cannot bind {args.host}:{args.port}: {exc}",
                    file=sys.stderr,
                )
                return 1
            host, port = server.server_address[:2]
            print(
                f"fabric coordinator serving http://{host}:{port} "
                "(POST /fabric/lease|complete|heartbeat, GET /fabric/status"
                "|/metrics); join with: repro sweep --connect "
                f"http://{host}:{port}"
            )
            server_thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            server_thread.start()
        workers = args.workers
        coordinator.execute(
            workers=workers,
            poll=args.poll,
            # A serving coordinator with no local workers waits for
            # remote ones instead of computing everything itself.
            inline_fallback=not (args.serve and workers == 0),
        )
        execute_done = time.perf_counter()
        result = coordinator.merge()
        merge_done = time.perf_counter()
        report = coordinator.report(
            merge_done - start,
            phase_seconds={
                "shard": shard_done - start,
                "execute": execute_done - shard_done,
                "merge": merge_done - execute_done,
            },
        )
    except KeyboardInterrupt:
        print(
            "interrupted: sweep state is durable — re-run the same "
            "command to resume",
            file=sys.stderr,
        )
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        if server_thread is not None:
            server_thread.join(timeout=5.0)
        if service is not None:
            service.close(timeout=5.0)
        coordinator.close()

    print(render_report(result))
    print(report.summary())
    if result.cache_stats is not None:
        # The merge restores every chunk from the shared store; its
        # stats confirm nothing was recomputed coordinator-side.
        print(
            f"merge: {result.cache_stats.hits} chunk partial(s) restored, "
            f"{result.cache_stats.misses} computed"
        )
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        save_json(result, args.out / f"{result.name}.json")
        save_csv(result, args.out / f"{result.name}.csv")
        (args.out / f"{result.name}.md").write_text(
            f"### {result.title}\n\n{result_markdown(result)}\n"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(sweep_main())
